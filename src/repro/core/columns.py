"""Batch columnization: one pass over elements, integer ids everywhere else.

The element-at-a-time hot path touched every :class:`Node`/:class:`Edge`
object four or five times (corpus building, vectorization, refinement,
cluster summarization), paying Python attribute access and hashing per
element per stage.  The batch kernels instead extract everything the
pipeline needs in a *single* pass:

* every distinct label set and property-key set is interned once
  (:class:`LabelSpace` / :class:`KeySpace`),
* each element is reduced to a row of integer ids
  (:class:`NodeColumns` / :class:`EdgeColumns`),
* downstream stages operate on numpy id arrays, and the expensive work
  (embedding, hashing, set construction) happens once per *distinct
  pattern* instead of once per element.

A batch of a hundred thousand elements typically has only dozens of
distinct (label set, key set) patterns, which is what makes the
compaction worthwhile.  All kernels built on these columns are
output-equivalent (byte-identical arrays and schemas) to the reference
loops they replace; ``tests/test_hotpath_kernels.py`` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.graph.model import Edge, Node, canonical_label


class LabelSpace:
    """Interner for label frozensets with per-set canonical tokens."""

    def __init__(self) -> None:
        self.sets: list[frozenset[str]] = []
        self.tokens: list[str] = []
        self._ids: dict[frozenset[str], int] = {}

    def intern(self, labels: frozenset[str]) -> int:
        """Dense id for a label set, assigning the next id when new."""
        existing = self._ids.get(labels)
        if existing is not None:
            return existing
        new_id = len(self.sets)
        self._ids[labels] = new_id
        self.sets.append(labels)
        self.tokens.append(canonical_label(labels))
        return new_id

    def __len__(self) -> int:
        return len(self.sets)


class KeySpace:
    """Interner for property-key sets, keeping the first-seen key order.

    The order matters for byte-identical MinHash feature interning: the
    reference loop interns ``nk:<key>`` features in dictionary order of
    the first element carrying a key set, so the compact path must replay
    exactly that order.
    """

    def __init__(self) -> None:
        self.sets: list[frozenset[str]] = []
        self.orders: list[tuple[str, ...]] = []
        self._ids: dict[frozenset[str], int] = {}

    def intern(self, properties: Mapping[str, object]) -> int:
        """Dense id for a mapping's key set (first-seen order retained)."""
        keys = frozenset(properties)
        existing = self._ids.get(keys)
        if existing is not None:
            return existing
        new_id = len(self.sets)
        self._ids[keys] = new_id
        self.sets.append(keys)
        self.orders.append(tuple(properties))
        return new_id

    def __len__(self) -> int:
        return len(self.sets)


@dataclass
class NodeColumns:
    """Column-oriented view of a node batch."""

    ids: np.ndarray  # (n,) int64 node ids
    label_ids: np.ndarray  # (n,) int64 into labels.sets
    keyset_ids: np.ndarray  # (n,) int64 into keys.sets
    labels: LabelSpace
    keys: KeySpace

    def __len__(self) -> int:
        return int(self.ids.size)

    def pattern_ids(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense (label set, key set) pattern ids in first-appearance order.

        Returns:
            ``(pattern_ids, representatives)`` where ``pattern_ids[i]`` is
            the dense pattern id of element ``i`` and ``representatives[p]``
            is the index of the first element exhibiting pattern ``p``.
        """
        combined = self.label_ids * np.int64(max(len(self.keys), 1))
        combined = combined + self.keyset_ids
        return dense_first_appearance(combined)


@dataclass
class EdgeColumns:
    """Column-oriented view of an edge batch (with endpoint context)."""

    ids: np.ndarray  # (m,) int64 edge ids
    source: np.ndarray  # (m,) int64 source node ids
    target: np.ndarray  # (m,) int64 target node ids
    label_ids: np.ndarray  # (m,) int64 edge label sets
    src_label_ids: np.ndarray  # (m,) int64 source endpoint label sets
    tgt_label_ids: np.ndarray  # (m,) int64 target endpoint label sets
    keyset_ids: np.ndarray  # (m,) int64 into keys.sets
    labels: LabelSpace  # shared across edge/source/target roles
    keys: KeySpace

    def __len__(self) -> int:
        return int(self.ids.size)

    def pattern_ids(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense (edge labels, src labels, tgt labels, keys) pattern ids."""
        num_labels = np.int64(max(len(self.labels), 1))
        combined = self.label_ids
        combined = combined * num_labels + self.src_label_ids
        combined = combined * num_labels + self.tgt_label_ids
        combined = combined * np.int64(max(len(self.keys), 1))
        combined = combined + self.keyset_ids
        return dense_first_appearance(combined)

    def with_endpoint_overrides(
        self, overrides: Mapping[int, frozenset[str]]
    ) -> "EdgeColumns":
        """Columns with some endpoints' label sets replaced.

        Used for the hybrid step: unlabeled endpoints absorbed into a node
        type adopt that type's (pseudo-)labels before edge clustering.
        Only the affected rows are re-interned; everything else is shared.
        """
        if not overrides:
            return self
        override_ids = np.fromiter(overrides, dtype=np.int64, count=len(overrides))
        src = self.src_label_ids
        tgt = self.tgt_label_ids
        for endpoint_ids, column in ((self.source, "src"), (self.target, "tgt")):
            affected = np.flatnonzero(np.isin(endpoint_ids, override_ids))
            if affected.size == 0:
                continue
            updated = (src if column == "src" else tgt).copy()
            for row in affected.tolist():
                updated[row] = self.labels.intern(
                    overrides[int(endpoint_ids[row])]
                )
            if column == "src":
                src = updated
            else:
                tgt = updated
        return EdgeColumns(
            ids=self.ids,
            source=self.source,
            target=self.target,
            label_ids=self.label_ids,
            src_label_ids=src,
            tgt_label_ids=tgt,
            keyset_ids=self.keyset_ids,
            labels=self.labels,
            keys=self.keys,
        )


def label_space_from_sets(sets: Sequence[frozenset[str]]) -> LabelSpace:
    """Rebuild a :class:`LabelSpace` from its ordered label sets.

    Interning in the stored order reproduces the ids exactly, so columns
    shipped as (arrays, space states) across a process boundary -- the
    zero-copy transport of :mod:`repro.core.transport` -- rebuild
    byte-identically.
    """
    space = LabelSpace()
    for entry in sets:
        space.intern(entry)
    return space


def key_space_from_orders(orders: Sequence[tuple[str, ...]]) -> KeySpace:
    """Rebuild a :class:`KeySpace` from its ordered key tuples.

    Each tuple preserves the first-seen key order of the original
    interning, which downstream MinHash feature interning depends on.
    """
    space = KeySpace()
    for order in orders:
        space.intern({key: None for key in order})
    return space


def node_columns(nodes: Sequence[Node]) -> NodeColumns:
    """Columnize a node batch in one pass."""
    n = len(nodes)
    ids = np.empty(n, dtype=np.int64)
    label_ids = np.empty(n, dtype=np.int64)
    keyset_ids = np.empty(n, dtype=np.int64)
    labels = LabelSpace()
    keys = KeySpace()
    for i, node in enumerate(nodes):
        ids[i] = node.id
        label_ids[i] = labels.intern(node.labels)
        keyset_ids[i] = keys.intern(node.properties)
    return NodeColumns(ids, label_ids, keyset_ids, labels, keys)


def edge_columns(
    edges: Sequence[Edge],
    endpoint_labels: Mapping[int, frozenset[str]],
) -> EdgeColumns:
    """Columnize an edge batch (with endpoint labels) in one pass."""
    m = len(edges)
    ids = np.empty(m, dtype=np.int64)
    source = np.empty(m, dtype=np.int64)
    target = np.empty(m, dtype=np.int64)
    label_ids = np.empty(m, dtype=np.int64)
    src_label_ids = np.empty(m, dtype=np.int64)
    tgt_label_ids = np.empty(m, dtype=np.int64)
    keyset_ids = np.empty(m, dtype=np.int64)
    labels = LabelSpace()
    keys = KeySpace()
    empty: frozenset[str] = frozenset()
    get_labels = endpoint_labels.get
    for i, edge in enumerate(edges):
        ids[i] = edge.id
        source[i] = edge.source
        target[i] = edge.target
        label_ids[i] = labels.intern(edge.labels)
        src_label_ids[i] = labels.intern(get_labels(edge.source, empty))
        tgt_label_ids[i] = labels.intern(get_labels(edge.target, empty))
        keyset_ids[i] = keys.intern(edge.properties)
    return EdgeColumns(
        ids, source, target, label_ids, src_label_ids, tgt_label_ids,
        keyset_ids, labels, keys,
    )


def node_columns_from_arrays(
    ids: np.ndarray,
    label_gids: np.ndarray,
    keyset_gids: np.ndarray,
    label_sets: Sequence[frozenset[str]],
    key_order_at: Callable[[int], tuple[str, ...]],
) -> NodeColumns:
    """Columnize a node batch from pre-interned id arrays (no objects).

    The disk backend stores every node as ``(id, global label-set id,
    global key-set id)`` against store-wide interner tables.  This
    constructor remaps those *global* ids to the per-batch dense ids the
    reference loop would have assigned -- first appearance within the
    batch, in row order -- and re-interns the actual sets in that order,
    so the result is byte-identical to
    ``node_columns([store.node(i) for i in ids])`` without materializing
    a single :class:`~repro.graph.model.Node`.

    ``key_order_at`` maps a batch *position* to that row's property-key
    iteration order.  The reference :class:`KeySpace` records the key
    order of the first row carrying each key set, and two rows with the
    same key *set* may order their dicts differently -- so the order
    must come from the batch's own representative row, not from a
    store-wide table.  It is called once per distinct key set.
    """
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    label_gids = np.asarray(label_gids, dtype=np.int64)
    keyset_gids = np.asarray(keyset_gids, dtype=np.int64)
    label_ids, label_reps = dense_first_appearance(label_gids)
    labels = LabelSpace()
    for row in label_reps.tolist():
        labels.intern(label_sets[int(label_gids[row])])
    keyset_ids, key_reps = dense_first_appearance(keyset_gids)
    keys = KeySpace()
    for row in key_reps.tolist():
        keys.intern({key: None for key in key_order_at(int(row))})
    return NodeColumns(ids, label_ids, keyset_ids, labels, keys)


def edge_columns_from_arrays(
    ids: np.ndarray,
    source: np.ndarray,
    target: np.ndarray,
    label_gids: np.ndarray,
    src_label_gids: np.ndarray,
    tgt_label_gids: np.ndarray,
    keyset_gids: np.ndarray,
    edge_label_sets: Sequence[frozenset[str]],
    node_label_sets: Sequence[frozenset[str]],
    key_order_at: Callable[[int], tuple[str, ...]],
) -> EdgeColumns:
    """Columnize an edge batch from pre-interned id arrays (no objects).

    The reference loop interns, per row, the edge's label set followed
    by the source and target endpoint label sets into *one* shared
    :class:`LabelSpace` -- identical sets collapse to one dense id even
    when one comes from the edge table and another from the node table.
    To replay that order the three global-id columns are interleaved
    row-major (edge, src, tgt), with node-table ids offset past the edge
    table so equal integers never alias across tables; the dense pass
    then yields first-appearance representatives whose *actual* label
    sets are interned through a shared space, restoring the cross-table
    collapse byte-for-byte.

    ``key_order_at`` maps a batch position to that edge row's own
    property-key order, for the same reason as in
    :func:`node_columns_from_arrays`.
    """
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    source = np.ascontiguousarray(source, dtype=np.int64)
    target = np.ascontiguousarray(target, dtype=np.int64)
    label_gids = np.asarray(label_gids, dtype=np.int64)
    src_label_gids = np.asarray(src_label_gids, dtype=np.int64)
    tgt_label_gids = np.asarray(tgt_label_gids, dtype=np.int64)
    keyset_gids = np.asarray(keyset_gids, dtype=np.int64)
    offset = np.int64(len(edge_label_sets))
    rows = int(ids.size)
    interleaved = np.empty(rows * 3, dtype=np.int64)
    interleaved[0::3] = label_gids
    interleaved[1::3] = src_label_gids + offset
    interleaved[2::3] = tgt_label_gids + offset
    dense, reps = dense_first_appearance(interleaved)
    labels = LabelSpace()
    mapping = np.empty(reps.size, dtype=np.int64)
    for dense_id, position in enumerate(reps.tolist()):
        tagged = int(interleaved[position])
        if tagged < int(offset):
            label_set = edge_label_sets[tagged]
        else:
            label_set = node_label_sets[tagged - int(offset)]
        mapping[dense_id] = labels.intern(label_set)
    label_ids = mapping[dense[0::3]] if rows else dense
    src_label_ids = mapping[dense[1::3]] if rows else dense
    tgt_label_ids = mapping[dense[2::3]] if rows else dense
    keyset_ids, key_reps = dense_first_appearance(keyset_gids)
    keys = KeySpace()
    for row in key_reps.tolist():
        keys.intern({key: None for key in key_order_at(int(row))})
    return EdgeColumns(
        ids, source, target,
        np.ascontiguousarray(label_ids, dtype=np.int64),
        np.ascontiguousarray(src_label_ids, dtype=np.int64),
        np.ascontiguousarray(tgt_label_ids, dtype=np.int64),
        keyset_ids, labels, keys,
    )


def dense_first_appearance(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense ids for a value array, numbered in first-appearance order.

    This is the numpy analogue of the ``setdefault(key, len(mapping))``
    idiom used throughout the reference loops, so kernels built on it
    reproduce the reference cluster numbering exactly.

    Returns:
        ``(dense_ids, representatives)``: ``dense_ids[i]`` is the id of
        ``values[i]`` and ``representatives[d]`` the index of the first
        occurrence of dense id ``d``.
    """
    values = np.asarray(values)
    if values.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    _, first_index, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    appearance_order = np.argsort(first_index, kind="stable")
    remap = np.empty_like(appearance_order)
    remap[appearance_order] = np.arange(appearance_order.size)
    return (
        remap[inverse].astype(np.int64),
        first_index[appearance_order].astype(np.int64),
    )


def union_of(sets: Iterable[frozenset[str]]) -> frozenset[str]:
    """Union of several frozensets (empty union is the empty set)."""
    result: frozenset[str] = frozenset()
    for entry in sets:
        if not entry <= result:
            result = result | entry
    return result
