"""Type extraction and merging (paper Algorithm 2 / section 4.3).

The LSH assignment partitions a batch's nodes and edges into clusters.
Each cluster is summarized by its *representative pattern*: the union of
member label sets, the union of member property key sets, and (for edges)
the unions of endpoint label sets.  These candidate types are then refined:

1. labeled clusters with identical label sets merge directly (Lemma 1/2 --
   unions only, nothing is lost);
2. each unlabeled cluster merges into the labeled type with the highest
   property-set Jaccard similarity >= theta;
3. remaining unlabeled clusters merge among themselves by the same rule;
4. whatever is left becomes an ABSTRACT type;
5. edge clusters merge by label only, accumulating endpoint label sets.

The output is a batch-level :class:`~repro.schema.model.SchemaGraph` that
:func:`~repro.schema.merge.merge_schemas` folds into the running schema.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.core.columns import EdgeColumns, NodeColumns

from repro.graph.model import Edge, Node, canonical_label
from repro.schema.merge import (
    EdgeTypeIndex,
    NodeTypeIndex,
    find_labeled_edge_host,
    merge_edge_types,
    merge_node_types,
)
from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.util.similarity import jaccard


# Prefix marking pseudo-labels derived from node cluster identity (used to
# type edge endpoints when real labels are missing); never serialized.
PSEUDO_PREFIX = "~"


@dataclass
class CandidateCluster:
    """Representative pattern of one LSH cluster (node or edge)."""

    kind: str  # "node" | "edge"
    labels: frozenset[str] = frozenset()
    property_keys: frozenset[str] = frozenset()
    members: list[int] = field(default_factory=list)
    property_counts: Counter[str] = field(default_factory=Counter)
    source_labels: frozenset[str] = frozenset()
    target_labels: frozenset[str] = frozenset()
    cluster_tokens: frozenset[str] = frozenset()
    source_tokens: frozenset[str] = frozenset()
    target_tokens: frozenset[str] = frozenset()

    @property
    def is_labeled(self) -> bool:
        """True when at least one member carried a label."""
        return bool(self.labels)

    @property
    def size(self) -> int:
        """Number of member instances."""
        return len(self.members)


def build_node_clusters(
    nodes: Sequence[Node],
    assignment: np.ndarray,
    pseudo_tag: str = "",
) -> list[CandidateCluster]:
    """Summarize an LSH node assignment into candidate clusters.

    Args:
        nodes: The clustered nodes.
        assignment: Dense cluster ids aligned with ``nodes``.
        pseudo_tag: When non-empty, clusters whose members are all unlabeled
            receive the internal pseudo-label ``~{pseudo_tag}{cluster_id}``
            as their cluster token, which the edge stage uses to type
            endpoints structurally.
    """
    clusters: dict[int, CandidateCluster] = {}
    for node, cluster_id in zip(nodes, assignment.tolist()):
        cluster = clusters.get(int(cluster_id))
        if cluster is None:
            cluster = CandidateCluster(kind="node")
            clusters[int(cluster_id)] = cluster
        cluster.labels = cluster.labels | node.labels
        cluster.property_keys = cluster.property_keys | node.property_keys
        cluster.members.append(node.id)
        cluster.property_counts.update(node.properties.keys())
    if pseudo_tag:
        for cluster_id, cluster in clusters.items():
            if not cluster.labels:
                cluster.cluster_tokens = frozenset(
                    {f"{PSEUDO_PREFIX}{pseudo_tag}{cluster_id}"}
                )
    return [clusters[cid] for cid in sorted(clusters)]


def build_edge_clusters(
    edges: Sequence[Edge],
    assignment: np.ndarray,
    endpoint_labels: dict[int, frozenset[str]],
) -> list[CandidateCluster]:
    """Summarize an LSH edge assignment into candidate clusters.

    ``endpoint_labels`` may contain pseudo-labels (``~``-prefixed cluster
    tokens) for unlabeled endpoints; they are separated into the clusters'
    token sets so they inform endpoint compatibility without polluting the
    schema's label sets.
    """
    clusters: dict[int, CandidateCluster] = {}
    empty: frozenset[str] = frozenset()
    split_cache: dict[frozenset[str], tuple[frozenset[str], frozenset[str]]] = {}

    def split(labels: frozenset[str]) -> tuple[frozenset[str], frozenset[str]]:
        cached = split_cache.get(labels)
        if cached is None:
            cached = _split_pseudo(labels)
            split_cache[labels] = cached
        return cached

    for edge, cluster_id in zip(edges, assignment.tolist()):
        cluster = clusters.get(int(cluster_id))
        if cluster is None:
            cluster = CandidateCluster(kind="edge")
            clusters[int(cluster_id)] = cluster
        if not edge.labels <= cluster.labels:
            cluster.labels = cluster.labels | edge.labels
        keys = edge.property_keys
        if not keys <= cluster.property_keys:
            cluster.property_keys = cluster.property_keys | keys
        cluster.members.append(edge.id)
        cluster.property_counts.update(edge.properties.keys())
        src_labels, src_tokens = split(endpoint_labels.get(edge.source, empty))
        tgt_labels, tgt_tokens = split(endpoint_labels.get(edge.target, empty))
        if not src_labels <= cluster.source_labels:
            cluster.source_labels = cluster.source_labels | src_labels
        if not tgt_labels <= cluster.target_labels:
            cluster.target_labels = cluster.target_labels | tgt_labels
        if not src_tokens <= cluster.source_tokens:
            cluster.source_tokens = cluster.source_tokens | src_tokens
        if not tgt_tokens <= cluster.target_tokens:
            cluster.target_tokens = cluster.target_tokens | tgt_tokens
    return [clusters[cid] for cid in sorted(clusters)]


def _split_pseudo(
    labels: frozenset[str],
) -> tuple[frozenset[str], frozenset[str]]:
    """Separate real labels from pseudo cluster tokens."""
    real = frozenset(l for l in labels if not l.startswith(PSEUDO_PREFIX))
    pseudo = labels - real
    return real, pseudo


def build_node_clusters_from_columns(
    columns: "NodeColumns",
    assignment: np.ndarray,
    pseudo_tag: str = "",
) -> list[CandidateCluster]:
    """Batch kernel equivalent of :func:`build_node_clusters`.

    Aggregates per distinct (cluster, label set) and (cluster, key set)
    pair instead of per element: members come from one stable argsort,
    label/key unions and property counts from ``np.unique`` over combined
    id arrays.  Output-equivalent to the reference builder (same clusters,
    same member order, same counters).
    """
    n = len(columns)
    if n == 0:
        return []
    assignment = np.asarray(assignment, dtype=np.int64)
    order = np.argsort(assignment, kind="stable")
    sorted_assign = assignment[order]
    boundaries = np.flatnonzero(np.diff(sorted_assign)) + 1
    starts = np.concatenate(([0], boundaries))
    cluster_ids = sorted_assign[starts].tolist()
    member_groups = np.split(columns.ids[order], boundaries)

    label_sets = columns.labels.sets
    key_sets = columns.keys.sets
    key_orders = columns.keys.orders
    label_pairs = _distinct_pairs(
        assignment, columns.label_ids, max(len(label_sets), 1)
    )
    keyset_pairs, keyset_counts = _distinct_pairs(
        assignment, columns.keyset_ids, max(len(key_sets), 1),
        with_counts=True,
    )

    clusters: dict[int, CandidateCluster] = {
        cid: CandidateCluster(
            kind="node", members=group.tolist()
        )
        for cid, group in zip(cluster_ids, member_groups)
    }
    for cid, label_id in label_pairs:
        cluster = clusters[cid]
        cluster.labels = cluster.labels | label_sets[label_id]
    for (cid, keyset_id), count in zip(keyset_pairs, keyset_counts):
        cluster = clusters[cid]
        keys = key_sets[keyset_id]
        if not keys <= cluster.property_keys:
            cluster.property_keys = cluster.property_keys | keys
        counts = cluster.property_counts
        for key in key_orders[keyset_id]:
            counts[key] += count
    if pseudo_tag:
        for cluster_id, cluster in clusters.items():
            if not cluster.labels:
                cluster.cluster_tokens = frozenset(
                    {f"{PSEUDO_PREFIX}{pseudo_tag}{cluster_id}"}
                )
    return [clusters[cid] for cid in sorted(clusters)]


def build_edge_clusters_from_columns(
    columns: "EdgeColumns",
    assignment: np.ndarray,
) -> list[CandidateCluster]:
    """Batch kernel equivalent of :func:`build_edge_clusters`.

    Endpoint label sets (possibly containing ``~``-prefixed pseudo tokens)
    are aggregated per distinct (cluster, endpoint label set) pair; the
    real/pseudo split happens once per distinct label set.
    """
    m = len(columns)
    if m == 0:
        return []
    assignment = np.asarray(assignment, dtype=np.int64)
    order = np.argsort(assignment, kind="stable")
    sorted_assign = assignment[order]
    boundaries = np.flatnonzero(np.diff(sorted_assign)) + 1
    starts = np.concatenate(([0], boundaries))
    cluster_ids = sorted_assign[starts].tolist()
    member_groups = np.split(columns.ids[order], boundaries)

    label_sets = columns.labels.sets
    key_sets = columns.keys.sets
    key_orders = columns.keys.orders
    num_labels = max(len(label_sets), 1)
    label_pairs = _distinct_pairs(assignment, columns.label_ids, num_labels)
    src_pairs = _distinct_pairs(assignment, columns.src_label_ids, num_labels)
    tgt_pairs = _distinct_pairs(assignment, columns.tgt_label_ids, num_labels)
    keyset_pairs, keyset_counts = _distinct_pairs(
        assignment, columns.keyset_ids, max(len(key_sets), 1),
        with_counts=True,
    )
    splits = [_split_pseudo(labels) for labels in label_sets]

    clusters: dict[int, CandidateCluster] = {
        cid: CandidateCluster(kind="edge", members=group.tolist())
        for cid, group in zip(cluster_ids, member_groups)
    }
    for cid, label_id in label_pairs:
        cluster = clusters[cid]
        labels = label_sets[label_id]
        if not labels <= cluster.labels:
            cluster.labels = cluster.labels | labels
    for (cid, keyset_id), count in zip(keyset_pairs, keyset_counts):
        cluster = clusters[cid]
        keys = key_sets[keyset_id]
        if not keys <= cluster.property_keys:
            cluster.property_keys = cluster.property_keys | keys
        counts = cluster.property_counts
        for key in key_orders[keyset_id]:
            counts[key] += count
    for cid, label_id in src_pairs:
        cluster = clusters[cid]
        real, pseudo = splits[label_id]
        if not real <= cluster.source_labels:
            cluster.source_labels = cluster.source_labels | real
        if not pseudo <= cluster.source_tokens:
            cluster.source_tokens = cluster.source_tokens | pseudo
    for cid, label_id in tgt_pairs:
        cluster = clusters[cid]
        real, pseudo = splits[label_id]
        if not real <= cluster.target_labels:
            cluster.target_labels = cluster.target_labels | real
        if not pseudo <= cluster.target_tokens:
            cluster.target_tokens = cluster.target_tokens | pseudo
    return [clusters[cid] for cid in sorted(clusters)]


def _distinct_pairs(
    assignment: np.ndarray,
    value_ids: np.ndarray,
    num_values: int,
    with_counts: bool = False,
) -> list[tuple[int, int]] | tuple[list[tuple[int, int]], list[int]]:
    """Distinct (cluster id, value id) pairs via one combined np.unique.

    Returns a list of ``(cluster_id, value_id)`` int tuples (and the
    occurrence count array when ``with_counts``).  Safe from overflow:
    cluster ids and value ids are both bounded by the batch size.
    """
    combined = assignment * np.int64(num_values) + value_ids
    if with_counts:
        uniq, counts = np.unique(combined, return_counts=True)
    else:
        uniq = np.unique(combined)
    pairs = [
        (int(c), int(v))
        for c, v in zip(uniq // num_values, uniq % num_values)
    ]
    if with_counts:
        return pairs, counts.tolist()
    return pairs


def extract_types(
    node_clusters: Sequence[CandidateCluster],
    edge_clusters: Sequence[CandidateCluster],
    theta: float = 0.9,
    schema_name: str = "batch",
    endpoint_theta: float = 0.5,
) -> SchemaGraph:
    """Algorithm 2: refine candidate clusters into a schema graph.

    Args:
        node_clusters / edge_clusters: LSH cluster summaries.
        theta: Jaccard threshold for merging unlabeled clusters.
        schema_name: Name of the produced schema graph.
        endpoint_theta: Endpoint-label Jaccard threshold below which two
            same-label edge clusters are treated as different edge types
            (Definition 3.3's endpoint pair).
    """
    schema = SchemaGraph(schema_name)
    extract_node_types(schema, node_clusters, theta)
    extract_edge_types(schema, edge_clusters, theta, endpoint_theta)
    resolve_edge_endpoints(schema)
    return schema


def extract_node_types(
    schema: SchemaGraph,
    clusters: Sequence[CandidateCluster],
    theta: float,
) -> None:
    """Node half of Algorithm 2."""
    unlabeled: list[NodeType] = []
    for cluster in clusters:
        node_type = _node_type_from_cluster(cluster)
        if cluster.is_labeled:
            existing = schema.node_type_for_labels(node_type.labels)
            if existing is not None:
                merge_node_types(existing, node_type)
            else:
                _add_node_unique(schema, node_type)
        else:
            unlabeled.append(node_type)
    # Unlabeled clusters: labeled hosts first, ...
    labeled_index = NodeTypeIndex(schema, labeled_only=True)
    still_unlabeled: list[NodeType] = []
    for node_type in unlabeled:
        host = _best_labeled_host(labeled_index, node_type, theta)
        if host is not None:
            merge_node_types(host, node_type)
            labeled_index.add(host)
        else:
            still_unlabeled.append(node_type)
    # ... then each other (pairwise, in first-appearance order; the
    # inverted key index keeps this near-linear when noisy unlabeled data
    # fragments into thousands of candidate clusters), ...
    merged_pool: list[NodeType] = []
    pool_by_key: dict[str, set[int]] = {}
    pool_empty: set[int] = set()
    for node_type in still_unlabeled:
        keys = node_type.property_keys
        if keys:
            candidate_ids: set[int] = set()
            for key in keys:
                candidate_ids |= pool_by_key.get(key, set())
        else:
            candidate_ids = set(pool_empty)
        host = None
        for pool_id in sorted(candidate_ids):
            candidate = merged_pool[pool_id]
            if jaccard(keys, candidate.property_keys) >= theta:
                host = candidate
                host_id = pool_id
                break
        if host is not None:
            merge_node_types(host, node_type)
            for key in host.property_keys:
                pool_by_key.setdefault(key, set()).add(host_id)
        else:
            pool_id = len(merged_pool)
            merged_pool.append(node_type)
            if keys:
                for key in keys:
                    pool_by_key.setdefault(key, set()).add(pool_id)
            else:
                pool_empty.add(pool_id)
    # ... and whatever remains becomes an ABSTRACT type.
    for node_type in merged_pool:
        node_type.name = schema.next_abstract_name("NODE")
        node_type.abstract = True
        schema.add_node_type(node_type)


def extract_edge_types(
    schema: SchemaGraph,
    clusters: Sequence[CandidateCluster],
    theta: float,
    endpoint_theta: float = 0.5,
) -> None:
    """Edge half: merge by label + endpoint compatibility (section 4.3)."""
    unlabeled: list[EdgeType] = []
    for cluster in clusters:
        edge_type = _edge_type_from_cluster(cluster)
        if cluster.is_labeled:
            existing = find_labeled_edge_host(
                schema, edge_type, endpoint_theta
            )
            if existing is not None:
                merge_edge_types(existing, edge_type)
            else:
                _add_edge_unique(schema, edge_type)
        else:
            unlabeled.append(edge_type)
    # Unlabeled edge clusters follow the same Jaccard fallback as nodes,
    # additionally requiring endpoint-label compatibility.  The inverted
    # index keeps the host search near-linear even when unlabeled noisy
    # data fragments into thousands of candidate clusters.
    index = EdgeTypeIndex(schema)
    for edge_type in unlabeled:
        host = _best_edge_host(index, edge_type, theta, endpoint_theta)
        if host is not None:
            merge_edge_types(host, edge_type)
            index.add(host)
        else:
            edge_type.name = schema.next_abstract_name("EDGE")
            edge_type.abstract = True
            schema.add_edge_type(edge_type)
            index.add(edge_type)


def _add_node_unique(schema: SchemaGraph, node_type: NodeType) -> None:
    """Insert a node type, suffixing on (rare) canonical-name collisions.

    Two distinct label sets can share a canonical token when a label
    literally contains the '&' join character; the types stay separate
    and the later one gets a disambiguating suffix.
    """
    name = node_type.name
    suffix = 1
    while name in schema.node_types:
        suffix += 1
        name = f"{node_type.name}@{suffix}"
    node_type.name = name
    schema.add_node_type(node_type)


def _add_edge_unique(schema: SchemaGraph, edge_type: EdgeType) -> None:
    """Insert an edge type, suffixing the name when the label is reused."""
    name = edge_type.name
    suffix = 1
    while name in schema.edge_types:
        suffix += 1
        name = f"{edge_type.name}@{suffix}"
    edge_type.name = name
    schema.add_edge_type(edge_type)


def resolve_edge_endpoints(schema: SchemaGraph) -> None:
    """Fill rho_s: map each edge type's endpoint labels to node type names.

    Labeled endpoints match node types by label intersection; unlabeled
    endpoints match ABSTRACT node types through the shared cluster tokens.
    """
    for edge_type in schema.edge_types.values():
        edge_type.source_types = _matching_node_types(
            schema, edge_type.source_labels, edge_type.source_tokens
        )
        edge_type.target_types = _matching_node_types(
            schema, edge_type.target_labels, edge_type.target_tokens
        )


def _matching_node_types(
    schema: SchemaGraph,
    labels: frozenset[str],
    tokens: set[str] | frozenset[str] = frozenset(),
) -> set[str]:
    """Node types whose labels or cluster tokens match the endpoint."""
    if not labels and not tokens:
        return set()
    matched = set()
    for node_type in schema.node_types.values():
        if node_type.labels & labels:
            matched.add(node_type.name)
        elif tokens and node_type.cluster_tokens & set(tokens):
            matched.add(node_type.name)
    return matched


def _node_type_from_cluster(cluster: CandidateCluster) -> NodeType:
    """Candidate node type carrying the cluster's bookkeeping."""
    name = canonical_label(cluster.labels) or "__UNLABELED__"
    node_type = NodeType(
        name=name,
        labels=cluster.labels,
        abstract=not cluster.is_labeled,
        instance_count=cluster.size,
        property_counts=Counter(cluster.property_counts),
        members=list(cluster.members),
        cluster_tokens=set(cluster.cluster_tokens),
    )
    for key in cluster.property_keys:
        node_type.ensure_property(key)
    return node_type


def _edge_type_from_cluster(cluster: CandidateCluster) -> EdgeType:
    """Candidate edge type carrying the cluster's bookkeeping."""
    name = canonical_label(cluster.labels) or "__UNLABELED__"
    edge_type = EdgeType(
        name=name,
        labels=cluster.labels,
        abstract=not cluster.is_labeled,
        source_labels=cluster.source_labels,
        target_labels=cluster.target_labels,
        instance_count=cluster.size,
        property_counts=Counter(cluster.property_counts),
        members=list(cluster.members),
        source_tokens=set(cluster.source_tokens),
        target_tokens=set(cluster.target_tokens),
    )
    for key in cluster.property_keys:
        edge_type.ensure_property(key)
    return edge_type


def _best_labeled_host(
    index: NodeTypeIndex, candidate: NodeType, theta: float
) -> NodeType | None:
    """Labeled node type with the highest Jaccard >= theta, if any."""
    best: NodeType | None = None
    best_score = theta
    candidate_keys = candidate.property_keys
    for node_type in index.candidates(candidate):
        score = jaccard(candidate_keys, node_type.property_keys)
        if score >= best_score:
            best, best_score = node_type, score
    return best


def _best_edge_host(
    index: EdgeTypeIndex,
    candidate: EdgeType,
    theta: float,
    endpoint_theta: float = 0.5,
) -> EdgeType | None:
    """Host for an unlabeled edge cluster: Jaccard + endpoint compatibility."""
    from repro.schema.merge import endpoints_compatible

    best: EdgeType | None = None
    best_score = theta
    candidate_keys = candidate.property_keys
    for edge_type in index.candidates(candidate):
        score = jaccard(candidate_keys, edge_type.property_keys)
        if score >= best_score and endpoints_compatible(
            edge_type, candidate, endpoint_theta
        ):
            best, best_score = edge_type, score
    return best
