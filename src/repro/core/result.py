"""Discovery results returned by the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.schema.model import SchemaGraph


@dataclass
class ShardFailure:
    """One failed execution attempt of a parallel shard.

    The driver appends a record per failure *event*, so a shard that
    crashes twice and then succeeds contributes two records whose
    ``recovered_by`` is filled in retroactively.

    Attributes:
        index: Shard (global batch) index.
        attempt: 0-based execution attempt that failed.
        kind: ``"error"`` (the task raised), ``"worker-lost"`` (its
            process died / the pool broke), ``"timeout"`` (the task
            exceeded ``PGHiveConfig.shard_timeout``), ``"memory"`` (the
            worker's RSS crossed ``PGHiveConfig.shard_memory_limit_mb``
            between pipeline stages), ``"fallback-failed"`` (the final
            in-process execution raised) or ``"corruption"`` (the disk
            backend detected slab corruption while materializing the
            shard and ``corrupt_slab_policy="skip"`` quarantined it --
            never retried, never run in-process, because corrupt bytes
            fail deterministically).
        error: Human-readable cause.
        recovered_by: ``"retry"`` when a later pool attempt succeeded,
            ``"fallback"`` when the in-process re-execution did, ``None``
            while unresolved or when the shard was ultimately dropped
            (non-strict degraded run).
    """

    index: int
    attempt: int
    kind: str
    error: str
    recovered_by: str | None = None

    def describe(self) -> str:
        """One-line summary for logs and the CLI footer."""
        outcome = self.recovered_by or "unrecovered"
        return (
            f"shard {self.index} attempt {self.attempt}: "
            f"{self.kind} ({self.error}) -> {outcome}"
        )


@dataclass
class BatchReport:
    """Per-batch diagnostics of an incremental run.

    ``memo_node_hits``/``memo_edge_hits`` count elements absorbed by the
    DiscoPG-style known-pattern fast path (only nonzero when
    ``PGHiveConfig.memoize_patterns`` is on).

    ``stage_seconds`` breaks ``seconds`` down by pipeline stage: ``embed``
    (label-embedding fit or cache hit), ``vectorize`` (feature matrix /
    feature-set construction), ``cluster`` (LSH parameterization, hashing
    and bucketing), ``extract`` (cluster summaries + Algorithm 2) and
    ``merge`` (folding the batch schema into the running schema).
    ``embedder_reused`` is True when the batch skipped Word2Vec retraining
    because its deduplicated sentence corpus matched the previous batch.

    ``worker`` records which pool worker produced the report (``None``
    for the sequential engine); parallel runs aggregate the per-worker
    reports into a single summary with :meth:`aggregate`.

    ``attempts`` counts how many executions the batch needed: 1 for a
    clean run, more when the fault-tolerant parallel driver retried or
    re-executed the shard (the schema is identical either way, the
    attempts only cost time).
    """

    index: int
    num_nodes: int
    num_edges: int
    node_clusters: int
    edge_clusters: int
    seconds: float
    memo_node_hits: int = 0
    memo_edge_hits: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    embedder_reused: bool = False
    worker: int | None = None
    attempts: int = 1

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (used by run checkpoints)."""
        return {
            "index": self.index,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "node_clusters": self.node_clusters,
            "edge_clusters": self.edge_clusters,
            "seconds": self.seconds,
            "memo_node_hits": self.memo_node_hits,
            "memo_edge_hits": self.memo_edge_hits,
            "stage_seconds": dict(self.stage_seconds),
            "embedder_reused": self.embedder_reused,
            "worker": self.worker,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "BatchReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(record["index"]),
            num_nodes=int(record["num_nodes"]),
            num_edges=int(record["num_edges"]),
            node_clusters=int(record["node_clusters"]),
            edge_clusters=int(record["edge_clusters"]),
            seconds=float(record["seconds"]),
            memo_node_hits=int(record.get("memo_node_hits", 0)),
            memo_edge_hits=int(record.get("memo_edge_hits", 0)),
            stage_seconds=dict(record.get("stage_seconds", {})),
            embedder_reused=bool(record.get("embedder_reused", False)),
            worker=record.get("worker"),
            attempts=int(record.get("attempts", 1)),
        )

    @classmethod
    def aggregate(
        cls, reports: Sequence["BatchReport"], index: int = -1
    ) -> "BatchReport":
        """Combine per-shard (or per-worker) reports into one summary.

        Element and cluster counts add up; ``seconds`` is the summed
        worker compute time (CPU-style, so it can exceed the wall clock
        of a parallel run), and ``stage_seconds`` accumulates stage-wise
        via :meth:`repro.util.timing.StageTimer.add_seconds` semantics.
        """
        stages: dict[str, float] = {}
        for report in reports:
            for name, elapsed in report.stage_seconds.items():
                stages[name] = stages.get(name, 0.0) + elapsed
        return cls(
            index=index,
            num_nodes=sum(r.num_nodes for r in reports),
            num_edges=sum(r.num_edges for r in reports),
            node_clusters=sum(r.node_clusters for r in reports),
            edge_clusters=sum(r.edge_clusters for r in reports),
            seconds=sum(r.seconds for r in reports),
            memo_node_hits=sum(r.memo_node_hits for r in reports),
            memo_edge_hits=sum(r.memo_edge_hits for r in reports),
            stage_seconds=stages,
            embedder_reused=all(r.embedder_reused for r in reports)
            if reports else False,
        )


@dataclass
class DiscoveryResult:
    """Outcome of a schema discovery run.

    Attributes:
        schema: The inferred schema graph.
        node_assignment: node id -> discovered type name.
        edge_assignment: edge id -> discovered type name.
        batches: Per-batch reports (a static run has exactly one).
        parameters: Human-readable record of the LSH parameters used per
            batch and element kind, e.g. ``{"batch0/nodes": "mu=... b=..."}``.
        total_seconds: End-to-end wall-clock time of discovery (excluding
            optional post-processing unless it ran inside the pipeline).
        discovery_seconds: Time until type discovery only (the quantity
            Figure 5 plots), i.e. load + preprocess + cluster + extract.
        shard_failures: Structured record of every shard failure event a
            fault-tolerant parallel run observed (empty for clean runs).
            A recovered run's ``schema`` is byte-identical to a clean
            one; entries with ``recovered_by is None`` mark shards whose
            contribution is missing (non-strict degraded run).
        resumed_from: First batch index actually processed by this run
            (nonzero when a sequential run resumed from a checkpoint).
        resumed_shards: Shard indices restored from the parallel shard
            journal instead of recomputed (empty for clean and
            sequential runs).
        parallel_fallback: Human-readable reason why a ``jobs > 1``
            request ran on the sequential engine anyway (``None`` when
            parallel ran, or when parallelism was never requested).
    """

    schema: SchemaGraph
    node_assignment: dict[int, str] = field(default_factory=dict)
    edge_assignment: dict[int, str] = field(default_factory=dict)
    batches: list[BatchReport] = field(default_factory=list)
    parameters: dict[str, str] = field(default_factory=dict)
    total_seconds: float = 0.0
    discovery_seconds: float = 0.0
    shard_failures: list[ShardFailure] = field(default_factory=list)
    resumed_from: int = 0
    resumed_shards: list[int] = field(default_factory=list)
    parallel_fallback: str | None = None

    @property
    def degraded_shards(self) -> list[int]:
        """Shard indices that never produced a schema (sorted, unique)."""
        return sorted({
            f.index for f in self.shard_failures if f.recovered_by is None
        })

    @property
    def num_node_types(self) -> int:
        """Number of discovered node types."""
        return len(self.schema.node_types)

    @property
    def num_edge_types(self) -> int:
        """Number of discovered edge types."""
        return len(self.schema.edge_types)

    def aggregate_stage_seconds(self) -> dict[str, float]:
        """Stage-wise time summed over every batch report.

        For sequential runs this is the per-stage breakdown of the whole
        run; for parallel runs it is the total compute spent per stage
        across all workers (which can exceed the wall clock).
        """
        return BatchReport.aggregate(self.batches).stage_seconds

    def refresh_assignments(self) -> None:
        """Rebuild the id -> type-name maps from the schema's members."""
        self.node_assignment = {
            member: node_type.name
            for node_type in self.schema.node_types.values()
            for member in node_type.members
        }
        self.edge_assignment = {
            member: edge_type.name
            for edge_type in self.schema.edge_types.values()
            for member in edge_type.members
        }
