"""PG-HIVE core: the paper's primary contribution.

Contains the full schema discovery pipeline of Algorithm 1 --
vectorization (section 4.1), adaptive LSH clustering (section 4.2), type
extraction and merging (Algorithm 2 / section 4.3), constraint, datatype
and cardinality inference (section 4.4), and the incremental engine
(section 4.6).  The entry point is :class:`PGHive`.
"""

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.faults import FaultInjector, FaultPlan, FaultSpec, InjectedFault
from repro.core.parallel import (
    ParallelDiscovery,
    ShardRecoveryError,
    ShardResult,
    combine_shard_results,
)
from repro.core.pipeline import PGHive
from repro.core.postprocess import (
    TypeStats,
    apply_partial_stats,
    attach_partial_stats,
    sharded_postprocess_enabled,
)
from repro.core.result import DiscoveryResult, ShardFailure
from repro.core.adaptive import AdaptiveParameters, choose_parameters
from repro.core.datatypes import (
    infer_datatype,
    infer_datatype_sampled,
    infer_value_type,
    is_value_compatible,
)
from repro.core.cardinality_bounds import (
    CardinalityBounds,
    compute_cardinality_bounds,
)
from repro.core.value_profiles import (
    PropertyPartial,
    ValueProfile,
    profile_values,
)

__all__ = [
    "AdaptiveParameters",
    "CardinalityBounds",
    "DiscoveryResult",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LSHMethod",
    "PGHive",
    "PGHiveConfig",
    "ParallelDiscovery",
    "PropertyPartial",
    "ShardFailure",
    "ShardRecoveryError",
    "ShardResult",
    "TypeStats",
    "ValueProfile",
    "apply_partial_stats",
    "attach_partial_stats",
    "choose_parameters",
    "combine_shard_results",
    "compute_cardinality_bounds",
    "infer_datatype",
    "infer_datatype_sampled",
    "infer_value_type",
    "is_value_compatible",
    "profile_values",
    "sharded_postprocess_enabled",
]
