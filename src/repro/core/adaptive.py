"""Adaptive LSH parameterization (paper section 4.2).

Before clustering, PG-HIVE samples a small portion of the data, estimates
the distance scale ``mu`` (average pairwise Euclidean distance over the
sample), and derives:

* the base bucket length ``b_base = 1.2 * mu`` (the 1.2 factor avoids
  over-fragmentation when the sample distances are small),
* a label-diversity factor ``alpha``: 0.8 when the dataset has at most 3
  distinct labels, 1.0 for 4-10, 1.5 for more than 10,
* the bucket length ``b = b_base * alpha``,
* the number of tables ``T`` scaled by dataset size and label diversity,
  clamped into the practically useful range [15, 35] for nodes and
  [15, 35] for edges (the paper's "practical ranges"; edges also work with
  slightly smaller alpha).

Users can always override any of the three values through
:class:`~repro.core.config.PGHiveConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_T_MIN, _T_MAX = 15, 35
_MIN_BUCKET = 1e-3


@dataclass(frozen=True, slots=True)
class AdaptiveParameters:
    """The resolved clustering parameters for one batch."""

    bucket_length: float
    num_tables: int
    alpha: float
    mu: float
    sample_size: int

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"mu={self.mu:.3f} alpha={self.alpha:.2f} "
            f"b={self.bucket_length:.3f} T={self.num_tables} "
            f"(sample={self.sample_size})"
        )


def label_alpha(num_labels: int) -> float:
    """The alpha heuristic from the number of distinct labels L."""
    if num_labels <= 3:
        return 0.8
    if num_labels <= 10:
        return 1.0
    return 1.5


def estimate_distance_scale(
    vectors: np.ndarray,
    sample_size: int,
    fraction: float,
    seed: int = 0,
    pattern_ids: np.ndarray | None = None,
) -> tuple[float, int]:
    """Average pairwise Euclidean distance over a random sample.

    Samples ``max(sample_size, fraction * n)`` rows (all rows when fewer)
    and averages the full pairwise distance matrix over the sample.

    When ``pattern_ids`` is given, ``vectors`` is a compact per-pattern
    matrix and logical row ``i`` is ``vectors[pattern_ids[i]]``.  The same
    RNG draws are made over the logical row count and the sampled rows are
    gathered through the indirection, so the estimate is bit-identical to
    running on the expanded matrix without ever materializing it.

    Returns:
        ``(mu, actual_sample_size)``.  ``mu`` is at least a tiny positive
        epsilon so the derived bucket length stays valid even for
        degenerate (all-identical) data.
    """
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
    if pattern_ids is None:
        n = vectors.shape[0]
    else:
        pattern_ids = np.asarray(pattern_ids, dtype=np.int64)
        n = int(pattern_ids.size)
    if n == 0:
        return 1.0, 0
    target = min(n, max(int(sample_size), int(math.ceil(fraction * n))))
    rng = np.random.default_rng(seed)
    if target < n:
        rows = rng.choice(n, size=target, replace=False)
        sample = (
            vectors[rows] if pattern_ids is None else vectors[pattern_ids[rows]]
        )
    else:
        sample = vectors if pattern_ids is None else vectors[pattern_ids]
    if sample.shape[0] < 2:
        return 1.0, sample.shape[0]
    sq_norms = np.square(sample).sum(axis=1)
    gram = sample @ sample.T
    d2 = np.maximum(sq_norms[:, None] + sq_norms[None, :] - 2.0 * gram, 0.0)
    upper = np.triu_indices(sample.shape[0], k=1)
    mu = float(np.sqrt(d2[upper]).mean())
    return max(mu, _MIN_BUCKET), sample.shape[0]


def choose_num_tables(
    b_base: float, alpha: float, count: int, kind: str = "node"
) -> int:
    """The paper's T heuristic, clamped to the practical range [15, 35].

    Nodes: ``T = b_base * max(5, alpha * min(25, log10 N))``;
    edges use the slightly smaller floor/cap ``max(3, ...)``/``min(20, .)``.
    The raw product depends on the magnitude of ``b_base``, so the final
    clamp into the empirically useful range (paper: "T in [15, 35] works
    well across datasets") makes the heuristic scale-free.
    """
    log_count = math.log10(max(count, 10))
    if kind == "edge":
        raw = b_base * max(3.0, alpha * min(20.0, log_count))
    else:
        raw = b_base * max(5.0, alpha * min(25.0, log_count))
    return int(min(_T_MAX, max(_T_MIN, round(raw))))


def choose_parameters(
    vectors: np.ndarray,
    num_labels: int,
    kind: str = "node",
    sample_size: int = 500,
    sample_fraction: float = 0.01,
    seed: int = 0,
    bucket_length: float | None = None,
    num_tables: int | None = None,
    alpha: float | None = None,
    pattern_ids: np.ndarray | None = None,
) -> AdaptiveParameters:
    """Resolve (b, T, alpha) for a batch, honoring manual overrides.

    Args:
        vectors: The feature matrix the parameters will cluster.
        num_labels: Distinct label count L of the dataset.
        kind: ``"node"`` or ``"edge"`` (edges use the smaller T heuristic).
        sample_size / sample_fraction: Sampling policy for mu.
        seed: RNG seed for the sample.
        bucket_length / num_tables / alpha: Manual overrides; ``None``
            means adapt.
        pattern_ids: When given, ``vectors`` is a compact per-pattern
            matrix and the logical batch is ``vectors[pattern_ids]`` (see
            :func:`estimate_distance_scale`); parameters come out
            bit-identical to the expanded call.
    """
    mu, actual = estimate_distance_scale(
        vectors, sample_size, sample_fraction, seed, pattern_ids=pattern_ids
    )
    count = vectors.shape[0] if pattern_ids is None else int(pattern_ids.size)
    resolved_alpha = label_alpha(num_labels) if alpha is None else float(alpha)
    b_base = 1.2 * mu
    resolved_b = (
        max(_MIN_BUCKET, b_base * resolved_alpha)
        if bucket_length is None
        else float(bucket_length)
    )
    resolved_t = (
        choose_num_tables(b_base, resolved_alpha, count, kind)
        if num_tables is None
        else int(num_tables)
    )
    return AdaptiveParameters(
        bucket_length=resolved_b,
        num_tables=resolved_t,
        alpha=resolved_alpha,
        mu=mu,
        sample_size=actual,
    )
