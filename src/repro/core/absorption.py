"""Merge-aware pattern memoization for the parallel shard path.

The sequential engine's ``memoize_patterns`` fast path absorbs elements
whose (label set, property-key set) pattern already exists in the
*running* schema, skipping vectorization and clustering
(:meth:`repro.core.incremental.IncrementalDiscovery._absorb_known_patterns`).
That coupling -- every batch consults the schema built from all earlier
batches -- is what historically forced memoized runs onto the sequential
engine.

This module decouples it with a two-phase protocol:

1. The driver discovers one *seed* shard first (or reloads it from the
   resume journal) and freezes its schema into a :class:`MemoSnapshot` --
   an immutable table of absorbable patterns that is cheap to ship to
   forked workers.
2. Every other shard worker runs :func:`absorb_batch` against the
   snapshot *before* columnization.  Absorbed elements never enter the
   shard's LSH pipeline; they are summarized into
   :class:`AbsorptionEntry` records (count, members, property counts,
   optional partial stats) that ride back with the shard result.
3. After the order-independent merge tree combines the shard schemas,
   the driver calls :func:`replay_absorption` to fold every entry into
   its merged host type -- before partial post-processing stats are
   consumed, so constraints and cardinalities see the absorbed members.

The snapshot is a *subset* of the running schema the sequential path
would have consulted, so parallel absorption is strictly more
conservative: anything it absorbs the sequential path would have
absorbed too.  The reverse does not hold, which is why memoized parallel
runs are specified as type-equivalent -- identical type sets, instance
counts, constraints and F1 -- rather than byte-identical to the
sequential memoized engine (``tests/test_memoization.py`` pins exactly
that contract).

Host lookup during replay is monotone for nodes (labeled node types only
merge with identical label sets, so the exact-label host always exists)
but not for edges: merging unions endpoint label sets, which can push a
Jaccard endpoint comparison *below* threshold after growth.  The replay
therefore resolves edge hosts through a fallback chain -- endpoint-
compatible superset first, then any superset, then any same-label type.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

# repro.schema must finish loading before repro.core.datatypes starts
# (schema/__init__ -> validate -> datatypes), so the schema imports come
# before repro.core.postprocess, whose chain reaches datatypes first.
from repro.schema.merge import endpoints_compatible
from repro.schema.model import EdgeType, NodeType, SchemaGraph

from repro.core.postprocess import TypeStats, _observe_properties
from repro.graph.model import Edge, Node
from repro.util.similarity import jaccard

__all__ = [
    "AbsorptionEntry",
    "MemoEdgePattern",
    "MemoNodePattern",
    "MemoSnapshot",
    "absorb_batch",
    "replay_absorption",
    "snapshot_from_schema",
]


@dataclass(frozen=True)
class MemoNodePattern:
    """Absorbable node pattern: an exact label set and its known keys."""

    labels: frozenset[str]
    property_keys: frozenset[str]


@dataclass(frozen=True)
class MemoEdgePattern:
    """Absorbable edge pattern: labels, keys, and the endpoint pair."""

    labels: frozenset[str]
    property_keys: frozenset[str]
    source_labels: frozenset[str]
    target_labels: frozenset[str]
    source_tokens: frozenset[str]
    target_tokens: frozenset[str]


@dataclass
class MemoSnapshot:
    """Frozen absorption table built from the seed shard's schema.

    ``nodes`` maps an exact label set to its pattern (mirroring the
    sequential path's ``{type.labels: type}`` lookup); ``edges`` maps an
    edge label set to the same-label patterns in schema insertion order,
    because sequential absorption tries candidates in that order and the
    first match wins.
    """

    nodes: dict[frozenset[str], MemoNodePattern] = field(default_factory=dict)
    edges: dict[frozenset[str], tuple[MemoEdgePattern, ...]] = field(
        default_factory=dict
    )


def snapshot_from_schema(schema: SchemaGraph) -> MemoSnapshot:
    """Freeze a schema's labeled types into an absorption table."""
    snapshot = MemoSnapshot()
    for node_type in schema.node_types.values():
        if node_type.labels:
            snapshot.nodes[node_type.labels] = MemoNodePattern(
                labels=node_type.labels,
                property_keys=node_type.property_keys,
            )
    grouped: dict[frozenset[str], list[MemoEdgePattern]] = {}
    for edge_type in schema.edge_types.values():
        if not edge_type.labels:
            continue
        grouped.setdefault(edge_type.labels, []).append(
            MemoEdgePattern(
                labels=edge_type.labels,
                property_keys=edge_type.property_keys,
                source_labels=edge_type.source_labels,
                target_labels=edge_type.target_labels,
                source_tokens=frozenset(edge_type.source_tokens),
                target_tokens=frozenset(edge_type.target_tokens),
            )
        )
    snapshot.edges = {labels: tuple(patterns) for labels, patterns in grouped.items()}
    return snapshot


@dataclass
class AbsorptionEntry:
    """Aggregated absorptions against one snapshot pattern in one shard.

    Carries everything the driver needs to replay the absorption into
    the merged schema: the pattern identity for host lookup, the member
    bookkeeping the host must gain, and (when sharded post-processing is
    active) the partial statistics of the absorbed elements.
    """

    kind: str  # "node" | "edge"
    labels: frozenset[str]
    property_keys: frozenset[str]
    count: int = 0
    members: list[int] = field(default_factory=list)
    property_counts: Counter[str] = field(default_factory=Counter)
    source_labels: frozenset[str] = frozenset()
    target_labels: frozenset[str] = frozenset()
    source_tokens: frozenset[str] = frozenset()
    target_tokens: frozenset[str] = frozenset()
    stats: TypeStats | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (used by the parallel shard journal)."""
        return {
            "kind": self.kind,
            "labels": sorted(self.labels),
            "property_keys": sorted(self.property_keys),
            "count": self.count,
            "members": list(self.members),
            "property_counts": {
                key: self.property_counts[key]
                for key in sorted(self.property_counts)
            },
            "source_labels": sorted(self.source_labels),
            "target_labels": sorted(self.target_labels),
            "source_tokens": sorted(self.source_tokens),
            "target_tokens": sorted(self.target_tokens),
            "stats": None if self.stats is None else self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "AbsorptionEntry":
        """Inverse of :meth:`to_dict`."""
        stats_record = record.get("stats")
        return cls(
            kind=str(record["kind"]),
            labels=frozenset(record.get("labels", [])),
            property_keys=frozenset(record.get("property_keys", [])),
            count=int(record.get("count", 0)),
            members=[int(member) for member in record.get("members", [])],
            property_counts=Counter(
                {
                    str(key): int(count)
                    for key, count in record.get("property_counts", {}).items()
                }
            ),
            source_labels=frozenset(record.get("source_labels", [])),
            target_labels=frozenset(record.get("target_labels", [])),
            source_tokens=frozenset(record.get("source_tokens", [])),
            target_tokens=frozenset(record.get("target_tokens", [])),
            stats=(
                None if stats_record is None
                else TypeStats.from_dict(stats_record)
            ),
        )


def _sides_compatible(
    pattern: MemoEdgePattern,
    probe_source: frozenset[str],
    probe_target: frozenset[str],
    threshold: float,
) -> bool:
    """The :func:`~repro.schema.merge.endpoints_compatible` check against a
    snapshot pattern and a bare endpoint-label probe (probes carry no
    cluster tokens, exactly like the sequential path's probe edge type)."""
    pattern_src = pattern.source_labels | pattern.source_tokens
    pattern_tgt = pattern.target_labels | pattern.target_tokens
    source_ok = (
        not pattern_src or not probe_source
        or jaccard(pattern_src, probe_source) >= threshold
    )
    target_ok = (
        not pattern_tgt or not probe_target
        or jaccard(pattern_tgt, probe_target) >= threshold
    )
    return source_ok and target_ok


def absorb_batch(
    snapshot: MemoSnapshot,
    nodes: Sequence[Node],
    edges: Sequence[Edge],
    endpoint_labels: Mapping[int, frozenset[str]],
    threshold: float,
    compute_stats: bool,
    track_values: bool = True,
) -> tuple[list[AbsorptionEntry], list[Node], list[Edge]]:
    """Absorb known-pattern elements of one batch against the snapshot.

    Mirrors the sequential
    :meth:`~repro.core.incremental.IncrementalDiscovery._absorb_known_patterns`
    conditions exactly (exact node label set + key subset; labeled edges
    with key subset, endpoint-label subsets and Jaccard-compatible
    endpoints; first matching pattern wins), but aggregates the hits into
    :class:`AbsorptionEntry` records instead of mutating a schema.

    Returns:
        ``(entries, remaining_nodes, remaining_edges)`` -- entries in
        first-hit order, and the elements the shard pipeline still has
        to discover.
    """
    entries: dict[tuple[str, frozenset[str], int], AbsorptionEntry] = {}
    remaining_nodes: list[Node] = []
    remaining_edges: list[Edge] = []
    empty: frozenset[str] = frozenset()
    for node in nodes:
        pattern = snapshot.nodes.get(node.labels)
        if pattern is None or not node.property_keys <= pattern.property_keys:
            remaining_nodes.append(node)
            continue
        key = ("node", node.labels, 0)
        entry = entries.get(key)
        if entry is None:
            entry = AbsorptionEntry(
                kind="node",
                labels=pattern.labels,
                property_keys=pattern.property_keys,
                stats=TypeStats() if compute_stats else None,
            )
            entries[key] = entry
        entry.count += 1
        entry.members.append(node.id)
        entry.property_counts.update(node.properties.keys())
        if entry.stats is not None:
            _observe_properties(
                entry.stats, node.properties, pattern.property_keys,
                track_values,
            )
    for edge in edges:
        matched = False
        if edge.labels:
            candidates = snapshot.edges.get(edge.labels, ())
            probe_source = endpoint_labels.get(edge.source, empty)
            probe_target = endpoint_labels.get(edge.target, empty)
            for position, pattern in enumerate(candidates):
                if not (
                    edge.property_keys <= pattern.property_keys
                    and probe_source <= pattern.source_labels
                    and probe_target <= pattern.target_labels
                    and _sides_compatible(
                        pattern, probe_source, probe_target, threshold
                    )
                ):
                    continue
                key = ("edge", edge.labels, position)
                entry = entries.get(key)
                if entry is None:
                    entry = AbsorptionEntry(
                        kind="edge",
                        labels=pattern.labels,
                        property_keys=pattern.property_keys,
                        source_labels=pattern.source_labels,
                        target_labels=pattern.target_labels,
                        source_tokens=pattern.source_tokens,
                        target_tokens=pattern.target_tokens,
                        stats=TypeStats() if compute_stats else None,
                    )
                    entries[key] = entry
                entry.count += 1
                entry.members.append(edge.id)
                entry.property_counts.update(edge.properties.keys())
                if entry.stats is not None:
                    _observe_properties(
                        entry.stats, edge.properties, pattern.property_keys,
                        track_values,
                    )
                    entry.stats.out_degrees[edge.source] = (
                        entry.stats.out_degrees.get(edge.source, 0) + 1
                    )
                    entry.stats.in_degrees[edge.target] = (
                        entry.stats.in_degrees.get(edge.target, 0) + 1
                    )
                matched = True
                break
        if not matched:
            remaining_edges.append(edge)
    return list(entries.values()), remaining_nodes, remaining_edges


def _find_edge_host(
    schema: SchemaGraph, entry: AbsorptionEntry, threshold: float
) -> EdgeType | None:
    """Resolve the merged host for an absorbed edge entry.

    Merging unions endpoint labels, so the snapshot pattern's exact
    endpoint pair may no longer pass the Jaccard check against its own
    (grown) descendant.  Superset containment *is* preserved by merging,
    hence the chain: endpoint-compatible superset > any superset > any
    same-label type.
    """
    candidates = schema.edge_types_for_labels(entry.labels)
    if not candidates:
        return None
    probe = EdgeType(
        "?",
        entry.labels,
        source_labels=entry.source_labels,
        target_labels=entry.target_labels,
        source_tokens=set(entry.source_tokens),
        target_tokens=set(entry.target_tokens),
    )
    supersets = [
        candidate
        for candidate in candidates
        if entry.property_keys <= candidate.property_keys
        and entry.source_labels <= candidate.source_labels
        and entry.target_labels <= candidate.target_labels
    ]
    for candidate in supersets:
        if endpoints_compatible(candidate, probe, threshold):
            return candidate
    if supersets:
        return supersets[0]
    return candidates[0]


def replay_absorption(
    schema: SchemaGraph,
    shard_entries: Sequence[Sequence[AbsorptionEntry]],
    threshold: float,
) -> int:
    """Fold shards' absorption entries into the merged schema in place.

    Runs at the driver after the merge tree, *before* partial
    post-processing stats are applied, so constraints / datatypes /
    cardinalities account for the absorbed members.  ``shard_entries``
    must be ordered by shard index for a deterministic result.

    Returns:
        The total number of absorbed elements replayed.
    """
    node_hosts: dict[frozenset[str], NodeType] = {}
    for node_type in schema.node_types.values():
        if node_type.labels:
            node_hosts[node_type.labels] = node_type
    replayed = 0
    for entries in shard_entries:
        for entry in entries:
            host: NodeType | EdgeType | None
            if entry.kind == "node":
                host = node_hosts.get(entry.labels)
            else:
                host = _find_edge_host(schema, entry, threshold)
            if host is None:
                continue
            host.instance_count += entry.count
            host.property_counts.update(entry.property_counts)
            host.members.extend(entry.members)
            if entry.stats is not None:
                if host.stats is None:
                    host.stats = entry.stats
                else:
                    host.stats.merge(entry.stats)
            replayed += entry.count
    return replayed
