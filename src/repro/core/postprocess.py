"""Post-processing passes (paper section 4.4).

Three optional enrichment passes over a discovered schema:

* :func:`infer_property_constraints` -- a property is MANDATORY for a type
  when it occurs in every instance (f_T(p) = 1), OPTIONAL otherwise.
  Computed from the per-type occurrence counters that the merge steps keep
  exact across batches, so the answer is identical in static and
  incremental mode.
* :func:`infer_datatypes` -- assign each property the most specific
  datatype compatible with its observed values, via a full scan or the
  paper's sampled mode (10 % of values, at least 1000).
* :func:`compute_cardinalities` -- classify each edge type from its degree
  extremes: max out-degree and max in-degree over its member edges.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.config import PGHiveConfig
from repro.core.datatypes import infer_datatype, infer_datatype_sampled
from repro.graph.model import Edge, Node
from repro.graph.store import GraphStore
from repro.schema.model import (
    Cardinality,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)


def infer_property_constraints(schema: SchemaGraph) -> None:
    """Mark every property of every type MANDATORY or OPTIONAL in place."""
    for type_record in _all_types(schema):
        for key, spec in type_record.properties.items():
            if (
                type_record.instance_count > 0
                and type_record.property_counts.get(key, 0)
                == type_record.instance_count
            ):
                spec.status = PropertyStatus.MANDATORY
            else:
                spec.status = PropertyStatus.OPTIONAL


def infer_datatypes(
    schema: SchemaGraph,
    store: GraphStore,
    config: PGHiveConfig | None = None,
) -> None:
    """Assign datatypes to every property of every type in place.

    Uses the member ids recorded on each type to pull values back out of
    the store.  Honors the config's sampling mode.
    """
    config = config or PGHiveConfig()
    for node_type in schema.node_types.values():
        values_by_key = _collect_values(
            (store.graph.node(nid) for nid in node_type.members),
            node_type.property_keys,
        )
        _assign_datatypes(node_type, values_by_key, config)
    for edge_type in schema.edge_types.values():
        values_by_key = _collect_values(
            (store.graph.edge(eid) for eid in edge_type.members),
            edge_type.property_keys,
        )
        _assign_datatypes(edge_type, values_by_key, config)


def compute_cardinalities(schema: SchemaGraph, store: GraphStore) -> None:
    """Classify every edge type's cardinality from degree extremes."""
    for edge_type in schema.edge_types.values():
        max_out, max_in = store.degree_extremes(edge_type.members)
        edge_type.max_out = max(edge_type.max_out, max_out)
        edge_type.max_in = max(edge_type.max_in, max_in)
        edge_type.cardinality = Cardinality.from_degrees(
            edge_type.max_out, edge_type.max_in
        )


def _collect_values(
    elements: Iterable[Node] | Iterable[Edge], keys: Iterable[str]
) -> dict[str, list[Any]]:
    """Property key -> list of observed values over the given elements."""
    values: dict[str, list[Any]] = {key: [] for key in keys}
    for element in elements:
        for key, value in element.properties.items():
            bucket = values.get(key)
            if bucket is not None:
                bucket.append(value)
    return values


def _assign_datatypes(
    type_record: NodeType | EdgeType,
    values_by_key: dict[str, list[Any]],
    config: PGHiveConfig,
) -> None:
    """Set the datatype (and optionally the value profile) of each spec."""
    from repro.core.value_profiles import profile_values

    for key, values in values_by_key.items():
        spec = type_record.ensure_property(key)
        if not values:
            continue
        if config.infer_datatypes_by_sampling:
            spec.datatype = infer_datatype_sampled(
                values,
                fraction=config.datatype_sample_fraction,
                minimum=config.datatype_sample_minimum,
                seed=config.seed,
            )
        else:
            spec.datatype = infer_datatype(values)
        if config.infer_value_profiles:
            spec.profile = profile_values(values, datatype=spec.datatype)


def _all_types(schema: SchemaGraph) -> Iterator[NodeType | EdgeType]:
    """Iterate node types then edge types."""
    yield from schema.node_types.values()
    yield from schema.edge_types.values()
