"""Post-processing passes (paper section 4.4).

Three optional enrichment passes over a discovered schema:

* :func:`infer_property_constraints` -- a property is MANDATORY for a type
  when it occurs in every instance (f_T(p) = 1), OPTIONAL otherwise.
  Computed from the per-type occurrence counters that the merge steps keep
  exact across batches, so the answer is identical in static and
  incremental mode.
* :func:`infer_datatypes` -- assign each property the most specific
  datatype compatible with its observed values, via a full scan or the
  paper's sampled mode (10 % of values, at least 1000).
* :func:`compute_cardinalities` -- classify each edge type from its degree
  extremes: max out-degree and max in-degree over its member edges.

Sharded post-processing
-----------------------
The datatype and cardinality passes normally need the store (they pull
values and degrees back out by member id), which forces them to run
serially in the driver even for a parallel run.  :class:`TypeStats` moves
them into the shard workers as *mergeable partial statistics*:

* each worker calls :func:`attach_partial_stats` on its shard schema,
  recording per-property :class:`~repro.core.value_profiles.PropertyPartial`
  folds (datatype lattice join, value-profile ingredients) and -- for
  edge types -- **per-node degree count maps**;
* the stats ride on the types through the ordinary schema merge tree
  (:func:`repro.schema.merge.merge_node_types` /
  :func:`~repro.schema.merge.merge_edge_types` fold them whenever types
  merge), overlapping the post-processing reduction with the schema
  reduction;
* the driver calls :func:`apply_partial_stats` on the combined schema,
  which reproduces the serial passes byte for byte without touching the
  store, then clears the stats.

Degree maps are merged by **summing counts per node id** before taking
the max.  Shards partition edges by *source* node, so per-shard
out-degrees happen to be complete, but a node's incoming edges span
shards: taking a max of per-shard maxima would undercount ``max_in``.
Summing per node is exact in both directions.

The one mode that cannot shard is ``infer_datatypes_by_sampling``: its
seeded sample is drawn from the merged type's full value sequence, which
no per-shard statistic can reproduce, so
:func:`sharded_postprocess_enabled` gates workers off and the driver
falls back to the serial passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.config import PGHiveConfig
from repro.core.datatypes import infer_datatype, infer_datatype_sampled
from repro.core.value_profiles import PropertyPartial
from repro.graph.model import Edge, Node
from repro.graph.store import BaseGraphStore
from repro.schema.model import (
    Cardinality,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)


def infer_property_constraints(schema: SchemaGraph) -> None:
    """Mark every property of every type MANDATORY or OPTIONAL in place."""
    for type_record in _all_types(schema):
        for key, spec in type_record.properties.items():
            if (
                type_record.instance_count > 0
                and type_record.property_counts.get(key, 0)
                == type_record.instance_count
            ):
                spec.status = PropertyStatus.MANDATORY
            else:
                spec.status = PropertyStatus.OPTIONAL


def infer_datatypes(
    schema: SchemaGraph,
    store: BaseGraphStore,
    config: PGHiveConfig | None = None,
) -> None:
    """Assign datatypes to every property of every type in place.

    Uses the member ids recorded on each type to pull values back out of
    the store.  Honors the config's sampling mode.
    """
    config = config or PGHiveConfig()
    for node_type in schema.node_types.values():
        values_by_key = _collect_values(
            (store.node(nid) for nid in node_type.members),
            node_type.property_keys,
        )
        _assign_datatypes(node_type, values_by_key, config)
    for edge_type in schema.edge_types.values():
        values_by_key = _collect_values(
            (store.edge(eid) for eid in edge_type.members),
            edge_type.property_keys,
        )
        _assign_datatypes(edge_type, values_by_key, config)


def compute_cardinalities(schema: SchemaGraph, store: BaseGraphStore) -> None:
    """Classify every edge type's cardinality from degree extremes."""
    for edge_type in schema.edge_types.values():
        max_out, max_in = store.degree_extremes(edge_type.members)
        edge_type.max_out = max(edge_type.max_out, max_out)
        edge_type.max_in = max(edge_type.max_in, max_in)
        edge_type.cardinality = Cardinality.from_degrees(
            edge_type.max_out, edge_type.max_in
        )


def _collect_values(
    elements: Iterable[Node] | Iterable[Edge], keys: Iterable[str]
) -> dict[str, list[Any]]:
    """Property key -> list of observed values over the given elements."""
    values: dict[str, list[Any]] = {key: [] for key in keys}
    for element in elements:
        for key, value in element.properties.items():
            bucket = values.get(key)
            if bucket is not None:
                bucket.append(value)
    return values


def _assign_datatypes(
    type_record: NodeType | EdgeType,
    values_by_key: dict[str, list[Any]],
    config: PGHiveConfig,
) -> None:
    """Set the datatype (and optionally the value profile) of each spec."""
    from repro.core.value_profiles import profile_values

    for key, values in values_by_key.items():
        spec = type_record.ensure_property(key)
        if not values:
            continue
        if config.infer_datatypes_by_sampling:
            spec.datatype = infer_datatype_sampled(
                values,
                fraction=config.datatype_sample_fraction,
                minimum=config.datatype_sample_minimum,
                seed=config.seed,
            )
        else:
            spec.datatype = infer_datatype(values)
        if config.infer_value_profiles:
            spec.profile = profile_values(values, datatype=spec.datatype)


def _all_types(schema: SchemaGraph) -> Iterator[NodeType | EdgeType]:
    """Iterate node types then edge types."""
    yield from schema.node_types.values()
    yield from schema.edge_types.values()


# ---------------------------------------------------------------------------
# Sharded post-processing (mergeable partial statistics)
# ---------------------------------------------------------------------------

@dataclass
class TypeStats:
    """Mergeable post-processing statistics of one (shard-local) type.

    Attributes:
        properties: Property key -> partial value statistics.
        out_degrees / in_degrees: Node id -> number of member edges
            leaving / arriving at that node (edge types only; empty for
            node types).  Merged by summing counts per node id -- never
            by taking a max of per-shard maxima, which would undercount
            whenever one node's edges span shards.
    """

    properties: dict[str, PropertyPartial] = field(default_factory=dict)
    out_degrees: dict[int, int] = field(default_factory=dict)
    in_degrees: dict[int, int] = field(default_factory=dict)

    def merge(self, other: "TypeStats") -> "TypeStats":
        """Fold another shard's stats into this one (returns self)."""
        for key, partial in other.properties.items():
            mine = self.properties.get(key)
            if mine is None:
                self.properties[key] = partial
            else:
                mine.merge(partial)
        for node_id, count in other.out_degrees.items():
            self.out_degrees[node_id] = (
                self.out_degrees.get(node_id, 0) + count
            )
        for node_id, count in other.in_degrees.items():
            self.in_degrees[node_id] = self.in_degrees.get(node_id, 0) + count
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (used by the parallel shard journal)."""
        return {
            "properties": {
                key: self.properties[key].to_dict()
                for key in sorted(self.properties)
            },
            "out_degrees": {
                str(node_id): self.out_degrees[node_id]
                for node_id in sorted(self.out_degrees)
            },
            "in_degrees": {
                str(node_id): self.in_degrees[node_id]
                for node_id in sorted(self.in_degrees)
            },
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "TypeStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            properties={
                key: PropertyPartial.from_dict(partial)
                for key, partial in record.get("properties", {}).items()
            },
            out_degrees={
                int(node_id): int(count)
                for node_id, count in record.get("out_degrees", {}).items()
            },
            in_degrees={
                int(node_id): int(count)
                for node_id, count in record.get("in_degrees", {}).items()
            },
        )


def sharded_postprocess_enabled(config: PGHiveConfig) -> bool:
    """Whether shard workers should compute partial post-processing stats.

    The sampling mode draws one seeded sample from each merged type's
    full value sequence -- a global computation no per-shard fold can
    reproduce -- so it keeps the serial store-backed passes.
    """
    return config.post_processing and not config.infer_datatypes_by_sampling


def attach_partial_stats(
    schema: SchemaGraph,
    nodes: Sequence[Node],
    edges: Sequence[Edge],
    track_values: bool = True,
) -> None:
    """Compute and attach :class:`TypeStats` for every type in place.

    Runs in the shard worker against the materialized batch elements the
    schema's member ids refer to.  One pass per member, mirroring what
    the serial :func:`infer_datatypes` / :func:`compute_cardinalities`
    would observe for the same members.

    ``track_values=False`` (the worker passes
    ``config.infer_value_profiles``) folds only datatypes, counts and
    degree maps: without profiles the driver never reads the
    distinct-value sketch or the bounds, and retaining them would ship
    every distinct property value back through the merge -- unbounded
    driver memory on an out-of-core run.
    """
    node_by_id = {node.id: node for node in nodes}
    edge_by_id = {edge.id: edge for edge in edges}
    for node_type in schema.node_types.values():
        stats = TypeStats()
        keys = node_type.property_keys
        for member in node_type.members:
            _observe_properties(
                stats, node_by_id[member].properties, keys, track_values
            )
        node_type.stats = stats
    for edge_type in schema.edge_types.values():
        stats = TypeStats()
        keys = edge_type.property_keys
        for member in edge_type.members:
            edge = edge_by_id[member]
            _observe_properties(stats, edge.properties, keys, track_values)
            stats.out_degrees[edge.source] = (
                stats.out_degrees.get(edge.source, 0) + 1
            )
            stats.in_degrees[edge.target] = (
                stats.in_degrees.get(edge.target, 0) + 1
            )
        edge_type.stats = stats


def _observe_properties(
    stats: TypeStats,
    properties: Mapping[str, Any],
    keys: frozenset[str],
    track_values: bool = True,
) -> None:
    """Fold one element's properties (restricted to the type's keys).

    ``track_values=False`` keeps only the datatype lattice and the
    observation count (see :meth:`PropertyPartial.observe_datatype`).
    """
    for key, value in properties.items():
        if key not in keys:
            continue
        partial = stats.properties.get(key)
        if partial is None:
            partial = PropertyPartial()
            stats.properties[key] = partial
        if track_values:
            partial.observe(value)
        else:
            partial.observe_datatype(value)


def apply_partial_stats(
    schema: SchemaGraph, config: PGHiveConfig | None = None
) -> bool:
    """Run post-processing from merged partial stats; True on success.

    Reproduces the serial :func:`infer_property_constraints` /
    :func:`infer_datatypes` / :func:`compute_cardinalities` sequence
    byte for byte without a store, then clears the consumed stats.
    Returns False -- leaving the schema untouched -- when any type lacks
    stats (sequential shards, columns mode, a journal written with
    post-processing off) or when the config demands the global sampling
    mode; the caller then falls back to the store-backed passes.
    """
    config = config or PGHiveConfig()
    if config.infer_datatypes_by_sampling:
        return False
    types = list(_all_types(schema))
    if any(t.stats is None for t in types):
        return False
    infer_property_constraints(schema)
    for type_record in types:
        stats = type_record.stats
        if stats is None:  # unreachable; narrows the type for mypy
            return False
        for key, spec in type_record.properties.items():
            partial = stats.properties.get(key)
            if partial is None or partial.observations == 0:
                continue
            spec.datatype = partial.datatype
            if config.infer_value_profiles:
                spec.profile = partial.to_profile()
    for edge_type in schema.edge_types.values():
        stats = edge_type.stats
        if stats is None:  # unreachable; narrows the type for mypy
            return False
        max_out = max(stats.out_degrees.values(), default=0)
        max_in = max(stats.in_degrees.values(), default=0)
        edge_type.max_out = max(edge_type.max_out, max_out)
        edge_type.max_in = max(edge_type.max_in, max_in)
        edge_type.cardinality = Cardinality.from_degrees(
            edge_type.max_out, edge_type.max_in
        )
    clear_partial_stats(schema)
    return True


def clear_partial_stats(schema: SchemaGraph) -> None:
    """Drop any attached partial stats (finished schemas carry none)."""
    for type_record in _all_types(schema):
        type_record.stats = None


def schema_stats_to_dict(schema: SchemaGraph) -> dict[str, Any]:
    """Per-type stats of a shard schema as a JSON-serializable dict."""
    return {
        "node_types": {
            name: node_type.stats.to_dict()
            for name, node_type in sorted(schema.node_types.items())
            if node_type.stats is not None
        },
        "edge_types": {
            name: edge_type.stats.to_dict()
            for name, edge_type in sorted(schema.edge_types.items())
            if edge_type.stats is not None
        },
    }


def schema_stats_from_dict(
    schema: SchemaGraph, record: dict[str, Any] | None
) -> None:
    """Re-attach journaled stats onto a reloaded shard schema in place."""
    if not record:
        return
    for name, stats in record.get("node_types", {}).items():
        node_type = schema.node_types.get(name)
        if node_type is not None:
            node_type.stats = TypeStats.from_dict(stats)
    for name, stats in record.get("edge_types", {}).items():
        edge_type = schema.edge_types.get(name)
        if edge_type is not None:
            edge_type.stats = TypeStats.from_dict(stats)
