"""Configuration for the PG-HIVE pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.embeddings.word2vec import Word2VecConfig


class LSHMethod(enum.Enum):
    """Which LSH family drives the clustering (section 4.2)."""

    ELSH = "elsh"
    MINHASH = "minhash"


@dataclass
class PGHiveConfig:
    """All knobs of the PG-HIVE pipeline.

    Attributes:
        method: ELSH (p-stable projections over the hybrid vectors) or
            MinHash (Jaccard over label+property feature sets).
        word2vec: Label embedding hyperparameters (dimension ``d`` etc.).
        label_weight: Scale applied to the (unit-normalized) label
            embedding block of the hybrid vector so the semantic part stays
            comparable to the binary property block under heavy noise.
        jaccard_threshold: Theta of Algorithm 2 (default 0.9 as in the
            paper; lowering it raises recall but mixes types).
        endpoint_jaccard_threshold: Minimum Jaccard similarity between
            endpoint label sets for two same-label edge clusters to merge
            into one edge type (Definition 3.3 keeps the endpoint pair as
            part of the type).
        bucket_length: Manual ELSH bucket length ``b``; ``None`` (default)
            enables the adaptive strategy of section 4.2.
        num_tables: Manual number of hash tables ``T``; ``None`` adapts.
        alpha: Manual label-diversity factor; ``None`` adapts from L.
        adaptive_sample_size: Minimum sample used to estimate the distance
            scale mu (the paper uses max(1 % of the graph, 10k); scaled
            datasets use a smaller floor).
        adaptive_sample_fraction: Fraction of the graph sampled for mu.
        minhash_rows_per_band: Band width for MinHash banding.
        post_processing: Run constraint/datatype/cardinality inference.
        memoize_patterns: Incremental fast path in the spirit of DiscoPG's
            memorization: elements whose labels match an existing type and
            whose structure adds nothing new are absorbed directly,
            skipping vectorization and clustering.  Output-equivalent on
            such elements; off by default.
        infer_value_profiles: Additionally profile value domains
            (enumerations, numeric/temporal ranges -- the paper's "future
            work" refinement of section 4.4).
        exact_cardinality_bounds: Additionally compute exact lower-bound
            cardinalities via endpoint participation analysis (also left
            as future work in section 4.4).
        infer_datatypes_by_sampling: Use the sampled datatype mode.
        datatype_sample_fraction / datatype_sample_minimum: Its parameters
            (paper: 10 % of the properties, at least 1000).
        kernels: ``"vectorized"`` (default) runs the hot path through the
            batch-level numpy kernels (distinct-pattern compaction, CSR
            MinHash, vectorized banding and refinement, embedder reuse);
            ``"reference"`` runs the element-at-a-time reference loops the
            kernels are tested against.  Both produce byte-identical
            schemas for a fixed seed; the reference path is the
            measurement baseline of ``benchmarks/bench_hotpath.py``.
        jobs: Worker processes for incremental discovery.  ``1`` (default)
            keeps the fully sequential engine (byte-identical to previous
            releases); ``N > 1`` runs batch schemas in a process pool and
            combines them through the order-independent merge tree of
            :mod:`repro.core.parallel`.  The final schema does not depend
            on the worker count or on worker completion order.
        parallel_chunk: How many shards each pool task processes:
            ``"auto"`` balances tasks across workers, or a positive
            integer literal (e.g. ``"2"``).  Pure scheduling knob -- the
            result is identical for every chunking.
        shard_timeout: Wall-clock seconds a parallel pool task may run
            before the driver declares it hung, kills the pool workers
            and requeues the lost shards.  ``None`` (default) disables
            the watchdog.
        shard_retries: How many times a failing shard is retried in the
            pool before the driver runs it in-process as a last resort.
            Because shard discovery is pure, a retried or re-executed
            shard merges to the identical schema (Lemmas 1-2).
        shard_retry_backoff: Base seconds slept before requeueing a
            failed shard; the wait grows linearly with the attempt
            number.  Scheduling-only -- never affects the schema.
        shard_transport: How parallel shard payloads and results cross
            the process-pool boundary.  ``"shm"`` (default) writes
            column/index arrays and pickled shard results into named
            POSIX shared-memory segments so workers *attach* instead of
            unpickling -- only names and offsets travel through the
            pipe; ``"memmap"`` does the same with files under a scratch
            directory (beneath ``checkpoint_dir`` when set, else the
            system temp dir); ``"pickle"`` keeps the original
            everything-through-the-pipe behavior.  ``"shm"``
            automatically degrades to ``"memmap"`` on hosts without
            working shared memory.  Transport never affects the
            discovered schema (``tests/test_parallel.py`` proves all
            three byte-identical).
        shard_memory_limit_mb: Optional worker RSS budget in MiB.  When
            set, workers check their resident set between pipeline
            stages and raise before the kernel OOM killer fires; the
            failure surfaces as a structured
            ``ShardFailure(kind="memory")`` and flows through the
            ordinary retry / in-process-fallback machinery.  ``None``
            (default) disables the guard.
        strict_recovery: When True, a shard that still fails after pool
            retries *and* the in-process fallback raises
            :class:`~repro.core.parallel.ShardRecoveryError` instead of
            degrading the run to the surviving shards.
        faults: Fault-injection plan string
            (see :mod:`repro.core.faults`), e.g. ``"shard:2:kill"``.
            ``None`` falls back to the ``PGHIVE_FAULTS`` environment
            variable; empty disables injection.  Test/CI facility.
        checkpoint_dir: Directory for incremental-run checkpoints.  When
            set, the sequential engine journals the running schema plus a
            batch-index manifest (atomic write-and-rename) after every
            ``checkpoint_every`` batches, and
            ``discover_incremental(..., resume=True)`` continues a killed
            run from the last checkpoint to the identical final schema.
            With ``jobs > 1`` the parallel driver instead journals each
            completed shard under ``checkpoint_dir/shards/`` (one atomic
            JSON document per shard) and ``resume=True`` reloads the
            completed shards and recomputes only the missing ones --
            shard discovery is pure, so the resumed schema is identical.
        checkpoint_every: Checkpoint cadence in batches (default 1).
        store: Which graph storage backend discovery reads from.
            ``"memory"`` (default) keeps every node and edge as Python
            objects in a :class:`~repro.graph.store.GraphStore`;
            ``"disk"`` ingests into append-only memory-mapped slab
            files and discovers through a
            :class:`~repro.graph.diskstore.DiskGraphStore`, keeping the
            driver's resident set at O(slab headers + merged schema)
            while workers map the slabs read-only.  The discovered
            schema is byte-identical between backends for every mode.
        store_dir: Slab directory for the disk backend.  ``None``
            (default) uses an ephemeral temp directory that is removed
            when the run finishes; pass a path to keep the slabs for
            later resume/re-discovery.  Ignored by the memory backend.
        slab_bytes: Commit granularity of slab ingest in bytes (default
            4 MiB, minimum 4 KiB): the ingest sink flushes and commits
            a durable manifest whenever this much property-heap data is
            buffered.  Smaller values bound ingest memory tighter and
            checkpoint more often; the stored bytes are identical
            regardless.  Ignored by the memory backend.
        corrupt_slab_policy: What discovery does when the disk backend
            detects slab corruption (a checksum/truncation failure
            raised as :class:`~repro.graph.slab.SlabCorruptionError`).
            ``"raise"`` (default) fails the run immediately -- corrupt
            storage is never silently read.  ``"skip"`` quarantines the
            affected shards instead: they are recorded as
            ``ShardFailure(kind="corruption")`` in
            ``DiscoveryResult.shard_failures`` (no retries, no in-process
            fallback -- corruption is deterministic) and discovery
            completes on the surviving shards.  ``strict_recovery=True``
            still turns any quarantined shard into a hard
            ``ShardRecoveryError`` at the end.  Ignored by the memory
            backend.
        server_host: Bind address of the discovery daemon
            (``pghive serve``).  Default ``127.0.0.1`` -- loopback only;
            the daemon has no authentication layer.
        server_port: TCP port of the discovery daemon (default 8850).
            ``0`` binds an ephemeral port (useful for tests; the chosen
            port is printed on startup).
        server_workers: Background ingestion threads shared by every
            discovery session of the daemon (default 2).  Batches of one
            session are always processed in POST order regardless of the
            worker count.
        server_queue_depth: Maximum queued-or-running batches per session
            (default 8).  Posting beyond the limit returns HTTP 503 --
            the daemon sheds load instead of buffering unboundedly.
        seed: Master RNG seed; every random component derives from it.
    """

    method: LSHMethod = LSHMethod.ELSH
    word2vec: Word2VecConfig = field(default_factory=Word2VecConfig)
    label_weight: float = 3.0
    jaccard_threshold: float = 0.9
    endpoint_jaccard_threshold: float = 0.5
    bucket_length: float | None = None
    num_tables: int | None = None
    alpha: float | None = None
    adaptive_sample_size: int = 500
    adaptive_sample_fraction: float = 0.01
    minhash_rows_per_band: int = 6
    post_processing: bool = True
    memoize_patterns: bool = False
    infer_value_profiles: bool = False
    exact_cardinality_bounds: bool = False
    infer_datatypes_by_sampling: bool = False
    datatype_sample_fraction: float = 0.1
    datatype_sample_minimum: int = 1000
    kernels: str = "vectorized"
    jobs: int = 1
    parallel_chunk: str = "auto"
    shard_timeout: float | None = None
    shard_retries: int = 2
    shard_retry_backoff: float = 0.05
    shard_transport: str = "shm"
    shard_memory_limit_mb: float | None = None
    strict_recovery: bool = False
    faults: str | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    store: str = "memory"
    store_dir: str | None = None
    slab_bytes: int = 4 << 20
    corrupt_slab_policy: str = "raise"
    server_host: str = "127.0.0.1"
    server_port: int = 8850
    server_workers: int = 2
    server_queue_depth: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if isinstance(self.method, str):
            self.method = LSHMethod(self.method.lower())
        if not 0.0 <= self.jaccard_threshold <= 1.0:
            raise ValueError("jaccard_threshold must be in [0, 1]")
        if not 0.0 <= self.endpoint_jaccard_threshold <= 1.0:
            raise ValueError("endpoint_jaccard_threshold must be in [0, 1]")
        if self.bucket_length is not None and self.bucket_length <= 0:
            raise ValueError("bucket_length must be positive when given")
        if self.num_tables is not None and self.num_tables < 1:
            raise ValueError("num_tables must be >= 1 when given")
        if self.label_weight < 0:
            raise ValueError("label_weight must be non-negative")
        if self.minhash_rows_per_band < 1:
            raise ValueError("minhash_rows_per_band must be >= 1")
        if self.kernels not in ("vectorized", "reference"):
            raise ValueError("kernels must be 'vectorized' or 'reference'")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.parallel_chunk != "auto":
            try:
                chunk = int(self.parallel_chunk)
            except (TypeError, ValueError):
                raise ValueError(
                    "parallel_chunk must be 'auto' or a positive integer "
                    f"literal, got {self.parallel_chunk!r}"
                ) from None
            if chunk < 1:
                raise ValueError("parallel_chunk must be >= 1 when numeric")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive when given")
        if self.shard_retries < 0:
            raise ValueError("shard_retries must be >= 0")
        if self.shard_retry_backoff < 0:
            raise ValueError("shard_retry_backoff must be >= 0")
        if self.shard_transport not in ("pickle", "shm", "memmap"):
            raise ValueError(
                "shard_transport must be 'pickle', 'shm' or 'memmap', "
                f"got {self.shard_transport!r}"
            )
        if (
            self.shard_memory_limit_mb is not None
            and self.shard_memory_limit_mb <= 0
        ):
            raise ValueError(
                "shard_memory_limit_mb must be positive when given"
            )
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.store not in ("memory", "disk"):
            raise ValueError(
                f"store must be 'memory' or 'disk', got {self.store!r}"
            )
        if self.slab_bytes < 4096:
            raise ValueError("slab_bytes must be >= 4096")
        if self.corrupt_slab_policy not in ("raise", "skip"):
            raise ValueError(
                f"corrupt_slab_policy must be 'raise' or 'skip', "
                f"got {self.corrupt_slab_policy!r}"
            )
        if not self.server_host:
            raise ValueError("server_host must be non-empty")
        if not 0 <= self.server_port <= 65535:
            raise ValueError("server_port must be in [0, 65535]")
        if self.server_workers < 1:
            raise ValueError("server_workers must be >= 1")
        if self.server_queue_depth < 1:
            raise ValueError("server_queue_depth must be >= 1")
        if self.faults:
            from repro.core.faults import FaultPlan

            FaultPlan.parse(self.faults)  # validate eagerly

    def chunk_size(self, num_shards: int) -> int:
        """Resolve ``parallel_chunk`` to shards per pool task.

        ``"auto"`` splits the shards into about two tasks per worker so a
        slow shard cannot strand the pool, while keeping per-task payload
        overhead amortized.  Never affects the discovered schema.
        """
        if self.parallel_chunk != "auto":
            return min(int(self.parallel_chunk), max(num_shards, 1))
        tasks = max(self.jobs * 2, 1)
        return max(1, -(-num_shards // tasks))
