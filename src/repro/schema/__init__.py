"""Property graph schema model and tooling.

Implements the PG-Schema-style target model of the paper (Definitions
3.2-3.4): node types, edge types with endpoint pairs and cardinalities,
property specifications with datatypes and MANDATORY/OPTIONAL constraints,
and the schema graph that assembles them.  Also provides the monotone merge
rules of section 4.6, PG-Schema and XSD serializers, a conformance validator
(STRICT and LOOSE modes), and a structural schema diff.
"""

from repro.schema.model import (
    Cardinality,
    DataType,
    EdgeType,
    NodeType,
    PropertySpec,
    PropertyStatus,
    SchemaGraph,
)
from repro.schema.merge import merge_edge_types, merge_node_types, merge_schemas
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.schema.serialize_xsd import serialize_xsd
from repro.schema.serialize_cypher import serialize_cypher
from repro.schema.serialize_graphql import serialize_graphql
from repro.schema.validate import (
    ValidationMode,
    ValidationReport,
    Violation,
    validate_batch,
    validate_columns,
    validate_elements,
    validate_graph,
)
from repro.schema.diff import SchemaDiff, diff_schemas
from repro.schema.align import (
    AliasCandidate,
    apply_alignment,
    propose_alignments,
)
from repro.schema.hierarchy import (
    SubtypeRelation,
    infer_hierarchy,
    render_hierarchy,
)
from repro.schema.persist import load_schema, save_schema
from repro.schema.evolution import (
    SchemaEvolutionTracker,
    refresh_schema,
)
from repro.schema.report import render_schema_report, summarize_schema
from repro.schema.patterns_report import (
    pattern_breakdown,
    render_pattern_breakdown,
)

__all__ = [
    "AliasCandidate",
    "Cardinality",
    "DataType",
    "EdgeType",
    "NodeType",
    "PropertySpec",
    "PropertyStatus",
    "SchemaDiff",
    "SchemaEvolutionTracker",
    "SchemaGraph",
    "SubtypeRelation",
    "ValidationMode",
    "ValidationReport",
    "Violation",
    "apply_alignment",
    "diff_schemas",
    "merge_edge_types",
    "merge_node_types",
    "merge_schemas",
    "infer_hierarchy",
    "load_schema",
    "propose_alignments",
    "refresh_schema",
    "render_hierarchy",
    "pattern_breakdown",
    "render_pattern_breakdown",
    "render_schema_report",
    "save_schema",
    "serialize_cypher",
    "serialize_graphql",
    "serialize_pg_schema",
    "serialize_xsd",
    "summarize_schema",
    "validate_batch",
    "validate_columns",
    "validate_elements",
    "validate_graph",
]
