"""Semantic label alignment across integrated schemas (paper future work).

The paper's conclusion lists "support integration scenarios when label
semantics are not consistent (e.g., labels in different languages)" as
future work, proposing LLM-based alignment.  This module implements a
self-contained variant on the same signal PG-HIVE already has: two labels
denote the same concept when their *types* look alike from inside the
graph --

* **structural similarity**: Jaccard of the types' property key sets
  (an ``Organization`` and a ``Company`` carry the same keys);
* **contextual similarity**: cosine similarity of the labels' Word2Vec
  embeddings, which encode how the labels co-occur with edge labels and
  neighbour types (an Organization and a Company are both the target of
  WORKS_AT edges from Person);
* **lexical similarity**: normalized edit-distance similarity of the
  label strings themselves (catches ``Organisation``/``Organization``).

Pairs of node types scoring above a combined threshold are proposed as
*alias groups*; :func:`apply_alignment` merges each group into one type
(monotone union merging, so no information is lost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.embeddings.embedder import LabelEmbedder
from repro.lsh.unionfind import UnionFind
from repro.schema.merge import merge_node_types
from repro.schema.model import NodeType, SchemaGraph
from repro.util.similarity import jaccard


@dataclass(frozen=True, slots=True)
class AliasCandidate:
    """A proposed label/type alias pair with its evidence scores."""

    first: str
    second: str
    structural: float
    contextual: float
    lexical: float

    @property
    def combined(self) -> float:
        """Weighted evidence: structure dominates, context and lexical
        similarity act as tie-breakers."""
        return (
            0.5 * self.structural
            + 0.3 * self.contextual
            + 0.2 * self.lexical
        )


def propose_alignments(
    schema: SchemaGraph,
    embedder: LabelEmbedder | None = None,
    threshold: float = 0.75,
    structural_floor: float = 0.5,
) -> list[AliasCandidate]:
    """Score all labeled node-type pairs and return likely aliases.

    Args:
        schema: The (possibly merged multi-source) schema to inspect.
        embedder: A label embedder fitted on the combined data; omitted,
            contextual similarity is treated as neutral (0.5).
        threshold: Minimum combined score for a pair to be proposed.
        structural_floor: Pairs below this structural similarity are never
            proposed, whatever the other signals say -- merging types with
            different shapes would violate the user's data expectations.
    """
    labeled = [
        node_type
        for node_type in schema.node_types.values()
        if node_type.labels
    ]
    candidates: list[AliasCandidate] = []
    for index, first in enumerate(labeled):
        for second in labeled[index + 1:]:
            if first.labels & second.labels:
                continue  # sharing a label already; not an alias question
            structural = jaccard(first.property_keys, second.property_keys)
            if structural < structural_floor:
                continue
            contextual = _context_similarity(first, second, embedder)
            lexical = _lexical_similarity(first.labels, second.labels)
            candidate = AliasCandidate(
                first=first.name,
                second=second.name,
                structural=structural,
                contextual=contextual,
                lexical=lexical,
            )
            if candidate.combined >= threshold:
                candidates.append(candidate)
    candidates.sort(key=lambda c: c.combined, reverse=True)
    return candidates


def apply_alignment(
    schema: SchemaGraph, candidates: Sequence[AliasCandidate]
) -> dict[str, str]:
    """Merge each alias group into one node type (mutates the schema).

    Groups are the connected components over the accepted pairs.  Within a
    group, the type with the most instances hosts the merge (its name
    survives).

    Returns:
        Mapping of absorbed type name -> surviving type name.
    """
    names = sorted(schema.node_types)
    index = {name: i for i, name in enumerate(names)}
    uf = UnionFind(len(names))
    for candidate in candidates:
        if candidate.first in index and candidate.second in index:
            uf.union(index[candidate.first], index[candidate.second])
    renames: dict[str, str] = {}
    for component in uf.components().values():
        if len(component) < 2:
            continue
        members = [schema.node_types[names[i]] for i in component]
        host = max(members, key=lambda t: t.instance_count)
        for member in members:
            if member is host:
                continue
            merge_node_types(host, member)
            schema.remove_node_type(member.name)
            renames[member.name] = host.name
    return renames


def _context_similarity(
    first: NodeType, second: NodeType, embedder: LabelEmbedder | None
) -> float:
    """Cosine similarity of the types' label embeddings, mapped to [0,1]."""
    if embedder is None:
        return 0.5
    a = embedder.embed(first.labels)
    b = embedder.embed(second.labels)
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        return 0.5
    cosine = float(a @ b / denom)
    return (cosine + 1.0) / 2.0


def _lexical_similarity(
    first: frozenset[str], second: frozenset[str]
) -> float:
    """Best normalized edit similarity over the label-pair cross product."""
    best = 0.0
    for a in first:
        for b in second:
            best = max(best, _edit_similarity(a.lower(), b.lower()))
    return best


def _edit_similarity(a: str, b: str) -> float:
    """1 - normalized Levenshtein distance."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost  # substitution
            ))
        previous = current
    distance = previous[-1]
    return 1.0 - distance / max(len(a), len(b))
