"""Per-type pattern breakdown: how a type's instances vary structurally.

Table 2 of the paper counts patterns (Defs 3.5/3.6) separately from types
because one type typically covers many patterns -- optional properties and
label variants multiply them.  This module recovers that view from a
discovered schema: for every type, the distinct (label set, property key
set) patterns among its member instances with their frequencies, plus a
*coverage* number (how many instances exhibit the type's full property
set).  It is the operator's tool for judging whether a noisy type is one
coherent concept or an accidental merge.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.store import BaseGraphStore
from repro.schema.model import NodeType, SchemaGraph
from repro.util.tables import render_table


@dataclass(frozen=True, slots=True)
class TypePatternBreakdown:
    """Structural variation within one discovered type."""

    type_name: str
    num_patterns: int
    # (labels, property keys) -> instance count, most frequent first.
    patterns: tuple[tuple[tuple[frozenset, frozenset], int], ...]
    full_coverage: float  # fraction of instances carrying every type key

    @property
    def dominant_share(self) -> float:
        """Fraction of instances in the most frequent pattern."""
        total = sum(count for _, count in self.patterns)
        if total == 0:
            return 1.0
        return self.patterns[0][1] / total


def pattern_breakdown(
    schema: SchemaGraph, store: BaseGraphStore
) -> dict[str, TypePatternBreakdown]:
    """Breakdowns for every node type (requires member ids)."""
    breakdowns: dict[str, TypePatternBreakdown] = {}
    for node_type in schema.node_types.values():
        breakdowns[node_type.name] = _breakdown_for(node_type, store)
    return breakdowns


def _breakdown_for(
    node_type: NodeType, store: BaseGraphStore
) -> TypePatternBreakdown:
    counts: Counter[frozenset[str]] = Counter()
    full = 0
    type_keys = node_type.property_keys
    for member in node_type.members:
        node = store.node(member)
        keys = node.property_keys
        counts[(node.labels, keys)] += 1
        if keys == type_keys:
            full += 1
    total = max(1, len(node_type.members))
    ordered = tuple(sorted(
        counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))
    ))
    return TypePatternBreakdown(
        type_name=node_type.name,
        num_patterns=len(counts),
        patterns=ordered,
        full_coverage=full / total,
    )


def render_pattern_breakdown(
    breakdowns: dict[str, TypePatternBreakdown],
    max_patterns: int = 3,
) -> str:
    """Text table: one row per type, dominant patterns inline."""
    rows = []
    for name in sorted(breakdowns):
        breakdown = breakdowns[name]
        examples = []
        for (labels, keys), count in breakdown.patterns[:max_patterns]:
            label_text = "&".join(sorted(labels)) or "(unlabeled)"
            key_text = ",".join(sorted(keys)) or "(no properties)"
            examples.append(f"{label_text}{{{key_text}}} x{count}")
        rows.append([
            name,
            str(breakdown.num_patterns),
            f"{breakdown.dominant_share:.0%}",
            f"{breakdown.full_coverage:.0%}",
            " | ".join(examples),
        ])
    return render_table(
        ["type", "#patterns", "dominant", "full keys", "top patterns"],
        rows,
        "Per-type pattern breakdown",
    )
