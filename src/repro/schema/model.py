"""Schema graph model (paper Definitions 3.2-3.4).

A :class:`SchemaGraph` holds :class:`NodeType` and :class:`EdgeType`
records.  Types additionally carry the bookkeeping that post-processing and
incremental merging need: instance membership, per-property occurrence
counts (so MANDATORY/OPTIONAL stays exact across batch merges), and for edge
types the observed endpoint label sets and degree extremes.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    # These modules import this one; under ``from __future__ import
    # annotations`` the names below stay lazy strings at runtime, so the
    # cycle never materializes.
    from repro.core.cardinality_bounds import CardinalityBounds
    from repro.core.postprocess import TypeStats
    from repro.core.value_profiles import ValueProfile


class DataType(enum.Enum):
    """GQL-style property data types (section 3, extended set)."""

    INTEGER = "INT"
    FLOAT = "DOUBLE"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIMESTAMP = "TIMESTAMP"
    STRING = "STRING"
    LIST = "LIST"
    UNKNOWN = "UNKNOWN"


class PropertyStatus(enum.Enum):
    """Completeness constraint on a property (section 4.4)."""

    MANDATORY = "MANDATORY"
    OPTIONAL = "OPTIONAL"


class Cardinality(enum.Enum):
    """Edge-type cardinality classes inferred from degree extremes.

    The paper maps (max_out, max_in) as: (1,1) -> 1:1, (>1,1) -> N:1,
    (1,>1) -> 1:N, (>1,>1) -> M:N.  (Lower bounds are not determined; see
    section 4.4.)
    """

    ONE_TO_ONE = "1:1"
    N_TO_ONE = "N:1"
    ONE_TO_N = "1:N"
    M_TO_N = "M:N"
    UNKNOWN = "?"

    @staticmethod
    def from_degrees(max_out: int, max_in: int) -> "Cardinality":
        """Classify a (max out-degree, max in-degree) pair."""
        if max_out <= 0 or max_in <= 0:
            return Cardinality.UNKNOWN
        if max_out == 1 and max_in == 1:
            return Cardinality.ONE_TO_ONE
        if max_out > 1 and max_in == 1:
            # A single source reaches many targets and every target has one
            # incoming edge: each *target* maps to one source, sources fan
            # out -- the paper writes this pair as N:1 seen from the target.
            return Cardinality.ONE_TO_N
        if max_out == 1 and max_in > 1:
            return Cardinality.N_TO_ONE
        return Cardinality.M_TO_N


@dataclass
class PropertySpec:
    """One property of a type: key, datatype, completeness constraint.

    ``profile`` optionally carries a refined value-domain description
    (enumeration members, numeric/temporal range bounds) produced by
    :mod:`repro.core.value_profiles`.
    """

    key: str
    datatype: DataType = DataType.UNKNOWN
    status: PropertyStatus = PropertyStatus.OPTIONAL
    profile: ValueProfile | None = None

    def render(self) -> str:
        """PG-Schema-style rendering, e.g. ``OPTIONAL age INT``."""
        prefix = "OPTIONAL " if self.status is PropertyStatus.OPTIONAL else ""
        text = f"{prefix}{self.key} {self.datatype.value}"
        if self.profile is not None:
            annotation = self.profile.render()
            if annotation:
                text += f" /* {annotation} */"
        return text


@dataclass
class NodeType:
    """A node type (Definition 3.2) plus discovery bookkeeping.

    Attributes:
        name: Unique type name within its schema ('&'-joined sorted labels,
            or ``ABSTRACT_n`` for unlabeled types).
        labels: Union of label sets observed in the type's instances.
        abstract: True when no instance carried a label (PG-Schema ABSTRACT).
        properties: Property key -> :class:`PropertySpec`.
        instance_count: Number of instances merged into this type.
        property_counts: Property key -> number of instances carrying it.
        members: Graph element ids assigned to this type (may be cleared by
            ``SchemaGraph.detach_members`` to save memory).
        cluster_tokens: Internal pseudo-labels identifying the LSH node
            clusters this type came from.  Used to resolve edge endpoints
            when real labels are missing; never serialized.
        stats: Mergeable partial post-processing statistics attached by
            parallel shard workers (:class:`~repro.core.postprocess.TypeStats`);
            folded through the schema merge tree and consumed -- then
            cleared -- by :func:`~repro.core.postprocess.apply_partial_stats`.
            ``None`` on the sequential path and in finished schemas.
    """

    name: str
    labels: frozenset[str] = frozenset()
    abstract: bool = False
    properties: dict[str, PropertySpec] = field(default_factory=dict)
    instance_count: int = 0
    property_counts: Counter[str] = field(default_factory=Counter)
    members: list[int] = field(default_factory=list)
    cluster_tokens: set[str] = field(default_factory=set)
    stats: TypeStats | None = None

    @property
    def property_keys(self) -> frozenset[str]:
        """The set of property keys known for this type."""
        return frozenset(self.properties)

    def ensure_property(self, key: str) -> PropertySpec:
        """Get-or-create the spec for a property key."""
        spec = self.properties.get(key)
        if spec is None:
            spec = PropertySpec(key)
            self.properties[key] = spec
        return spec

    def property_frequency(self, key: str) -> float:
        """f_T(p): fraction of instances carrying property ``key``."""
        if self.instance_count == 0:
            return 0.0
        return self.property_counts.get(key, 0) / self.instance_count


@dataclass
class EdgeType:
    """An edge type (Definition 3.3) plus discovery bookkeeping.

    Attributes:
        name: Unique type name within its schema.
        labels: Union of label sets observed on the edges.
        abstract: True when no instance carried a label.
        properties: Property key -> :class:`PropertySpec`.
        source_labels / target_labels: Unions of endpoint label sets
            (the R component of edge patterns).
        source_types / target_types: Names of the node types this edge type
            connects (the rho_s function), filled by type extraction.
        cardinality: Inferred cardinality class.
        max_out / max_in: Observed degree extremes backing the cardinality.
        instance_count, property_counts, members: As for node types.
        source_tokens / target_tokens: Internal pseudo-labels of the node
            clusters seen at the endpoints when real labels were missing.
            Used for endpoint-compatibility checks; never serialized.
        stats: Mergeable partial post-processing statistics (property
            partials plus per-node degree count maps) attached by parallel
            shard workers; see :attr:`NodeType.stats`.
    """

    name: str
    labels: frozenset[str] = frozenset()
    abstract: bool = False
    properties: dict[str, PropertySpec] = field(default_factory=dict)
    source_labels: frozenset[str] = frozenset()
    target_labels: frozenset[str] = frozenset()
    source_types: set[str] = field(default_factory=set)
    target_types: set[str] = field(default_factory=set)
    cardinality: Cardinality = Cardinality.UNKNOWN
    bounds: CardinalityBounds | None = None
    max_out: int = 0
    max_in: int = 0
    instance_count: int = 0
    property_counts: Counter[str] = field(default_factory=Counter)
    members: list[int] = field(default_factory=list)
    source_tokens: set[str] = field(default_factory=set)
    target_tokens: set[str] = field(default_factory=set)
    stats: TypeStats | None = None

    @property
    def property_keys(self) -> frozenset[str]:
        """The set of property keys known for this type."""
        return frozenset(self.properties)

    def ensure_property(self, key: str) -> PropertySpec:
        """Get-or-create the spec for a property key."""
        spec = self.properties.get(key)
        if spec is None:
            spec = PropertySpec(key)
            self.properties[key] = spec
        return spec

    def property_frequency(self, key: str) -> float:
        """f_T(p): fraction of instances carrying property ``key``."""
        if self.instance_count == 0:
            return 0.0
        return self.property_counts.get(key, 0) / self.instance_count


class SchemaGraph:
    """The inferred schema: node types, edge types, and their connectivity.

    Type names are unique keys.  ``rho_s`` is represented by each edge
    type's ``source_types``/``target_types`` sets (an edge type may connect
    several node types after merging, which the serializers expand).
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._node_types: dict[str, NodeType] = {}
        self._edge_types: dict[str, EdgeType] = {}
        self._abstract_counter = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node_type(self, node_type: NodeType) -> None:
        """Insert a node type; raises on duplicate names."""
        if node_type.name in self._node_types:
            raise ValueError(f"duplicate node type {node_type.name!r}")
        self._node_types[node_type.name] = node_type

    def add_edge_type(self, edge_type: EdgeType) -> None:
        """Insert an edge type; raises on duplicate names."""
        if edge_type.name in self._edge_types:
            raise ValueError(f"duplicate edge type {edge_type.name!r}")
        self._edge_types[edge_type.name] = edge_type

    def remove_node_type(self, name: str) -> NodeType:
        """Remove and return a node type."""
        return self._node_types.pop(name)

    def remove_edge_type(self, name: str) -> EdgeType:
        """Remove and return an edge type."""
        return self._edge_types.pop(name)

    def next_abstract_name(self, kind: str = "NODE") -> str:
        """Fresh name for an ABSTRACT (unlabeled) type."""
        self._abstract_counter += 1
        return f"ABSTRACT_{kind}_{self._abstract_counter}"

    def detach_members(self) -> None:
        """Drop instance membership lists (frees memory after evaluation)."""
        for node_type in self._node_types.values():
            node_type.members = []
        for edge_type in self._edge_types.values():
            edge_type.members = []

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def node_types(self) -> dict[str, NodeType]:
        """Name -> node type mapping (live view)."""
        return self._node_types

    @property
    def edge_types(self) -> dict[str, EdgeType]:
        """Name -> edge type mapping (live view)."""
        return self._edge_types

    def node_type_for_labels(self, labels: Iterable[str]) -> NodeType | None:
        """Find the node type whose label set equals the given labels."""
        target = frozenset(labels)
        for node_type in self._node_types.values():
            if node_type.labels == target:
                return node_type
        return None

    def edge_type_for_labels(self, labels: Iterable[str]) -> EdgeType | None:
        """Find one edge type whose label set equals the given labels."""
        target = frozenset(labels)
        for edge_type in self._edge_types.values():
            if edge_type.labels == target:
                return edge_type
        return None

    def edge_types_for_labels(self, labels: Iterable[str]) -> list[EdgeType]:
        """All edge types whose label set equals the given labels.

        Several edge types may share a label set when they connect different
        endpoint types (e.g. LDBC's LIKES over posts and comments).
        """
        target = frozenset(labels)
        return [
            edge_type
            for edge_type in self._edge_types.values()
            if edge_type.labels == target
        ]

    @property
    def num_types(self) -> int:
        """Total number of node plus edge types."""
        return len(self._node_types) + len(self._edge_types)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SchemaGraph(name={self.name!r}, "
            f"node_types={len(self._node_types)}, "
            f"edge_types={len(self._edge_types)})"
        )
