"""XSD serialization of a discovered schema (paper section 4.5).

Each node and edge type becomes an ``xs:complexType``; properties map to
``xs:element`` children with XSD primitive types and ``minOccurs`` encoding
the MANDATORY/OPTIONAL constraint.  Edge types carry ``source``/``target``
attributes referencing their endpoint types.  The output is a complete,
well-formed XML Schema document built with :mod:`xml.etree.ElementTree`.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from repro.schema.model import (
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)

_XS = "http://www.w3.org/2001/XMLSchema"

_XSD_TYPES = {
    DataType.INTEGER: "xs:integer",
    DataType.FLOAT: "xs:double",
    DataType.BOOLEAN: "xs:boolean",
    DataType.DATE: "xs:date",
    DataType.TIMESTAMP: "xs:dateTime",
    DataType.STRING: "xs:string",
    DataType.LIST: "xs:anyType",
    DataType.UNKNOWN: "xs:anyType",
}


def serialize_xsd(schema: SchemaGraph) -> str:
    """Render a schema graph as an XML Schema document string."""
    ET.register_namespace("xs", _XS)
    root = ET.Element(f"{{{_XS}}}schema")
    root.set("targetNamespace", "urn:pghive:schema")
    root.set("elementFormDefault", "qualified")
    for node_type in schema.node_types.values():
        root.append(_complex_type(node_type, kind="node"))
    for edge_type in schema.edge_types.values():
        element = _complex_type(edge_type, kind="edge")
        _append_endpoint_attribute(element, "source", edge_type)
        _append_endpoint_attribute(element, "target", edge_type)
        root.append(element)
    ET.indent(root)
    body = ET.tostring(root, encoding="unicode")
    return '<?xml version="1.0" encoding="UTF-8"?>\n' + body


def _complex_type(type_record: NodeType | EdgeType, kind: str) -> ET.Element:
    """Build the ``xs:complexType`` element for one schema type."""
    complex_type = ET.Element(f"{{{_XS}}}complexType")
    complex_type.set("name", _xml_name(type_record.name))
    annotation = ET.SubElement(complex_type, f"{{{_XS}}}annotation")
    doc = ET.SubElement(annotation, f"{{{_XS}}}documentation")
    labels = ", ".join(sorted(type_record.labels)) or "(abstract)"
    doc.text = (
        f"{kind} type; labels: {labels}; "
        f"instances merged: {type_record.instance_count}"
    )
    if type_record.properties:
        sequence = ET.SubElement(complex_type, f"{{{_XS}}}sequence")
        for key, spec in sorted(type_record.properties.items()):
            element = ET.SubElement(sequence, f"{{{_XS}}}element")
            element.set("name", _xml_name(key))
            element.set("type", _XSD_TYPES[spec.datatype])
            if spec.status is PropertyStatus.OPTIONAL:
                element.set("minOccurs", "0")
    return complex_type


def _append_endpoint_attribute(
    element: ET.Element, which: str, edge_type: EdgeType
) -> None:
    """Add a source/target attribute documenting endpoint types."""
    attr = ET.SubElement(element, f"{{{_XS}}}attribute")
    attr.set("name", which)
    attr.set("type", "xs:string")
    names = (
        edge_type.source_types if which == "source" else edge_type.target_types
    )
    labels = (
        edge_type.source_labels if which == "source" else edge_type.target_labels
    )
    value = sorted(names) or sorted(labels)
    if value:
        attr.set("fixed", "|".join(_xml_name(v) for v in value))


def _xml_name(text: str) -> str:
    """Sanitize arbitrary text into an XML NCName."""
    cleaned = re.sub(r"[^0-9A-Za-z_.-]", "_", text)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "_" + cleaned
    return cleaned
