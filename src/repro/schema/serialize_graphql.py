"""GraphQL SDL export of a discovered schema.

Hartig & Hidders ("Defining schemas for property graphs by using the
GraphQL schema definition language", cited by the paper) show that the
GraphQL SDL is a practical schema language for property graphs.  This
serializer renders each discovered node type as an SDL ``type`` whose
scalar fields are its properties (``!`` for MANDATORY) and whose
relationship fields follow the discovered edge types and cardinalities
(list-valued unless the edge type's out-degree bound is 1).
"""

from __future__ import annotations

import re

from repro.schema.model import (
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)

_GRAPHQL_SCALARS = {
    DataType.INTEGER: "Int",
    DataType.FLOAT: "Float",
    DataType.BOOLEAN: "Boolean",
    DataType.DATE: "Date",
    DataType.TIMESTAMP: "DateTime",
    DataType.STRING: "String",
    DataType.LIST: "[String]",
    DataType.UNKNOWN: "String",
}


def serialize_graphql(schema: SchemaGraph) -> str:
    """Render a schema graph as a GraphQL SDL document."""
    lines: list[str] = [
        f'"""Schema discovered by PG-HIVE for graph {schema.name!r}."""',
        "scalar Date",
        "scalar DateTime",
        "",
    ]
    outgoing = _outgoing_edges(schema)
    for node_type in schema.node_types.values():
        lines.extend(_node_type_sdl(node_type, outgoing))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _outgoing_edges(schema: SchemaGraph) -> dict[str, list[EdgeType]]:
    """Node type name -> edge types leaving it."""
    outgoing: dict[str, list[EdgeType]] = {}
    for edge_type in schema.edge_types.values():
        for source in edge_type.source_types:
            outgoing.setdefault(source, []).append(edge_type)
    return outgoing


def _node_type_sdl(
    node_type: NodeType, outgoing: dict[str, list[EdgeType]]
) -> list[str]:
    """The SDL type block for one node type."""
    name = _type_name(node_type.name)
    header = f"type {name}"
    if node_type.abstract:
        header = f'"""ABSTRACT (unlabeled) type."""\n{header}'
    lines = [header + " {"]
    for key, spec in sorted(node_type.properties.items()):
        scalar = _GRAPHQL_SCALARS[spec.datatype]
        bang = "!" if spec.status is PropertyStatus.MANDATORY else ""
        lines.append(f"  {_field_name(key)}: {scalar}{bang}")
    for edge_type in sorted(
        outgoing.get(node_type.name, []), key=lambda e: e.name
    ):
        lines.extend(_relationship_field(edge_type))
    lines.append("}")
    return lines


def _relationship_field(edge_type: EdgeType) -> list[str]:
    """One relationship field per target type of the edge type."""
    fields = []
    targets = sorted(edge_type.target_types) or ["Node"]
    single_valued = edge_type.max_out == 1
    for target in targets:
        target_name = _type_name(target)
        field = _field_name(edge_type.name.lower())
        if len(targets) > 1:
            field = _field_name(f"{edge_type.name.lower()}_{target.lower()}")
        rendered = target_name if single_valued else f"[{target_name}]"
        fields.append(
            f"  {field}: {rendered} "
            f"# {edge_type.cardinality.value}"
        )
    return fields


def _type_name(text: str) -> str:
    """SDL type identifier."""
    cleaned = re.sub(r"[^0-9A-Za-z_]", "_", text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "T_" + cleaned
    return cleaned


def _field_name(text: str) -> str:
    """SDL field identifier."""
    cleaned = re.sub(r"[^0-9A-Za-z_]", "_", text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "f_" + cleaned
    return cleaned
