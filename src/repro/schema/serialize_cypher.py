"""Neo4j Cypher export of a discovered schema.

Emits the DDL a Neo4j operator would actually run to enforce the
discovered schema on the live database:

* ``CREATE CONSTRAINT ... REQUIRE n.prop IS NOT NULL`` for every MANDATORY
  node/edge property (existence constraints);
* ``CREATE CONSTRAINT ... REQUIRE n.prop IS :: TYPE`` property type
  constraints for properties with a concrete inferred datatype;
* a commented summary block describing each type, its optional properties
  and edge cardinalities (Neo4j has no native cardinality constraint).

The output targets the Neo4j 5 constraint syntax.
"""

from __future__ import annotations

import re

from repro.schema.model import (
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)

_CYPHER_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "FLOAT",
    DataType.BOOLEAN: "BOOLEAN",
    DataType.DATE: "DATE",
    DataType.TIMESTAMP: "ZONED DATETIME",
    DataType.STRING: "STRING",
    DataType.LIST: "LIST<ANY>",
}


def serialize_cypher(schema: SchemaGraph) -> str:
    """Render a schema as Neo4j constraint DDL plus a summary comment."""
    lines: list[str] = [
        f"// Schema discovered by PG-HIVE for graph {schema.name!r}",
        f"// {len(schema.node_types)} node types, "
        f"{len(schema.edge_types)} edge types",
        "",
    ]
    for node_type in schema.node_types.values():
        lines.extend(_node_type_statements(node_type))
    for edge_type in schema.edge_types.values():
        lines.extend(_edge_type_statements(edge_type))
    return "\n".join(lines).rstrip() + "\n"


def _node_type_statements(node_type: NodeType) -> list[str]:
    """Constraint statements for one node type."""
    lines = [f"// node type {node_type.name}"]
    if node_type.abstract:
        lines = [f"// abstract node type {node_type.name} "
                 f"(no label to constrain)"]
        return lines + [""]
    label = _primary_label(node_type)
    for key, spec in sorted(node_type.properties.items()):
        constraint_base = _identifier(f"{node_type.name}_{key}")
        if spec.status is PropertyStatus.MANDATORY:
            lines.append(
                f"CREATE CONSTRAINT {constraint_base}_exists "
                f"IF NOT EXISTS FOR (n:{_escape(label)}) "
                f"REQUIRE n.{_escape(key)} IS NOT NULL;"
            )
        cypher_type = _CYPHER_TYPES.get(spec.datatype)
        if cypher_type is not None:
            lines.append(
                f"CREATE CONSTRAINT {constraint_base}_type "
                f"IF NOT EXISTS FOR (n:{_escape(label)}) "
                f"REQUIRE n.{_escape(key)} IS :: {cypher_type};"
            )
    lines.append("")
    return lines


def _edge_type_statements(edge_type: EdgeType) -> list[str]:
    """Constraint statements for one edge type."""
    endpoints = (
        f"{'|'.join(sorted(edge_type.source_types)) or '?'} -> "
        f"{'|'.join(sorted(edge_type.target_types)) or '?'}"
    )
    lines = [
        f"// edge type {edge_type.name}: {endpoints}, "
        f"cardinality {edge_type.cardinality.value}",
    ]
    if edge_type.abstract:
        return lines + [""]
    label = _primary_label(edge_type)
    for key, spec in sorted(edge_type.properties.items()):
        constraint_base = _identifier(f"{edge_type.name}_{key}")
        if spec.status is PropertyStatus.MANDATORY:
            lines.append(
                f"CREATE CONSTRAINT {constraint_base}_exists "
                f"IF NOT EXISTS FOR ()-[r:{_escape(label)}]-() "
                f"REQUIRE r.{_escape(key)} IS NOT NULL;"
            )
        cypher_type = _CYPHER_TYPES.get(spec.datatype)
        if cypher_type is not None:
            lines.append(
                f"CREATE CONSTRAINT {constraint_base}_type "
                f"IF NOT EXISTS FOR ()-[r:{_escape(label)}]-() "
                f"REQUIRE r.{_escape(key)} IS :: {cypher_type};"
            )
    lines.append("")
    return lines


def _primary_label(type_record: NodeType | EdgeType) -> str:
    """The most specific label to constrain on (alphabetical first)."""
    return sorted(type_record.labels)[0]


def _escape(name: str) -> str:
    """Backtick-quote identifiers that are not plain Cypher names."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        return name
    return "`" + name.replace("`", "``") + "`"


def _identifier(text: str) -> str:
    """Sanitized constraint name."""
    return re.sub(r"[^0-9A-Za-z_]", "_", text).lower()
