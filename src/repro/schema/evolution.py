"""Schema evolution tracking and deletion handling.

Two pieces the paper defers:

* **Evolution tracking** -- the incremental mode produces a monotone chain
  of schemas; :class:`SchemaEvolutionTracker` records the chain, exposes
  the per-step diffs, and detects *stabilization* (no structural change
  for k consecutive batches), the operational signal that the schema has
  converged and post-processing can run.
* **Deletion handling** -- section 4.6: "Handling updates and deletions is
  left for future work."  :func:`refresh_schema` re-grounds a schema
  against the current store after elements were deleted: membership lists
  are filtered to live elements, instance and property counts are
  recomputed exactly, constraints are re-derived, and types whose
  instances all disappeared are dropped (with the removals reported).
  This intentionally breaks monotonicity -- deletions must -- but keeps
  every surviving type's statistics exact.
"""

from __future__ import annotations

import copy
from collections import Counter
from dataclasses import dataclass, field

from repro.core.postprocess import infer_property_constraints
from repro.graph.store import GraphStore
from repro.schema.diff import SchemaDiff, diff_schemas
from repro.schema.model import SchemaGraph


@dataclass
class EvolutionStep:
    """One recorded schema transition."""

    index: int
    diff: SchemaDiff
    num_node_types: int
    num_edge_types: int

    @property
    def changed(self) -> bool:
        """True when this step altered the schema structurally."""
        return not self.diff.is_empty


class SchemaEvolutionTracker:
    """Records schema snapshots across incremental batches."""

    def __init__(self, stability_window: int = 3) -> None:
        if stability_window < 1:
            raise ValueError("stability_window must be >= 1")
        self.stability_window = stability_window
        self.steps: list[EvolutionStep] = []
        self._previous: SchemaGraph | None = None

    def observe(self, schema: SchemaGraph) -> EvolutionStep:
        """Record the schema after a batch; returns the step's diff."""
        if self._previous is None:
            baseline = SchemaGraph(schema.name)
        else:
            baseline = self._previous
        diff = diff_schemas(baseline, schema)
        step = EvolutionStep(
            index=len(self.steps),
            diff=diff,
            num_node_types=len(schema.node_types),
            num_edge_types=len(schema.edge_types),
        )
        self.steps.append(step)
        self._previous = copy.deepcopy(schema)
        return step

    @property
    def is_stable(self) -> bool:
        """True when the last ``stability_window`` steps changed nothing."""
        if len(self.steps) < self.stability_window:
            return False
        return all(
            not step.changed
            for step in self.steps[-self.stability_window:]
        )

    @property
    def steps_since_change(self) -> int:
        """Consecutive trailing steps without structural change."""
        count = 0
        for step in reversed(self.steps):
            if step.changed:
                break
            count += 1
        return count

    def violations_of_monotonicity(self) -> list[int]:
        """Indices of steps that removed schema information (none, for a
        correct incremental run without deletions)."""
        return [
            step.index
            for step in self.steps
            if not step.diff.is_monotone_extension
        ]


@dataclass
class RefreshReport:
    """Outcome of re-grounding a schema after deletions."""

    removed_node_types: list[str] = field(default_factory=list)
    removed_edge_types: list[str] = field(default_factory=list)
    pruned_members: int = 0
    constraint_changes: int = 0


def refresh_schema(schema: SchemaGraph, store: GraphStore) -> RefreshReport:
    """Re-ground a schema against a store after deletions (mutates it).

    Every type's membership is filtered to elements that still exist;
    counts and MANDATORY/OPTIONAL constraints are recomputed from the
    survivors; empty types are removed.
    """
    report = RefreshReport()
    graph = store.graph
    before_status = {
        (kind, type_name, key): spec.status
        for kind, types in (
            ("node", schema.node_types), ("edge", schema.edge_types)
        )
        for type_name, type_record in types.items()
        for key, spec in type_record.properties.items()
    }
    for name in list(schema.node_types):
        node_type = schema.node_types[name]
        live = [m for m in node_type.members if graph.has_node(m)]
        report.pruned_members += len(node_type.members) - len(live)
        if not live:
            schema.remove_node_type(name)
            report.removed_node_types.append(name)
            continue
        node_type.members = live
        node_type.instance_count = len(live)
        node_type.property_counts = Counter(
            key for m in live for key in graph.node(m).properties
        )
    for name in list(schema.edge_types):
        edge_type = schema.edge_types[name]
        live = [m for m in edge_type.members if graph.has_edge(m)]
        report.pruned_members += len(edge_type.members) - len(live)
        if not live:
            schema.remove_edge_type(name)
            report.removed_edge_types.append(name)
            continue
        edge_type.members = live
        edge_type.instance_count = len(live)
        edge_type.property_counts = Counter(
            key for m in live for key in graph.edge(m).properties
        )
    infer_property_constraints(schema)
    after_status = {
        (kind, type_name, key): spec.status
        for kind, types in (
            ("node", schema.node_types), ("edge", schema.edge_types)
        )
        for type_name, type_record in types.items()
        for key, spec in type_record.properties.items()
    }
    report.constraint_changes = sum(
        1
        for key, status in after_status.items()
        if before_status.get(key) is not None
        and before_status[key] is not status
    )
    return report
