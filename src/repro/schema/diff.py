"""Structural diff between two schema graphs.

Used by the incremental tests (to verify the monotone chain S_i <= S_{i+1})
and generally useful to inspect how a schema evolved between batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.model import EdgeType, NodeType, SchemaGraph

TypeMap = dict[str, NodeType] | dict[str, EdgeType]
# labels -> (type names carrying them, union of their property keys)
LabelGroup = tuple[list[str], frozenset[str]]


@dataclass
class SchemaDiff:
    """Differences from an ``old`` schema to a ``new`` one."""

    added_node_types: list[str] = field(default_factory=list)
    removed_node_types: list[str] = field(default_factory=list)
    added_edge_types: list[str] = field(default_factory=list)
    removed_edge_types: list[str] = field(default_factory=list)
    # type name -> property keys that appeared / disappeared
    node_property_additions: dict[str, set[str]] = field(default_factory=dict)
    node_property_removals: dict[str, set[str]] = field(default_factory=dict)
    edge_property_additions: dict[str, set[str]] = field(default_factory=dict)
    edge_property_removals: dict[str, set[str]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when the two schemas are structurally identical."""
        return not (
            self.added_node_types
            or self.removed_node_types
            or self.added_edge_types
            or self.removed_edge_types
            or self.node_property_additions
            or self.node_property_removals
            or self.edge_property_additions
            or self.edge_property_removals
        )

    @property
    def is_monotone_extension(self) -> bool:
        """True when ``new`` only *adds* information relative to ``old``.

        This is the paper's S_old is-subsumed-by S_new relation: no types or
        properties may disappear.
        """
        return not (
            self.removed_node_types
            or self.removed_edge_types
            or self.node_property_removals
            or self.edge_property_removals
        )


def diff_schemas(old: SchemaGraph, new: SchemaGraph) -> SchemaDiff:
    """Compute the structural diff from ``old`` to ``new``.

    Types are matched by label set when labeled (names of abstract types are
    generated and unstable across runs); abstract types match by property
    key set.
    """
    diff = SchemaDiff()
    _diff_kind(
        {t.name: t for t in old.node_types.values()},
        {t.name: t for t in new.node_types.values()},
        diff.added_node_types,
        diff.removed_node_types,
        diff.node_property_additions,
        diff.node_property_removals,
    )
    _diff_kind(
        {t.name: t for t in old.edge_types.values()},
        {t.name: t for t in new.edge_types.values()},
        diff.added_edge_types,
        diff.removed_edge_types,
        diff.edge_property_additions,
        diff.edge_property_removals,
    )
    return diff


def _diff_kind(
    old_types: TypeMap,
    new_types: TypeMap,
    added: list[str],
    removed: list[str],
    prop_add: dict[str, set[str]],
    prop_del: dict[str, set[str]],
) -> None:
    """Shared node/edge diff logic.

    Several types may share a label set (endpoint-aware edge types, e.g.
    two LIKES types over different targets), so labeled types are compared
    as *label groups*: the union of property keys over every type carrying
    that label set.  A label group shrinking is what breaks monotonicity,
    not key differences between sibling types.
    """
    old_groups = _label_groups(old_types)
    new_groups = _label_groups(new_types)
    for labels, (old_names, old_keys) in old_groups.items():
        match = new_groups.get(labels) or _covering_group(new_groups, labels)
        if match is None:
            removed.extend(old_names)
            continue
        match_names, match_keys = match
        gained = match_keys - old_keys
        lost = old_keys - match_keys
        if gained:
            prop_add[match_names[0]] = gained
        if lost:
            prop_del[old_names[0]] = lost
    for labels, (new_names, _) in new_groups.items():
        covered = labels in old_groups or (
            _covering_group(old_groups, labels) is not None
        )
        if not covered:
            added.extend(new_names)
    # Abstract (unlabeled) types: match by property key set.
    old_abstract = {
        t.property_keys for t in old_types.values() if not t.labels
    }
    for new_type in new_types.values():
        if new_type.labels:
            continue
        if new_type.property_keys not in old_abstract and not any(
            keys <= new_type.property_keys for keys in old_abstract
        ):
            added.append(new_type.name)
    new_abstract_keys = [
        t.property_keys for t in new_types.values() if not t.labels
    ]
    all_new_keys = [t.property_keys for t in new_types.values()]
    for old_type in old_types.values():
        if old_type.labels:
            continue
        survives = any(
            old_type.property_keys <= keys for keys in all_new_keys
        ) or old_type.property_keys in new_abstract_keys
        if not survives:
            removed.append(old_type.name)


def _label_groups(types: TypeMap) -> dict[frozenset[str], LabelGroup]:
    """labels -> (type names, union of property keys) for labeled types."""
    groups: dict[frozenset[str], LabelGroup] = {}
    for type_record in types.values():
        if not type_record.labels:
            continue
        names, keys = groups.get(type_record.labels, ([], frozenset()))
        groups[type_record.labels] = (
            names + [type_record.name],
            keys | type_record.property_keys,
        )
    return groups


def _covering_group(
    groups: dict[frozenset[str], LabelGroup], labels: frozenset[str]
) -> LabelGroup | None:
    """The *smallest* label group whose labels subsume ``labels``, if any.

    The smallest superset is the closest surviving approximation of the
    group being matched; equal-size supersets tie-break on sorted label
    tuples so the result never depends on dict-insertion order.
    """
    covering = [
        (other_labels, group)
        for other_labels, group in groups.items()
        if labels <= other_labels
    ]
    if not covering:
        return None
    best = min(
        covering,
        key=lambda item: (len(item[0]), tuple(sorted(item[0]))),
    )
    return best[1]
