"""Monotone schema merge rules (paper section 4.6, Lemmas 1 and 2).

Merging two types takes the union of labels, property keys, endpoint label
sets and membership -- nothing is ever dropped, so the sequence of schemas
produced by incremental batches forms a monotone chain (S_i is always
subsumed by S_{i+1}).

``merge_schemas`` applies the paper's rules between two whole schemas:

1. node types with identical non-empty label sets merge;
2. unlabeled node types merge into a labeled type when the Jaccard
   similarity of their property key sets reaches the threshold;
3. remaining unlabeled types merge among themselves by the same criterion;
4. whatever is left joins the result as ABSTRACT types;
5. edge types merge by label when their endpoint label sets are compatible
   (Definition 3.3 makes the endpoint pair part of the edge type, so LDBC's
   LIKES over posts and LIKES over comments stay distinct types), unioning
   endpoint information.
"""

from __future__ import annotations

from typing import Sequence

from repro.schema.model import EdgeType, NodeType, SchemaGraph
from repro.util.similarity import jaccard


def merge_node_types(into: NodeType, other: NodeType) -> NodeType:
    """Merge ``other`` into ``into`` (mutates and returns ``into``).

    Union of labels and properties; datatype/status constraints are
    reconciled conservatively: an UNKNOWN spec adopts the other side, while
    conflicting concrete datatypes generalize to STRING downstream (the
    datatype pass recomputes them from values anyway).
    """
    into.labels = into.labels | other.labels
    into.abstract = into.abstract and other.abstract
    _merge_property_specs(into, other)
    into.instance_count += other.instance_count
    into.property_counts.update(other.property_counts)
    into.members.extend(other.members)
    into.cluster_tokens |= other.cluster_tokens
    _merge_stats(into, other)
    return into


def merge_edge_types(into: EdgeType, other: EdgeType) -> EdgeType:
    """Merge ``other`` into ``into`` (mutates and returns ``into``)."""
    into.labels = into.labels | other.labels
    into.abstract = into.abstract and other.abstract
    _merge_property_specs(into, other)
    into.source_labels = into.source_labels | other.source_labels
    into.target_labels = into.target_labels | other.target_labels
    into.source_types |= other.source_types
    into.target_types |= other.target_types
    into.source_tokens |= other.source_tokens
    into.target_tokens |= other.target_tokens
    into.max_out = max(into.max_out, other.max_out)
    into.max_in = max(into.max_in, other.max_in)
    into.instance_count += other.instance_count
    into.property_counts.update(other.property_counts)
    into.members.extend(other.members)
    _merge_stats(into, other)
    return into


def _merge_stats(
    into: NodeType | EdgeType, other: NodeType | EdgeType
) -> None:
    """Fold ``other``'s partial post-processing stats into ``into``.

    Shard workers attach :class:`~repro.core.postprocess.TypeStats` to
    their types; folding them here means the post-processing reduction
    rides the same merge tree as the schemas themselves.  Every
    constituent fold (datatype lattice join, count sums, set unions,
    canonical bounds) is associative and commutative, so the merged
    stats are independent of the bracketing -- exactly like the merged
    schema.  Sequential runs carry no stats and skip this entirely.
    """
    if other.stats is None:
        return
    if into.stats is None:
        into.stats = other.stats
    else:
        into.stats.merge(other.stats)


def endpoints_compatible(
    a: EdgeType, b: EdgeType, endpoint_threshold: float = 0.5
) -> bool:
    """Whether two same-label edge types describe the same relationship.

    The paper's edge types carry an endpoint pair (Definition 3.3), so two
    clusters with the same label still belong to different types when they
    connect clearly different node types (LDBC's LIKES over posts versus
    comments).  Endpoint label sets are compared with a Jaccard threshold;
    an empty side (unlabeled endpoints) is always compatible.
    """
    a_src = a.source_labels | frozenset(a.source_tokens)
    b_src = b.source_labels | frozenset(b.source_tokens)
    a_tgt = a.target_labels | frozenset(a.target_tokens)
    b_tgt = b.target_labels | frozenset(b.target_tokens)
    source_ok = (
        not a_src or not b_src
        or jaccard(a_src, b_src) >= endpoint_threshold
    )
    target_ok = (
        not a_tgt or not b_tgt
        or jaccard(a_tgt, b_tgt) >= endpoint_threshold
    )
    return source_ok and target_ok


def find_labeled_edge_host(
    base: SchemaGraph, candidate: EdgeType, endpoint_threshold: float = 0.5
) -> EdgeType | None:
    """Same-label, endpoint-compatible host for a labeled edge type."""
    for edge_type in base.edge_types_for_labels(candidate.labels):
        if endpoints_compatible(edge_type, candidate, endpoint_threshold):
            return edge_type
    return None


class NodeTypeIndex:
    """Inverted index accelerating unlabeled-node host lookups.

    A candidate can only merge into a host when their property key sets
    intersect (or are both empty), since the Jaccard threshold is positive.
    Monotone merging means indexed entries never go stale.
    """

    def __init__(self, schema: SchemaGraph, labeled_only: bool) -> None:
        self._schema = schema
        self._labeled_only = labeled_only
        self._by_key: dict[str, set[str]] = {}
        self._empty_key: set[str] = set()
        for node_type in schema.node_types.values():
            self.add(node_type)

    def add(self, node_type: NodeType) -> None:
        """(Re-)index a node type after insertion or merge."""
        if self._labeled_only and not node_type.labels:
            return
        if not self._labeled_only and node_type.labels:
            return
        name = node_type.name
        keys = node_type.property_keys
        if keys:
            for key in keys:
                self._by_key.setdefault(key, set()).add(name)
        else:
            self._empty_key.add(name)

    def candidates(self, candidate: NodeType) -> list[NodeType]:
        """Node types that could possibly host ``candidate``."""
        keys = candidate.property_keys
        if keys:
            names: set[str] = set()
            for key in keys:
                names |= self._by_key.get(key, set())
        else:
            names = set(self._empty_key)
        node_types = self._schema.node_types
        return [node_types[name] for name in names if name in node_types]


class EdgeTypeIndex:
    """Inverted index accelerating unlabeled-edge host lookups.

    A candidate can only merge into a host when (a) their property key sets
    intersect (or are both empty -- Jaccard >= theta > 0 requires overlap)
    and (b) each nonempty endpoint side shares at least one label/token
    (endpoint Jaccard >= threshold > 0 requires overlap).  The index maps
    every key, source element and target element to the edge types carrying
    it, so a lookup inspects only plausible hosts instead of the whole
    schema.  Because type merging is monotone (sets only grow), indexed
    entries never go stale; merges simply add entries.
    """

    def __init__(self, schema: SchemaGraph) -> None:
        self._schema = schema
        self._by_key: dict[str, set[str]] = {}
        self._empty_key: set[str] = set()
        self._by_src: dict[str, set[str]] = {}
        self._empty_src: set[str] = set()
        self._by_tgt: dict[str, set[str]] = {}
        self._empty_tgt: set[str] = set()
        self._all: set[str] = set()
        for edge_type in schema.edge_types.values():
            self.add(edge_type)

    def add(self, edge_type: EdgeType) -> None:
        """(Re-)index an edge type after insertion or merge."""
        name = edge_type.name
        self._all.add(name)
        keys = edge_type.property_keys
        if keys:
            for key in keys:
                self._by_key.setdefault(key, set()).add(name)
        else:
            self._empty_key.add(name)
        src = edge_type.source_labels | frozenset(edge_type.source_tokens)
        if src:
            for element in src:
                self._by_src.setdefault(element, set()).add(name)
        else:
            self._empty_src.add(name)
        tgt = edge_type.target_labels | frozenset(edge_type.target_tokens)
        if tgt:
            for element in tgt:
                self._by_tgt.setdefault(element, set()).add(name)
        else:
            self._empty_tgt.add(name)

    def candidates(self, candidate: EdgeType) -> list[EdgeType]:
        """Edge types that could possibly host ``candidate``."""
        keys = candidate.property_keys
        if keys:
            by_key: set[str] = set()
            for key in keys:
                by_key |= self._by_key.get(key, set())
        else:
            by_key = set(self._empty_key)
        src = candidate.source_labels | frozenset(candidate.source_tokens)
        if src:
            by_src = set(self._empty_src)
            for element in src:
                by_src |= self._by_src.get(element, set())
        else:
            by_src = self._all
        tgt = candidate.target_labels | frozenset(candidate.target_tokens)
        if tgt:
            by_tgt = set(self._empty_tgt)
            for element in tgt:
                by_tgt |= self._by_tgt.get(element, set())
        else:
            by_tgt = self._all
        names = by_key & by_src & by_tgt
        edge_types = self._schema.edge_types
        return [edge_types[name] for name in names if name in edge_types]


def merge_schemas(
    base: SchemaGraph,
    incoming: SchemaGraph,
    jaccard_threshold: float = 0.9,
    endpoint_threshold: float = 0.5,
) -> SchemaGraph:
    """Merge ``incoming`` into ``base`` following section 4.6 (mutates base).

    Returns ``base`` for chaining.  The result is the least general schema
    covering both inputs under the union semantics of Lemmas 1-2.
    """
    # --- node types: labeled first --------------------------------------
    pending_unlabeled: list[NodeType] = []
    for node_type in incoming.node_types.values():
        if node_type.labels:
            existing = base.node_type_for_labels(node_type.labels)
            if existing is not None:
                merge_node_types(existing, node_type)
            else:
                _add_with_unique_name(base, node_type)
        else:
            pending_unlabeled.append(node_type)
    # --- unlabeled node types: labeled hosts, then each other ------------
    labeled_index = NodeTypeIndex(base, labeled_only=True)
    unlabeled_index = NodeTypeIndex(base, labeled_only=False)
    for node_type in pending_unlabeled:
        host = _best_jaccard_host(
            labeled_index, node_type, jaccard_threshold
        )
        if host is None:
            host = _best_jaccard_host(
                unlabeled_index, node_type, jaccard_threshold
            )
        if host is not None:
            merge_node_types(host, node_type)
            labeled_index.add(host)
            unlabeled_index.add(host)
        else:
            node_type.name = base.next_abstract_name("NODE")
            node_type.abstract = True
            base.add_node_type(node_type)
            unlabeled_index.add(node_type)
    # --- edge types: merge by label + endpoint compatibility -------------
    index = EdgeTypeIndex(base)
    for edge_type in incoming.edge_types.values():
        if edge_type.labels:
            existing = find_labeled_edge_host(
                base, edge_type, endpoint_threshold
            )
        else:
            existing = _best_jaccard_edge_host(
                index, edge_type, jaccard_threshold, endpoint_threshold
            )
        if existing is not None:
            merge_edge_types(existing, edge_type)
            index.add(existing)
        else:
            if not edge_type.labels:
                edge_type.name = base.next_abstract_name("EDGE")
                edge_type.abstract = True
            _add_edge_with_unique_name(base, edge_type)
            index.add(edge_type)
    return base


def merge_schema_tree(
    schemas: Sequence[SchemaGraph],
    jaccard_threshold: float = 0.9,
    endpoint_threshold: float = 0.5,
) -> SchemaGraph:
    """Combine batch schemas through a pairwise merge tree.

    The schemas are reduced level by level -- ``(S1+S2), (S3+S4), ...`` --
    until one remains, always pairing neighbours in input order.  Because
    :func:`merge_schemas` is union-only (Lemmas 1-2 make the batch chain
    monotone), every tree shape over the same input order yields the same
    types; fixing the shape to this canonical bracketing additionally
    pins down bookkeeping order (type insertion, abstract numbering), so
    the output is a pure function of the input *sequence* -- independent
    of which parallel worker finished first.

    Mutates the input schemas (they become intermediate accumulators) and
    returns the root.  An empty input yields a fresh empty schema.
    """
    level = [s for s in schemas if s is not None]
    if not level:
        return SchemaGraph("empty")
    while len(level) > 1:
        next_level: list[SchemaGraph] = []
        for i in range(0, len(level) - 1, 2):
            next_level.append(
                merge_schemas(
                    level[i], level[i + 1],
                    jaccard_threshold, endpoint_threshold,
                )
            )
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0]


def _merge_property_specs(into: NodeType | EdgeType, other: NodeType | EdgeType) -> None:
    """Union property specs, keeping the more specific constraint data."""
    from repro.schema.model import DataType

    for key, spec in other.properties.items():
        mine = into.ensure_property(key)
        if mine.datatype is DataType.UNKNOWN:
            mine.datatype = spec.datatype
        elif (
            spec.datatype is not DataType.UNKNOWN
            and spec.datatype is not mine.datatype
        ):
            mine.datatype = DataType.STRING  # conflicting evidence: generalize


def _best_jaccard_host(
    index: NodeTypeIndex,
    candidate: NodeType,
    threshold: float,
) -> NodeType | None:
    """Highest-Jaccard node type at or above the threshold, or None."""
    best: NodeType | None = None
    best_score = threshold
    candidate_keys = candidate.property_keys
    for node_type in index.candidates(candidate):
        score = jaccard(candidate_keys, node_type.property_keys)
        if score >= best_score:
            best, best_score = node_type, score
    return best


def _best_jaccard_edge_host(
    index: EdgeTypeIndex,
    candidate: EdgeType,
    threshold: float,
    endpoint_threshold: float = 0.5,
) -> EdgeType | None:
    """Closest edge-type host for an unlabeled edge type.

    Property-set Jaccard must reach the threshold, and the endpoint label
    sets (or cluster tokens) must be compatible -- this is what keeps
    structurally bare but differently-wired relationship types apart.
    """
    best: EdgeType | None = None
    best_score = threshold
    candidate_keys = candidate.property_keys
    for edge_type in index.candidates(candidate):
        score = jaccard(candidate_keys, edge_type.property_keys)
        if score >= best_score and endpoints_compatible(
            edge_type, candidate, endpoint_threshold
        ):
            best, best_score = edge_type, score
    return best


def _add_with_unique_name(base: SchemaGraph, node_type: NodeType) -> None:
    """Insert a node type, renaming on (rare) name collisions."""
    name = node_type.name
    suffix = 1
    while name in base.node_types:
        suffix += 1
        name = f"{node_type.name}_{suffix}"
    node_type.name = name
    base.add_node_type(node_type)


def _add_edge_with_unique_name(base: SchemaGraph, edge_type: EdgeType) -> None:
    """Insert an edge type, renaming on (rare) name collisions."""
    name = edge_type.name
    suffix = 1
    while name in base.edge_types:
        suffix += 1
        name = f"{edge_type.name}_{suffix}"
    edge_type.name = name
    base.add_edge_type(edge_type)
