"""Type hierarchy inference: subtype relations between discovered types.

The paper's challenge list includes semantic relations that "structural
similarity alone cannot capture... (e.g., Intern as a subtype of
Employee)".  While full semantic subtyping needs external knowledge, a
large and useful subset is inferable from the discovered schema itself:

``A`` is a *structural subtype* of ``B`` when

1. **label refinement** -- A's label set strictly contains B's
   ({Intern, Employee} refines {Employee}), or
2. **property refinement** -- A and B share B's entire (nonempty)
   mandatory property set while A adds mandatory properties of its own,
   and their label sets do not conflict (one of them is unlabeled or
   they overlap).

The result is a DAG of :class:`SubtypeRelation` edges (transitively
reduced), renderable as an indented forest -- the "hierarchical dataset"
view the paper's CIDOC-CRM discussion motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.model import NodeType, PropertyStatus, SchemaGraph


@dataclass(frozen=True, slots=True)
class SubtypeRelation:
    """``subtype`` IS-A ``supertype`` with the evidence kind."""

    subtype: str
    supertype: str
    evidence: str  # "labels" | "properties"


def infer_hierarchy(
    schema: SchemaGraph, use_properties: bool = True
) -> list[SubtypeRelation]:
    """Infer the transitively-reduced subtype DAG over node types."""
    types = list(schema.node_types.values())
    relations: set[tuple[str, str, str]] = set()
    for child in types:
        for parent in types:
            if child.name == parent.name:
                continue
            if _label_refines(child, parent):
                relations.add((child.name, parent.name, "labels"))
            elif use_properties and _property_refines(child, parent):
                relations.add((child.name, parent.name, "properties"))
    reduced = _transitive_reduction(relations)
    return sorted(
        (SubtypeRelation(*r) for r in reduced),
        key=lambda r: (r.supertype, r.subtype),
    )


def render_hierarchy(
    schema: SchemaGraph, relations: list[SubtypeRelation]
) -> str:
    """Indented forest view of the hierarchy (roots first)."""
    children: dict[str, list[str]] = {}
    has_parent: set[str] = set()
    for relation in relations:
        children.setdefault(relation.supertype, []).append(relation.subtype)
        has_parent.add(relation.subtype)
    lines: list[str] = []

    def _walk(name: str, depth: int) -> None:
        node_type = schema.node_types.get(name)
        count = node_type.instance_count if node_type else 0
        lines.append(f"{'  ' * depth}{name} ({count} instances)")
        for child in sorted(children.get(name, ())):
            _walk(child, depth + 1)

    roots = [
        t.name for t in schema.node_types.values()
        if t.name not in has_parent
    ]
    for root in sorted(roots):
        _walk(root, 0)
    return "\n".join(lines)


def _label_refines(child: NodeType, parent: NodeType) -> bool:
    """Child's labels strictly contain the parent's (nonempty) labels."""
    return bool(parent.labels) and parent.labels < child.labels


def _mandatory_keys(node_type: NodeType) -> frozenset[str]:
    return frozenset(
        key
        for key, spec in node_type.properties.items()
        if spec.status is PropertyStatus.MANDATORY
    )


def _property_refines(child: NodeType, parent: NodeType) -> bool:
    """Child strictly extends the parent's mandatory property contract."""
    parent_mandatory = _mandatory_keys(parent)
    child_mandatory = _mandatory_keys(child)
    if not parent_mandatory or not parent_mandatory < child_mandatory:
        return False
    # Label compatibility: disjoint nonempty label sets are different
    # concepts, not a hierarchy.
    if child.labels and parent.labels and not (child.labels & parent.labels):
        return False
    # Avoid double-reporting pairs already related by labels.
    if _label_refines(child, parent) or _label_refines(parent, child):
        return False
    return True


def _transitive_reduction(
    relations: set[tuple[str, str, str]]
) -> set[tuple[str, str, str]]:
    """Drop (a, c) when (a, b) and (b, c) are present."""
    parents: dict[str, set[str]] = {}
    for child, parent, _ in relations:
        parents.setdefault(child, set()).add(parent)

    def reachable(start: str, target: str, skip_direct: bool) -> bool:
        stack = [
            p for p in parents.get(start, ())
            if not (skip_direct and p == target)
        ]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current == target:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(parents.get(current, ()))
        return False

    return {
        (child, parent, evidence)
        for child, parent, evidence in relations
        if not reachable(child, parent, skip_direct=True)
    }
