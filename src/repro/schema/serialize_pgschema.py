"""PG-Schema serialization (paper section 4.5).

Emits ``CREATE GRAPH TYPE ... { ... }`` declarations in the PG-Schema
grammar of Angles et al., in either LOOSE or STRICT mode:

* LOOSE declares the discovered node and edge types but allows data to
  deviate (extra properties, unlisted types);
* STRICT additionally renders data types, MANDATORY/OPTIONAL constraints
  and cardinality annotations, and closes the content model.

ABSTRACT types are emitted with the ``ABSTRACT`` keyword, matching how
PG-HIVE classifies unmerged unlabeled clusters.
"""

from __future__ import annotations

import re

from repro.schema.model import (
    Cardinality,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)


def serialize_pg_schema(
    schema: SchemaGraph, mode: str = "STRICT"
) -> str:
    """Render a schema graph as a PG-Schema document.

    Args:
        schema: The schema to serialize.
        mode: ``"STRICT"`` or ``"LOOSE"``.
    """
    mode = mode.upper()
    if mode not in {"STRICT", "LOOSE"}:
        raise ValueError(f"mode must be STRICT or LOOSE, got {mode!r}")
    strict = mode == "STRICT"
    lines: list[str] = [
        f"CREATE GRAPH TYPE {_identifier(schema.name)}GraphType {mode} {{"
    ]
    body: list[str] = []
    for node_type in schema.node_types.values():
        body.append("  " + _render_node_type(node_type, strict))
    for edge_type in schema.edge_types.values():
        body.append("  " + _render_edge_type(edge_type, strict))
    lines.append(",\n".join(body))
    lines.append("}")
    return "\n".join(lines)


def _render_node_type(node_type: NodeType, strict: bool) -> str:
    """One node type element, e.g. ``(PersonType: Person {name STRING})``."""
    keyword = "ABSTRACT " if node_type.abstract else ""
    label_part = _label_conjunction(node_type.labels)
    head = f"{keyword}{_type_name(node_type.name)}"
    if label_part:
        head = f"{head}: {label_part}"
    props = _render_properties(node_type, strict)
    return f"({head}{props})"


def _render_edge_type(edge_type: EdgeType, strict: bool) -> str:
    """One edge type element with endpoint references and cardinality."""
    keyword = "ABSTRACT " if edge_type.abstract else ""
    label_part = _label_conjunction(edge_type.labels)
    head = f"{keyword}{_type_name(edge_type.name)}"
    if label_part:
        head = f"{head}: {label_part}"
    props = _render_properties(edge_type, strict)
    source = _endpoint_reference(edge_type.source_types, edge_type.source_labels)
    target = _endpoint_reference(edge_type.target_types, edge_type.target_labels)
    rendered = f"(:{source})-[{head}{props}]->(:{target})"
    if strict and edge_type.cardinality is not Cardinality.UNKNOWN:
        annotation = f"cardinality {edge_type.cardinality.value}"
        if edge_type.bounds is not None:
            annotation += f" {edge_type.bounds.render()}"
        rendered += f"  /* {annotation} */"
    return rendered


def _render_properties(
    type_record: NodeType | EdgeType, strict: bool
) -> str:
    """Property block; LOOSE mode renders ``OPEN`` key lists only."""
    if not type_record.properties:
        return ""
    if strict:
        parts = [
            spec.render()
            for _, spec in sorted(type_record.properties.items())
        ]
    else:
        parts = [
            f"OPTIONAL {key} ANY"
            if type_record.properties[key].status is PropertyStatus.OPTIONAL
            else f"{key} ANY"
            for key in sorted(type_record.properties)
        ]
        parts.append("OPEN")
    return " {" + ", ".join(parts) + "}"


def _endpoint_reference(
    type_names: set[str], labels: frozenset[str]
) -> str:
    """Reference for an edge endpoint: type names if known, else labels."""
    if type_names:
        return " | ".join(_type_name(n) for n in sorted(type_names))
    if labels:
        return _label_conjunction(labels)
    return "ANY"


def _label_conjunction(labels: frozenset[str]) -> str:
    """Render a label set as a PG-Schema label conjunction (``A & B``)."""
    return " & ".join(_identifier(label) for label in sorted(labels))


def _type_name(name: str) -> str:
    """Type-name identifier with a ``Type`` suffix."""
    return _identifier(name) + "Type"


def _identifier(text: str) -> str:
    """Sanitize arbitrary label text into a PG-Schema identifier."""
    cleaned = re.sub(r"[^0-9A-Za-z_]", "_", text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned
