"""Human-readable schema summary reports.

Renders a discovered schema as the overview a database operator wants on
one screen: per-type instance counts, property coverage, constraint and
datatype summaries, endpoint wiring and cardinalities, plus aggregate
figures (how much of the graph is covered by labeled vs ABSTRACT types).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.model import (
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)
from repro.util.tables import render_table


@dataclass(frozen=True, slots=True)
class SchemaSummary:
    """Aggregate facts about a schema."""

    num_node_types: int
    num_edge_types: int
    num_abstract_node_types: int
    num_abstract_edge_types: int
    node_instances: int
    edge_instances: int
    abstract_node_instances: int
    mandatory_properties: int
    optional_properties: int

    @property
    def labeled_node_coverage(self) -> float:
        """Fraction of node instances covered by labeled (non-ABSTRACT)
        types -- a quick health indicator for noisy discovery runs."""
        if self.node_instances == 0:
            return 1.0
        return 1.0 - self.abstract_node_instances / self.node_instances


def summarize_schema(schema: SchemaGraph) -> SchemaSummary:
    """Compute aggregate statistics for a schema."""
    node_types = list(schema.node_types.values())
    edge_types = list(schema.edge_types.values())
    mandatory = optional = 0
    for type_record in node_types + edge_types:
        for spec in type_record.properties.values():
            if spec.status is PropertyStatus.MANDATORY:
                mandatory += 1
            else:
                optional += 1
    return SchemaSummary(
        num_node_types=len(node_types),
        num_edge_types=len(edge_types),
        num_abstract_node_types=sum(1 for t in node_types if t.abstract),
        num_abstract_edge_types=sum(1 for t in edge_types if t.abstract),
        node_instances=sum(t.instance_count for t in node_types),
        edge_instances=sum(t.instance_count for t in edge_types),
        abstract_node_instances=sum(
            t.instance_count for t in node_types if t.abstract
        ),
        mandatory_properties=mandatory,
        optional_properties=optional,
    )


def render_schema_report(schema: SchemaGraph, max_types: int = 40) -> str:
    """Full text report: summary header plus per-type tables."""
    summary = summarize_schema(schema)
    lines = [
        f"Schema report: {schema.name}",
        f"  node types : {summary.num_node_types} "
        f"({summary.num_abstract_node_types} abstract), "
        f"{summary.node_instances:,} instances, "
        f"labeled coverage {summary.labeled_node_coverage:.1%}",
        f"  edge types : {summary.num_edge_types} "
        f"({summary.num_abstract_edge_types} abstract), "
        f"{summary.edge_instances:,} instances",
        f"  properties : {summary.mandatory_properties} mandatory, "
        f"{summary.optional_properties} optional",
        "",
    ]
    node_rows = [
        _node_row(t)
        for t in sorted(
            schema.node_types.values(),
            key=lambda t: t.instance_count,
            reverse=True,
        )[:max_types]
    ]
    lines.append(render_table(
        ["node type", "instances", "labels", "properties (M=mandatory)"],
        node_rows,
    ))
    lines.append("")
    edge_rows = [
        _edge_row(t)
        for t in sorted(
            schema.edge_types.values(),
            key=lambda t: t.instance_count,
            reverse=True,
        )[:max_types]
    ]
    lines.append(render_table(
        ["edge type", "instances", "endpoints", "card.", "properties"],
        edge_rows,
    ))
    hidden = (
        max(0, len(schema.node_types) - max_types)
        + max(0, len(schema.edge_types) - max_types)
    )
    if hidden:
        lines.append(f"\n({hidden} additional types not shown)")
    return "\n".join(lines)


def _node_row(node_type: NodeType) -> list[str]:
    return [
        node_type.name if not node_type.abstract
        else f"{node_type.name} (abstract)",
        f"{node_type.instance_count:,}",
        "&".join(sorted(node_type.labels)) or "-",
        _property_summary(node_type),
    ]


def _edge_row(edge_type: EdgeType) -> list[str]:
    sources = "|".join(sorted(edge_type.source_types)) or "?"
    targets = "|".join(sorted(edge_type.target_types)) or "?"
    return [
        edge_type.name if not edge_type.abstract
        else f"{edge_type.name} (abstract)",
        f"{edge_type.instance_count:,}",
        f"{sources}->{targets}",
        edge_type.cardinality.value,
        _property_summary(edge_type),
    ]


def _property_summary(type_record: NodeType | EdgeType) -> str:
    parts = []
    for key, spec in sorted(type_record.properties.items()):
        marker = "M" if spec.status is PropertyStatus.MANDATORY else "o"
        parts.append(f"{key}[{marker}:{spec.datatype.value}]")
    return " ".join(parts) or "-"
