"""Schema persistence: save and resume discovered schemas as JSON.

Incremental discovery is only useful in practice if the running schema
survives process restarts: a nightly job loads yesterday's schema,
processes the day's batches, and stores the result.  This module
round-trips a :class:`~repro.schema.model.SchemaGraph` through a stable
JSON document, including the bookkeeping the incremental engine needs
(instance counts, per-property occurrence counters, cluster tokens) --
with or without the raw member id lists.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

from repro.schema.model import (
    Cardinality,
    DataType,
    EdgeType,
    NodeType,
    PropertySpec,
    PropertyStatus,
    SchemaGraph,
)

_FORMAT_VERSION = 1


def schema_to_dict(
    schema: SchemaGraph, include_members: bool = True
) -> dict[str, Any]:
    """Serializable dict form of a schema graph."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": schema.name,
        "node_types": [
            _node_type_to_dict(t, include_members)
            for t in schema.node_types.values()
        ],
        "edge_types": [
            _edge_type_to_dict(t, include_members)
            for t in schema.edge_types.values()
        ],
    }


def schema_from_dict(data: dict[str, Any]) -> SchemaGraph:
    """Rebuild a schema graph from :func:`schema_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported schema format version {version!r}"
        )
    schema = SchemaGraph(data.get("name", "schema"))
    for record in data.get("node_types", ()):
        schema.add_node_type(_node_type_from_dict(record))
    for record in data.get("edge_types", ()):
        schema.add_edge_type(_edge_type_from_dict(record))
    return schema


def save_schema(
    schema: SchemaGraph, path: str | Path, include_members: bool = True
) -> None:
    """Write a schema to a JSON file."""
    Path(path).write_text(
        json.dumps(schema_to_dict(schema, include_members), indent=2),
        encoding="utf-8",
    )


def load_schema(path: str | Path) -> SchemaGraph:
    """Read a schema previously written by :func:`save_schema`."""
    return schema_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


# ---------------------------------------------------------------------------
# Record conversion
# ---------------------------------------------------------------------------

def _spec_to_dict(spec: PropertySpec) -> dict[str, Any]:
    return {
        "key": spec.key,
        "datatype": spec.datatype.name,
        "status": spec.status.name,
    }


def _spec_from_dict(record: dict[str, Any]) -> PropertySpec:
    return PropertySpec(
        key=record["key"],
        datatype=DataType[record.get("datatype", "UNKNOWN")],
        status=PropertyStatus[record.get("status", "OPTIONAL")],
    )


def _node_type_to_dict(
    node_type: NodeType, include_members: bool
) -> dict[str, Any]:
    return {
        "name": node_type.name,
        "labels": sorted(node_type.labels),
        "abstract": node_type.abstract,
        "properties": [
            _spec_to_dict(s) for _, s in sorted(node_type.properties.items())
        ],
        "instance_count": node_type.instance_count,
        "property_counts": dict(node_type.property_counts),
        "cluster_tokens": sorted(node_type.cluster_tokens),
        "members": list(node_type.members) if include_members else [],
    }


def _node_type_from_dict(record: dict[str, Any]) -> NodeType:
    node_type = NodeType(
        name=record["name"],
        labels=frozenset(record.get("labels", ())),
        abstract=bool(record.get("abstract", False)),
        instance_count=int(record.get("instance_count", 0)),
        property_counts=Counter(record.get("property_counts", {})),
        members=list(record.get("members", ())),
        cluster_tokens=set(record.get("cluster_tokens", ())),
    )
    for spec_record in record.get("properties", ()):
        spec = _spec_from_dict(spec_record)
        node_type.properties[spec.key] = spec
    return node_type


def _edge_type_to_dict(
    edge_type: EdgeType, include_members: bool
) -> dict[str, Any]:
    return {
        "name": edge_type.name,
        "labels": sorted(edge_type.labels),
        "abstract": edge_type.abstract,
        "properties": [
            _spec_to_dict(s) for _, s in sorted(edge_type.properties.items())
        ],
        "source_labels": sorted(edge_type.source_labels),
        "target_labels": sorted(edge_type.target_labels),
        "source_types": sorted(edge_type.source_types),
        "target_types": sorted(edge_type.target_types),
        "source_tokens": sorted(edge_type.source_tokens),
        "target_tokens": sorted(edge_type.target_tokens),
        "cardinality": edge_type.cardinality.name,
        "max_out": edge_type.max_out,
        "max_in": edge_type.max_in,
        "instance_count": edge_type.instance_count,
        "property_counts": dict(edge_type.property_counts),
        "members": list(edge_type.members) if include_members else [],
    }


def _edge_type_from_dict(record: dict[str, Any]) -> EdgeType:
    edge_type = EdgeType(
        name=record["name"],
        labels=frozenset(record.get("labels", ())),
        abstract=bool(record.get("abstract", False)),
        source_labels=frozenset(record.get("source_labels", ())),
        target_labels=frozenset(record.get("target_labels", ())),
        source_types=set(record.get("source_types", ())),
        target_types=set(record.get("target_types", ())),
        source_tokens=set(record.get("source_tokens", ())),
        target_tokens=set(record.get("target_tokens", ())),
        cardinality=Cardinality[record.get("cardinality", "UNKNOWN")],
        max_out=int(record.get("max_out", 0)),
        max_in=int(record.get("max_in", 0)),
        instance_count=int(record.get("instance_count", 0)),
        property_counts=Counter(record.get("property_counts", {})),
        members=list(record.get("members", ())),
    )
    for spec_record in record.get("properties", ()):
        spec = _spec_from_dict(spec_record)
        edge_type.properties[spec.key] = spec
    return edge_type
