"""Schema persistence: save and resume discovered schemas as JSON.

Incremental discovery is only useful in practice if the running schema
survives process restarts: a nightly job loads yesterday's schema,
processes the day's batches, and stores the result.  This module
round-trips a :class:`~repro.schema.model.SchemaGraph` through a stable
JSON document, including the bookkeeping the incremental engine needs
(instance counts, per-property occurrence counters, cluster tokens) --
with or without the raw member id lists.

Two failure-hardening facilities live here as well:

* every decode error -- truncated or corrupt JSON, missing required
  fields, unknown format versions -- surfaces as a single
  :class:`SchemaPersistError` with the file path in the message, so a
  nightly job distinguishes "yesterday's schema is damaged" from its own
  bugs with one except clause;
* :func:`save_checkpoint` / :func:`load_checkpoint` journal a *run in
  progress* (the running schema plus a manifest of completed batches) as
  one JSON document written atomically (temp file + ``os.replace``), so
  a crash at any instant leaves either the previous checkpoint or the
  new one, never a torn mix.  The monotone merge (Lemmas 1-2) is what
  makes resuming from such a snapshot safe: re-processing the remaining
  batches merges to the identical final schema.
* :func:`save_shard_journal_entry` / :func:`load_shard_journal` /
  :func:`clear_shard_journal` do the same for the *parallel* driver,
  one atomic document per completed shard under
  ``<checkpoint_dir>/shards/``, so a crashed ``jobs > 1`` run resumes
  mid-pool from its completed shards.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from collections import Counter
from pathlib import Path
from typing import Any

from repro.util.diskio import fsync_directory
from repro.schema.model import (
    Cardinality,
    DataType,
    EdgeType,
    NodeType,
    PropertySpec,
    PropertyStatus,
    SchemaGraph,
)

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 1
_SHARD_JOURNAL_VERSION = 1

_ABSTRACT_NAME_RE = re.compile(r"^ABSTRACT_[A-Z]+_(\d+)$")


class SchemaPersistError(ValueError):
    """A persisted schema or checkpoint could not be decoded.

    Raised for corrupt/truncated JSON, documents missing required
    fields, and format versions newer than this code understands.
    Subclasses ``ValueError`` so pre-existing callers that caught the
    old ad-hoc errors keep working.
    """


def schema_to_dict(
    schema: SchemaGraph, include_members: bool = True
) -> dict[str, Any]:
    """Serializable dict form of a schema graph."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": schema.name,
        "node_types": [
            _node_type_to_dict(t, include_members)
            for t in schema.node_types.values()
        ],
        "edge_types": [
            _edge_type_to_dict(t, include_members)
            for t in schema.edge_types.values()
        ],
    }


def schema_from_dict(data: dict[str, Any]) -> SchemaGraph:
    """Rebuild a schema graph from :func:`schema_to_dict` output.

    Raises:
        SchemaPersistError: If the document is not a schema dict, names
            an unsupported format version, or is missing required fields.
    """
    if not isinstance(data, dict):
        raise SchemaPersistError(
            f"schema document must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise SchemaPersistError(
            f"unsupported schema format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    schema = SchemaGraph(data.get("name", "schema"))
    try:
        for record in data.get("node_types", ()):
            schema.add_node_type(_node_type_from_dict(record))
        for record in data.get("edge_types", ()):
            schema.add_edge_type(_edge_type_from_dict(record))
    except (KeyError, TypeError, AttributeError) as exc:
        raise SchemaPersistError(
            f"malformed schema document: {exc!r}"
        ) from exc
    # Restore the abstract-name counter so future merges into the
    # reloaded schema never re-issue an ABSTRACT_*_n name already taken
    # (a resumed unlabeled run would otherwise hit a duplicate-name
    # error on its next merge).
    counter = 0
    for name in list(schema.node_types) + list(schema.edge_types):
        match = _ABSTRACT_NAME_RE.match(name)
        if match is not None:
            counter = max(counter, int(match.group(1)))
    schema._abstract_counter = counter
    return schema


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX, so a reader (or a crash) observes
    either the full old file or the full new one.  The temp file is
    fsynced before the rename and the parent directory after it --
    without the directory fsync the rename itself can revert (or, for a
    first write, vanish) on power loss despite the data being durable.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_schema(
    schema: SchemaGraph, path: str | Path, include_members: bool = True
) -> None:
    """Write a schema to a JSON file (atomic write-and-rename)."""
    _atomic_write_text(
        Path(path),
        json.dumps(schema_to_dict(schema, include_members), indent=2),
    )


def load_schema(path: str | Path) -> SchemaGraph:
    """Read a schema previously written by :func:`save_schema`.

    Raises:
        SchemaPersistError: Corrupt/truncated JSON or an unreadable
            document (the message carries the file path).
        FileNotFoundError: The file does not exist.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaPersistError(
            f"{path}: corrupt or truncated schema JSON: {exc}"
        ) from exc
    try:
        return schema_from_dict(data)
    except SchemaPersistError as exc:
        raise SchemaPersistError(f"{path}: {exc}") from exc


# ---------------------------------------------------------------------------
# Run checkpoints (schema + manifest in one atomic document)
# ---------------------------------------------------------------------------

def save_checkpoint(
    path: str | Path, schema: SchemaGraph, manifest: dict[str, Any]
) -> None:
    """Journal a running schema plus its batch manifest atomically.

    The two halves travel in one document on purpose: separate files
    could be replaced at different instants, and a crash in between
    would leave a schema ahead of its manifest -- resuming from that
    would re-merge batches and double-count instances.  One
    ``os.replace`` keeps schema and manifest consistent by construction.
    """
    document = {
        "checkpoint_version": _CHECKPOINT_VERSION,
        "manifest": manifest,
        "schema": schema_to_dict(schema, include_members=True),
    }
    _atomic_write_text(Path(path), json.dumps(document))


def load_checkpoint(
    path: str | Path,
) -> tuple[SchemaGraph, dict[str, Any]]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Returns:
        ``(schema, manifest)``.

    Raises:
        SchemaPersistError: Corrupt/truncated JSON, an unsupported
            checkpoint version, or a malformed embedded schema.
        FileNotFoundError: The file does not exist.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaPersistError(
            f"{path}: corrupt or truncated checkpoint JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise SchemaPersistError(f"{path}: checkpoint must be a JSON object")
    version = document.get("checkpoint_version")
    if version != _CHECKPOINT_VERSION:
        raise SchemaPersistError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(this build reads version {_CHECKPOINT_VERSION})"
        )
    manifest = document.get("manifest")
    if not isinstance(manifest, dict):
        raise SchemaPersistError(f"{path}: checkpoint manifest missing")
    try:
        schema = schema_from_dict(document.get("schema"))
    except SchemaPersistError as exc:
        raise SchemaPersistError(f"{path}: {exc}") from exc
    return schema, manifest


# ---------------------------------------------------------------------------
# Parallel shard journal (one atomic document per completed shard)
# ---------------------------------------------------------------------------
#
# The sequential checkpoint above journals a linear batch frontier; a
# parallel run completes shards in arbitrary order, so it journals each
# completed shard as its own atomic document instead.  A driver crash at
# any instant leaves a set of whole entries (never a torn one); resuming
# re-runs only the shards without an entry, and shard purity makes the
# merged result byte-identical either way.  The entry *content* (shard
# schema, partial stats, report, context) is assembled by
# :mod:`repro.core.parallel`, which owns those types; this module only
# guarantees atomicity, versioning, and tolerant enumeration.

def shard_journal_dir(directory: str | Path) -> Path:
    """Where a checkpoint directory keeps its parallel shard entries."""
    return Path(directory) / "shards"


def save_shard_journal_entry(
    directory: str | Path, index: int, document: dict[str, Any]
) -> Path:
    """Atomically journal one completed parallel shard; returns the path.

    The entry lands as ``shards/shard-<index>.json`` under the checkpoint
    directory, via the same temp-file + ``os.replace`` protocol as the
    sequential checkpoint, so readers never observe a torn entry.
    """
    journal = shard_journal_dir(directory)
    journal.mkdir(parents=True, exist_ok=True)
    path = journal / f"shard-{index:05d}.json"
    payload = dict(document)
    payload["journal_version"] = _SHARD_JOURNAL_VERSION
    payload["index"] = index
    _atomic_write_text(path, json.dumps(payload))
    return path


def load_shard_journal(
    directory: str | Path,
) -> tuple[dict[int, dict[str, Any]], list[str]]:
    """Read every readable shard journal entry under a checkpoint dir.

    Returns:
        ``(entries, skipped)`` -- shard index -> decoded entry document,
        plus the file names that could not be used (corrupt JSON, foreign
        journal versions, missing index).  Unusable entries are *skipped*
        rather than fatal: the resuming driver simply recomputes those
        shards, which is always safe, and surfaces the names.
    """
    journal = shard_journal_dir(directory)
    entries: dict[int, dict[str, Any]] = {}
    skipped: list[str] = []
    if not journal.is_dir():
        return entries, skipped
    for path in sorted(journal.glob("shard-*.json")):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            skipped.append(path.name)
            continue
        if (
            not isinstance(document, dict)
            or document.get("journal_version") != _SHARD_JOURNAL_VERSION
            or not isinstance(document.get("index"), int)
        ):
            skipped.append(path.name)
            continue
        entries[int(document["index"])] = document
    return entries, skipped


def clear_shard_journal(directory: str | Path) -> int:
    """Delete all shard journal entries; returns how many were removed.

    A fresh (non-resume) parallel run clears the journal first so a later
    resume can never mix entries from two different runs.
    """
    journal = shard_journal_dir(directory)
    if not journal.is_dir():
        return 0
    removed = 0
    for path in sorted(journal.glob("shard-*.json")):
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
    return removed


# ---------------------------------------------------------------------------
# Record conversion
# ---------------------------------------------------------------------------

def _spec_to_dict(spec: PropertySpec) -> dict[str, Any]:
    return {
        "key": spec.key,
        "datatype": spec.datatype.name,
        "status": spec.status.name,
    }


def _spec_from_dict(record: dict[str, Any]) -> PropertySpec:
    return PropertySpec(
        key=record["key"],
        datatype=DataType[record.get("datatype", "UNKNOWN")],
        status=PropertyStatus[record.get("status", "OPTIONAL")],
    )


def _node_type_to_dict(
    node_type: NodeType, include_members: bool
) -> dict[str, Any]:
    return {
        "name": node_type.name,
        "labels": sorted(node_type.labels),
        "abstract": node_type.abstract,
        "properties": [
            _spec_to_dict(s) for _, s in sorted(node_type.properties.items())
        ],
        "instance_count": node_type.instance_count,
        "property_counts": dict(node_type.property_counts),
        "cluster_tokens": sorted(node_type.cluster_tokens),
        "members": list(node_type.members) if include_members else [],
    }


def _node_type_from_dict(record: dict[str, Any]) -> NodeType:
    node_type = NodeType(
        name=record["name"],
        labels=frozenset(record.get("labels", ())),
        abstract=bool(record.get("abstract", False)),
        instance_count=int(record.get("instance_count", 0)),
        property_counts=Counter(record.get("property_counts", {})),
        members=list(record.get("members", ())),
        cluster_tokens=set(record.get("cluster_tokens", ())),
    )
    for spec_record in record.get("properties", ()):
        spec = _spec_from_dict(spec_record)
        node_type.properties[spec.key] = spec
    return node_type


def _edge_type_to_dict(
    edge_type: EdgeType, include_members: bool
) -> dict[str, Any]:
    return {
        "name": edge_type.name,
        "labels": sorted(edge_type.labels),
        "abstract": edge_type.abstract,
        "properties": [
            _spec_to_dict(s) for _, s in sorted(edge_type.properties.items())
        ],
        "source_labels": sorted(edge_type.source_labels),
        "target_labels": sorted(edge_type.target_labels),
        "source_types": sorted(edge_type.source_types),
        "target_types": sorted(edge_type.target_types),
        "source_tokens": sorted(edge_type.source_tokens),
        "target_tokens": sorted(edge_type.target_tokens),
        "cardinality": edge_type.cardinality.name,
        "max_out": edge_type.max_out,
        "max_in": edge_type.max_in,
        "instance_count": edge_type.instance_count,
        "property_counts": dict(edge_type.property_counts),
        "members": list(edge_type.members) if include_members else [],
    }


def _edge_type_from_dict(record: dict[str, Any]) -> EdgeType:
    edge_type = EdgeType(
        name=record["name"],
        labels=frozenset(record.get("labels", ())),
        abstract=bool(record.get("abstract", False)),
        source_labels=frozenset(record.get("source_labels", ())),
        target_labels=frozenset(record.get("target_labels", ())),
        source_types=set(record.get("source_types", ())),
        target_types=set(record.get("target_types", ())),
        source_tokens=set(record.get("source_tokens", ())),
        target_tokens=set(record.get("target_tokens", ())),
        cardinality=Cardinality[record.get("cardinality", "UNKNOWN")],
        max_out=int(record.get("max_out", 0)),
        max_in=int(record.get("max_in", 0)),
        instance_count=int(record.get("instance_count", 0)),
        property_counts=Counter(record.get("property_counts", {})),
        members=list(record.get("members", ())),
    )
    for spec_record in record.get("properties", ()):
        spec = _spec_from_dict(spec_record)
        edge_type.properties[spec.key] = spec
    return edge_type
