"""Validating a property graph against a discovered schema.

The paper motivates constraint inference with "validation processes"; this
module closes that loop.  Validation runs in two modes mirroring PG-Schema:

* LOOSE -- every element must be *covered* by some type (labels a subset of
  a type's labels, properties a subset of its keys); extra types of data are
  reported but mandatory constraints are not enforced.
* STRICT -- additionally enforces MANDATORY properties, datatype
  compatibility of values, and (for edges) endpoint label compatibility.

The validator returns a structured report rather than raising, because
noisy real datasets are expected to violate STRICT schemas (section 4.5).

Two engines produce identical reports:

* :func:`validate_graph` / :func:`validate_elements` -- the per-element
  reference loop, retained as the semantics oracle;
* :func:`validate_columns` (and its columnizing wrapper
  :func:`validate_batch`) -- the bulk admission checker behind the
  service's validate endpoint.  Candidate-type matching is computed once
  per distinct (label set, key set[, endpoint labels]) pattern over
  :class:`~repro.core.columns.NodeColumns` /
  :class:`~repro.core.columns.EdgeColumns`, so a batch of N rows costs
  O(distinct patterns) for coverage, candidate ranking, mandatory and
  endpoint checks; only rows whose candidate types declare checkable
  datatypes for the pattern's keys are touched individually (value
  compatibility is inherently per-value).  ``tests/test_validate_columns.py``
  property-tests the two engines byte-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.columns import (
    EdgeColumns,
    NodeColumns,
    edge_columns,
    node_columns,
)
from repro.core.datatypes import infer_value_type, is_value_compatible
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import (
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)


class ValidationMode(enum.Enum):
    """Conformance strictness."""

    LOOSE = "LOOSE"
    STRICT = "STRICT"


@dataclass(frozen=True, slots=True)
class Violation:
    """One conformance failure."""

    element_kind: str  # "node" | "edge"
    element_id: int
    rule: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the service's wire format)."""
        return {
            "element_kind": self.element_kind,
            "element_id": self.element_id,
            "rule": self.rule,
            "detail": self.detail,
        }


@dataclass
class ValidationReport:
    """Aggregate validation outcome."""

    mode: ValidationMode
    checked: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """True when no violations were recorded."""
        return not self.violations

    @property
    def violation_count(self) -> int:
        """Raw number of recorded violations (an element may have many)."""
        return len(self.violations)

    @property
    def violating_elements(self) -> int:
        """Number of distinct elements with at least one violation."""
        return len({(v.element_kind, v.element_id) for v in self.violations})

    @property
    def violation_rate(self) -> float:
        """Fraction of checked elements that violate at least one rule.

        Counts violating *elements*, not violations: an element failing
        several rules contributes once, so the rate is always in
        ``[0, 1]``.  The raw violation count stays available as
        :attr:`violation_count`.
        """
        if self.checked == 0:
            return 0.0
        return self.violating_elements / self.checked

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the service's wire format)."""
        return {
            "mode": self.mode.value,
            "checked": self.checked,
            "valid": self.is_valid,
            "violation_count": self.violation_count,
            "violating_elements": self.violating_elements,
            "violation_rate": self.violation_rate,
            "violations": [v.to_dict() for v in self.violations],
        }


def validate_graph(
    graph: PropertyGraph,
    schema: SchemaGraph,
    mode: ValidationMode = ValidationMode.STRICT,
) -> ValidationReport:
    """Check every node and edge of ``graph`` against ``schema``."""
    nodes = list(graph.nodes())
    return validate_elements(
        nodes,
        list(graph.edges()),
        schema,
        mode,
        endpoint_labels={node.id: node.labels for node in nodes},
    )


def validate_elements(
    nodes: Sequence[Node],
    edges: Sequence[Edge],
    schema: SchemaGraph,
    mode: ValidationMode = ValidationMode.STRICT,
    endpoint_labels: Mapping[int, frozenset[str]] | None = None,
) -> ValidationReport:
    """Per-element reference validation of a batch of elements.

    Args:
        nodes: Batch nodes.
        edges: Batch edges (endpoints may live outside the batch).
        schema: The schema to conform to.
        mode: PG-Schema strictness.
        endpoint_labels: node id -> label set for edge endpoints; defaults
            to the labels of the batch's own nodes.  Unknown endpoints
            validate as unlabeled (endpoint checks are skipped for them,
            matching how an absent label set behaves in the paper's LOOSE
            reading).
    """
    if endpoint_labels is None:
        endpoint_labels = {node.id: node.labels for node in nodes}
    empty: frozenset[str] = frozenset()
    report = ValidationReport(mode=mode)
    for node in nodes:
        report.checked += 1
        _validate_node(node, schema, mode, report)
    for edge in edges:
        report.checked += 1
        _validate_edge(
            edge,
            endpoint_labels.get(edge.source, empty),
            endpoint_labels.get(edge.target, empty),
            schema,
            mode,
            report,
        )
    return report


def _validate_node(
    node: Node,
    schema: SchemaGraph,
    mode: ValidationMode,
    report: ValidationReport,
) -> None:
    """An element conforms when *some* covering type accepts it.

    When every covering type rejects the node, the violations of the
    least-violating candidate are reported (the most informative failure).
    """
    candidates = _covering_node_types_for(
        node.labels, node.property_keys, schema
    )
    if not candidates:
        report.violations.append(
            _no_type_violation("node", node.id, node.labels,
                               node.property_keys)
        )
        return
    if mode is not ValidationMode.STRICT:
        return
    best_failures: list[Violation] | None = None
    for node_type in candidates:
        failures: list[Violation] = []
        _check_mandatory(
            node.property_keys, node_type, "node", node.id, failures
        )
        _check_datatypes(
            node.properties, node_type, "node", node.id, failures
        )
        if not failures:
            return
        if best_failures is None or len(failures) < len(best_failures):
            best_failures = failures
    report.violations.extend(best_failures or [])


def _validate_edge(
    edge: Edge,
    source_labels: frozenset[str],
    target_labels: frozenset[str],
    schema: SchemaGraph,
    mode: ValidationMode,
    report: ValidationReport,
) -> None:
    """Find a covering edge type accepting the edge, or report failures."""
    candidates = _covering_edge_types_for(
        edge.labels, edge.property_keys, schema
    )
    if not candidates:
        report.violations.append(
            _no_type_violation("edge", edge.id, edge.labels, None)
        )
        return
    if mode is not ValidationMode.STRICT:
        return
    best_failures: list[Violation] | None = None
    for edge_type in candidates:
        failures = []
        _check_mandatory(
            edge.property_keys, edge_type, "edge", edge.id, failures
        )
        _check_datatypes(
            edge.properties, edge_type, "edge", edge.id, failures
        )
        _check_endpoints(
            edge.id, edge_type, source_labels, target_labels, failures
        )
        if not failures:
            return
        if best_failures is None or len(failures) < len(best_failures):
            best_failures = failures
    report.violations.extend(best_failures or [])


def _no_type_violation(
    kind: str,
    element_id: int,
    labels: frozenset[str],
    keys: frozenset[str] | None,
) -> Violation:
    """The coverage failure: no schema type accepts the element."""
    detail = f"no schema type covers labels={sorted(labels)}"
    if keys is not None:
        detail += f" keys={sorted(keys)}"
    return Violation(kind, element_id, "no-type", detail)


def _check_endpoints(
    edge_id: int,
    edge_type: EdgeType,
    source_labels: frozenset[str],
    target_labels: frozenset[str],
    report: list[Violation],
) -> None:
    """Endpoint labels must intersect the type's endpoint label sets."""
    if (
        edge_type.source_labels
        and source_labels
        and not (source_labels & edge_type.source_labels)
    ):
        report.append(Violation(
            "edge", edge_id, "endpoint",
            f"source labels {sorted(source_labels)} not among "
            f"{sorted(edge_type.source_labels)}",
        ))
    if (
        edge_type.target_labels
        and target_labels
        and not (target_labels & edge_type.target_labels)
    ):
        report.append(Violation(
            "edge", edge_id, "endpoint",
            f"target labels {sorted(target_labels)} not among "
            f"{sorted(edge_type.target_labels)}",
        ))


def _covering_node_types_for(
    labels: frozenset[str], keys: frozenset[str], schema: SchemaGraph
) -> list[NodeType]:
    """Covering node types, best label match first.

    Exact label matches rank before supersets; supersets rank by label
    overlap.  Ties keep schema insertion order (sort stability), which is
    deterministic because type insertion is.
    """
    covering = [
        node_type
        for node_type in schema.node_types.values()
        if (not labels or labels <= node_type.labels)
        and keys <= node_type.property_keys
    ]
    covering.sort(
        key=lambda t: (
            t.labels == labels,
            len(labels & t.labels),
        ),
        reverse=True,
    )
    return covering


def _covering_edge_types_for(
    labels: frozenset[str], keys: frozenset[str], schema: SchemaGraph
) -> list[EdgeType]:
    """Covering edge types, best label match first.

    Ranks exactly like :func:`_covering_node_types_for`: an exact label
    match outranks any superset, then label overlap breaks remaining
    ties (insertion order last).  STRICT failures are therefore reported
    against the most informative candidate -- previously a superset type
    with equal overlap could shadow the exact match.
    """
    covering = [
        edge_type
        for edge_type in schema.edge_types.values()
        if (not labels or labels <= edge_type.labels)
        and keys <= edge_type.property_keys
    ]
    covering.sort(
        key=lambda t: (
            t.labels == labels,
            len(labels & t.labels),
        ),
        reverse=True,
    )
    return covering


def _check_mandatory(
    present_keys: frozenset[str],
    type_record: NodeType | EdgeType,
    kind: str,
    element_id: int,
    report: list[Violation],
) -> None:
    """Every MANDATORY property must be present on the instance."""
    for key, spec in type_record.properties.items():
        if spec.status is PropertyStatus.MANDATORY and key not in present_keys:
            report.append(Violation(
                kind, element_id, "mandatory",
                f"missing mandatory property {key!r} of type "
                f"{type_record.name!r}",
            ))


def _check_datatypes(
    properties: Mapping[str, Any],
    type_record: NodeType | EdgeType,
    kind: str,
    element_id: int,
    report: list[Violation],
) -> None:
    """Property values must be compatible with the declared datatypes."""
    for key, value in properties.items():
        spec = type_record.properties.get(key)
        if spec is None or spec.datatype in (DataType.UNKNOWN, DataType.STRING):
            continue
        if not is_value_compatible(value, spec.datatype):
            report.append(Violation(
                kind, element_id, "datatype",
                f"property {key!r}={value!r} is {infer_value_type(value).value},"
                f" schema declares {spec.datatype.value}",
            ))


# ---------------------------------------------------------------------------
# Columnar bulk admission checking
# ---------------------------------------------------------------------------


@dataclass
class _PatternPlan:
    """Per-distinct-pattern validation plan, computed once per pattern.

    ``verdict`` short-circuits whole patterns:

    * ``"no-type"`` -- no covering candidate; every row gets the
      (pattern-constant) coverage violation;
    * ``"accept"`` -- some candidate is guaranteed to accept every row of
      the pattern without looking at values (no mandatory gaps, no
      endpoint clashes, and no checkable datatype among the pattern's
      keys), or the mode is LOOSE and a candidate covers the pattern;
    * ``"check"`` -- rows need their property values inspected against
      the (pattern-constant, pre-ranked) candidate list.
    """

    verdict: str
    kind: str
    # "no-type": the detail string shared by every row of the pattern.
    no_type_detail: str = ""
    # "check": pre-ranked candidates with their pattern-level failures.
    candidates: list["_CandidatePlan"] = field(default_factory=list)


@dataclass
class _CandidatePlan:
    """One covering type's pattern-level failure components."""

    type_record: NodeType | EdgeType
    # Pattern-constant violation details (mandatory + endpoint), in the
    # exact order the reference loop emits them relative to datatypes.
    mandatory_details: list[str] = field(default_factory=list)
    endpoint_details: list[str] = field(default_factory=list)
    # Whether any of the pattern's keys has a checkable declared datatype
    # on this candidate (if not, datatype failures are impossible).
    needs_values: bool = False


def validate_batch(
    nodes: Sequence[Node],
    edges: Sequence[Edge],
    schema: SchemaGraph,
    mode: ValidationMode = ValidationMode.STRICT,
    endpoint_labels: Mapping[int, frozenset[str]] | None = None,
) -> ValidationReport:
    """Columnize a batch and run the bulk admission checker.

    Result-identical to :func:`validate_elements` on the same inputs
    (property-tested); the convenience entry point of the service's
    validate endpoint and the ``pghive validate`` CLI.
    """
    if endpoint_labels is None:
        endpoint_labels = {node.id: node.labels for node in nodes}
    ncols = node_columns(nodes)
    ecols = edge_columns(edges, dict(endpoint_labels))
    return validate_columns(
        schema,
        ncols,
        ecols,
        mode,
        node_properties=lambda row: nodes[row].properties,
        edge_properties=lambda row: edges[row].properties,
    )


def validate_columns(
    schema: SchemaGraph,
    ncols: NodeColumns,
    ecols: EdgeColumns,
    mode: ValidationMode = ValidationMode.STRICT,
    node_properties: Callable[[int], Mapping[str, Any]] | None = None,
    edge_properties: Callable[[int], Mapping[str, Any]] | None = None,
) -> ValidationReport:
    """Bulk admission check over columnized batches.

    Candidate matching, ranking, coverage, mandatory and endpoint checks
    run once per distinct pattern; ``node_properties`` /
    ``edge_properties`` (batch row index -> property mapping) are only
    called for rows whose pattern requires value inspection.  Omitting
    an accessor treats the corresponding rows as property-less for the
    datatype check (their key sets still drive coverage/mandatory), so
    callers that columnized away the values can still screen traffic.

    Returns a report byte-identical to the per-element reference over
    the same elements: same violations, in the same order.
    """
    report = ValidationReport(mode=mode)
    report.checked = len(ncols) + len(ecols)

    node_plans = _node_pattern_plans(schema, ncols, mode)
    pattern_ids, _ = ncols.pattern_ids()
    for row, pattern in enumerate(pattern_ids.tolist()):
        plan = node_plans[pattern]
        if plan.verdict == "accept":
            continue
        if plan.verdict == "no-type":
            report.violations.append(Violation(
                "node", int(ncols.ids[row]), "no-type", plan.no_type_detail
            ))
            continue
        properties = node_properties(row) if node_properties else {}
        _check_row(
            plan, int(ncols.ids[row]), properties, report.violations
        )

    edge_plans = _edge_pattern_plans(schema, ecols, mode)
    epattern_ids, _ = ecols.pattern_ids()
    for row, pattern in enumerate(epattern_ids.tolist()):
        plan = edge_plans[pattern]
        if plan.verdict == "accept":
            continue
        if plan.verdict == "no-type":
            report.violations.append(Violation(
                "edge", int(ecols.ids[row]), "no-type", plan.no_type_detail
            ))
            continue
        properties = edge_properties(row) if edge_properties else {}
        _check_row(
            plan, int(ecols.ids[row]), properties, report.violations
        )
    return report


def _check_row(
    plan: _PatternPlan,
    element_id: int,
    properties: Mapping[str, Any],
    out: list[Violation],
) -> None:
    """Evaluate one row against its pattern's pre-ranked candidates.

    Mirrors the reference loop exactly: first candidate with zero
    failures accepts; otherwise the first least-failing candidate's
    violations are reported, in mandatory -> datatype -> endpoint order.
    """
    kind = plan.kind
    best: list[Violation] | None = None
    for candidate in plan.candidates:
        failures = [
            Violation(kind, element_id, "mandatory", detail)
            for detail in candidate.mandatory_details
        ]
        if candidate.needs_values:
            _check_datatypes(
                properties, candidate.type_record, kind, element_id,
                failures,
            )
        failures.extend(
            Violation(kind, element_id, "endpoint", detail)
            for detail in candidate.endpoint_details
        )
        if not failures:
            return
        if best is None or len(failures) < len(best):
            best = failures
    out.extend(best or [])


def _node_pattern_plans(
    schema: SchemaGraph, ncols: NodeColumns, mode: ValidationMode
) -> list[_PatternPlan]:
    """One validation plan per distinct node (label set, key set) pattern."""
    _, representatives = ncols.pattern_ids()
    plans: list[_PatternPlan] = []
    for rep in representatives.tolist():
        labels = ncols.labels.sets[int(ncols.label_ids[rep])]
        keys = ncols.keys.sets[int(ncols.keyset_ids[rep])]
        candidates = _covering_node_types_for(labels, keys, schema)
        plans.append(_build_plan("node", candidates, labels, keys,
                                 None, None, mode))
    return plans


def _edge_pattern_plans(
    schema: SchemaGraph, ecols: EdgeColumns, mode: ValidationMode
) -> list[_PatternPlan]:
    """One plan per distinct edge (labels, src, tgt, keys) pattern."""
    _, representatives = ecols.pattern_ids()
    plans: list[_PatternPlan] = []
    for rep in representatives.tolist():
        labels = ecols.labels.sets[int(ecols.label_ids[rep])]
        src_labels = ecols.labels.sets[int(ecols.src_label_ids[rep])]
        tgt_labels = ecols.labels.sets[int(ecols.tgt_label_ids[rep])]
        keys = ecols.keys.sets[int(ecols.keyset_ids[rep])]
        candidates = _covering_edge_types_for(labels, keys, schema)
        plans.append(_build_plan("edge", candidates, labels, keys,
                                 src_labels, tgt_labels, mode))
    return plans


def _build_plan(
    kind: str,
    candidates: Sequence[NodeType] | Sequence[EdgeType],
    labels: frozenset[str],
    keys: frozenset[str],
    src_labels: frozenset[str] | None,
    tgt_labels: frozenset[str] | None,
    mode: ValidationMode,
) -> _PatternPlan:
    """Fold a pattern's candidate list into a reusable verdict."""
    if not candidates:
        template = _no_type_violation(
            kind, 0, labels, keys if kind == "node" else None
        )
        return _PatternPlan(
            "no-type", kind, no_type_detail=template.detail
        )
    if mode is not ValidationMode.STRICT:
        return _PatternPlan("accept", kind)
    plans: list[_CandidatePlan] = []
    for type_record in candidates:
        mandatory: list[Violation] = []
        _check_mandatory(keys, type_record, kind, 0, mandatory)
        endpoint: list[Violation] = []
        if (
            isinstance(type_record, EdgeType)
            and src_labels is not None
            and tgt_labels is not None
        ):
            _check_endpoints(
                0, type_record, src_labels, tgt_labels, endpoint
            )
        needs_values = any(
            (spec := type_record.properties.get(key)) is not None
            and spec.datatype not in (DataType.UNKNOWN, DataType.STRING)
            for key in keys
        )
        if not mandatory and not endpoint and not needs_values:
            # Guaranteed acceptance: the reference loop reaches this
            # candidate with zero failures for every row of the pattern
            # (datatype failures are impossible without checkable keys),
            # so no row of the pattern can ever emit a violation.
            return _PatternPlan("accept", kind)
        plans.append(_CandidatePlan(
            type_record,
            mandatory_details=[v.detail for v in mandatory],
            endpoint_details=[v.detail for v in endpoint],
            needs_values=needs_values,
        ))
    return _PatternPlan("check", kind, candidates=plans)
