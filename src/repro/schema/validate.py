"""Validating a property graph against a discovered schema.

The paper motivates constraint inference with "validation processes"; this
module closes that loop.  Validation runs in two modes mirroring PG-Schema:

* LOOSE -- every element must be *covered* by some type (labels a subset of
  a type's labels, properties a subset of its keys); extra types of data are
  reported but mandatory constraints are not enforced.
* STRICT -- additionally enforces MANDATORY properties, datatype
  compatibility of values, and (for edges) endpoint label compatibility.

The validator returns a structured report rather than raising, because
noisy real datasets are expected to violate STRICT schemas (section 4.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.datatypes import infer_value_type, is_value_compatible
from repro.graph.model import Edge, Node, PropertyGraph
from repro.schema.model import (
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)


class ValidationMode(enum.Enum):
    """Conformance strictness."""

    LOOSE = "LOOSE"
    STRICT = "STRICT"


@dataclass(frozen=True, slots=True)
class Violation:
    """One conformance failure."""

    element_kind: str  # "node" | "edge"
    element_id: int
    rule: str
    detail: str


@dataclass
class ValidationReport:
    """Aggregate validation outcome."""

    mode: ValidationMode
    checked: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """True when no violations were recorded."""
        return not self.violations

    @property
    def violation_rate(self) -> float:
        """Violations per checked element."""
        if self.checked == 0:
            return 0.0
        return len(self.violations) / self.checked


def validate_graph(
    graph: PropertyGraph,
    schema: SchemaGraph,
    mode: ValidationMode = ValidationMode.STRICT,
) -> ValidationReport:
    """Check every node and edge of ``graph`` against ``schema``."""
    report = ValidationReport(mode=mode)
    for node in graph.nodes():
        report.checked += 1
        _validate_node(node, schema, mode, report)
    for edge in graph.edges():
        report.checked += 1
        _validate_edge(edge, graph, schema, mode, report)
    return report


def _validate_node(
    node: Node,
    schema: SchemaGraph,
    mode: ValidationMode,
    report: ValidationReport,
) -> None:
    """An element conforms when *some* covering type accepts it.

    When every covering type rejects the node, the violations of the
    least-violating candidate are reported (the most informative failure).
    """
    candidates = _covering_node_types(node, schema)
    if not candidates:
        report.violations.append(Violation(
            "node", node.id, "no-type",
            f"no schema type covers labels={sorted(node.labels)} "
            f"keys={sorted(node.property_keys)}",
        ))
        return
    if mode is not ValidationMode.STRICT:
        return
    best_failures: list[Violation] | None = None
    for node_type in candidates:
        failures = ValidationReport(mode=mode)
        _check_mandatory(node, node_type, "node", failures)
        _check_datatypes(node, node_type, "node", failures)
        if not failures.violations:
            return
        if best_failures is None or len(failures.violations) < len(best_failures):
            best_failures = failures.violations
    report.violations.extend(best_failures or [])


def _validate_edge(
    edge: Edge,
    graph: PropertyGraph,
    schema: SchemaGraph,
    mode: ValidationMode,
    report: ValidationReport,
) -> None:
    """Find a covering edge type accepting the edge, or report failures."""
    candidates = _covering_edge_types(edge, schema)
    if not candidates:
        report.violations.append(Violation(
            "edge", edge.id, "no-type",
            f"no schema type covers labels={sorted(edge.labels)}",
        ))
        return
    if mode is not ValidationMode.STRICT:
        return
    source, target = graph.endpoints(edge.id)
    best_failures: list[Violation] | None = None
    for edge_type in candidates:
        failures = ValidationReport(mode=mode)
        _check_mandatory(edge, edge_type, "edge", failures)
        _check_datatypes(edge, edge_type, "edge", failures)
        _check_endpoints(edge, edge_type, source, target, failures)
        if not failures.violations:
            return
        if best_failures is None or len(failures.violations) < len(best_failures):
            best_failures = failures.violations
    report.violations.extend(best_failures or [])


def _check_endpoints(
    edge: Edge,
    edge_type: EdgeType,
    source: Node,
    target: Node,
    report: ValidationReport,
) -> None:
    """Endpoint labels must intersect the type's endpoint label sets."""
    if (
        edge_type.source_labels
        and source.labels
        and not (source.labels & edge_type.source_labels)
    ):
        report.violations.append(Violation(
            "edge", edge.id, "endpoint",
            f"source labels {sorted(source.labels)} not among "
            f"{sorted(edge_type.source_labels)}",
        ))
    if (
        edge_type.target_labels
        and target.labels
        and not (target.labels & edge_type.target_labels)
    ):
        report.violations.append(Violation(
            "edge", edge.id, "endpoint",
            f"target labels {sorted(target.labels)} not among "
            f"{sorted(edge_type.target_labels)}",
        ))


def _covering_node_types(node: Node, schema: SchemaGraph) -> list[NodeType]:
    """Covering node types, best label match first."""
    covering = [
        node_type
        for node_type in schema.node_types.values()
        if (not node.labels or node.labels <= node_type.labels)
        and node.property_keys <= node_type.property_keys
    ]
    covering.sort(
        key=lambda t: (
            t.labels == node.labels,
            len(node.labels & t.labels),
        ),
        reverse=True,
    )
    return covering


def _covering_edge_types(edge: Edge, schema: SchemaGraph) -> list[EdgeType]:
    """Covering edge types, best label match first."""
    covering = [
        edge_type
        for edge_type in schema.edge_types.values()
        if (not edge.labels or edge.labels <= edge_type.labels)
        and edge.property_keys <= edge_type.property_keys
    ]
    covering.sort(
        key=lambda t: len(edge.labels & t.labels), reverse=True
    )
    return covering


def _check_mandatory(
    element: Node | Edge,
    type_record: NodeType | EdgeType,
    kind: str,
    report: ValidationReport,
) -> None:
    """Every MANDATORY property must be present on the instance."""
    for key, spec in type_record.properties.items():
        if spec.status is PropertyStatus.MANDATORY and key not in element.properties:
            report.violations.append(Violation(
                kind, element.id, "mandatory",
                f"missing mandatory property {key!r} of type "
                f"{type_record.name!r}",
            ))


def _check_datatypes(
    element: Node | Edge,
    type_record: NodeType | EdgeType,
    kind: str,
    report: ValidationReport,
) -> None:
    """Property values must be compatible with the declared datatypes."""
    for key, value in element.properties.items():
        spec = type_record.properties.get(key)
        if spec is None or spec.datatype in (DataType.UNKNOWN, DataType.STRING):
            continue
        if not is_value_compatible(value, spec.datatype):
            report.violations.append(Violation(
                kind, element.id, "datatype",
                f"property {key!r}={value!r} is {infer_value_type(value).value},"
                f" schema declares {spec.datatype.value}",
            ))
