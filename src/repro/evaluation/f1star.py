"""Majority-based F1* score (paper section 5, "Evaluation metrics").

Each discovered type is a cluster of elements.  For evaluation, a cluster
is assigned the majority ground-truth type of its members; an element's
*predicted* type is its cluster's majority.  From this prediction we
compute per-ground-truth-type precision/recall/F1 and report:

* **micro F1*** -- element-weighted, which for majority assignment equals
  clustering purity/accuracy;
* **macro F1*** -- the unweighted mean of per-type F1, which additionally
  punishes small types swallowed by bigger clusters (they lose recall).

The harness reports micro F1* as the headline number, because the paper
judges per-element placements ("the correctness of a node/edge placement is
determined based on whether its actual type matches the majority label(s)
of its cluster"); macro is available alongside as a stricter view.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Hashable, Mapping


@dataclass(frozen=True, slots=True)
class F1Result:
    """Outcome of a majority-based F1 computation."""

    macro_f1: float
    micro_f1: float
    per_type_f1: dict[Hashable, float]
    num_clusters: int
    num_elements: int

    @property
    def headline(self) -> float:
        """The score the figures plot (micro F1*).

        The paper's metric judges each element's *placement* -- correct when
        its true type matches its cluster's majority -- so the headline is
        the element-weighted (micro) score.  Macro F1 is reported alongside
        as a stricter view that punishes small types absorbed by large
        clusters.
        """
        return self.micro_f1


def majority_f1(
    assignment: Mapping[int, Hashable],
    truth: Mapping[int, Hashable],
) -> F1Result:
    """Majority-based F1* for a cluster assignment against ground truth.

    Args:
        assignment: element id -> cluster/type identifier (only ids present
            here are evaluated; elements the system failed to assign count
            against recall of their true type).
        truth: element id -> ground-truth type name (the full universe).
    """
    clusters: dict[Hashable, list[int]] = defaultdict(list)
    for element_id, cluster in assignment.items():
        if element_id in truth:
            clusters[cluster].append(element_id)
    # Majority label per cluster.
    predicted: dict[int, Hashable] = {}
    for members in clusters.values():
        votes = Counter(truth[member] for member in members)
        majority = votes.most_common(1)[0][0]
        for member in members:
            predicted[member] = majority
    # Per-type precision/recall/F1.
    true_positive: Counter[Hashable] = Counter()
    predicted_count: Counter[Hashable] = Counter()
    actual_count: Counter[Hashable] = Counter()
    for element_id, true_type in truth.items():
        actual_count[true_type] += 1
        predicted_type = predicted.get(element_id)
        if predicted_type is None:
            continue
        predicted_count[predicted_type] += 1
        if predicted_type == true_type:
            true_positive[true_type] += 1
    per_type: dict[Hashable, float] = {}
    for type_name in actual_count:
        tp = true_positive[type_name]
        precision = tp / predicted_count[type_name] if predicted_count[type_name] else 0.0
        recall = tp / actual_count[type_name]
        if precision + recall == 0:
            per_type[type_name] = 0.0
        else:
            per_type[type_name] = 2 * precision * recall / (precision + recall)
    macro = sum(per_type.values()) / len(per_type) if per_type else 1.0
    total = len(truth)
    micro = sum(true_positive.values()) / total if total else 1.0
    return F1Result(
        macro_f1=macro,
        micro_f1=micro,
        per_type_f1=per_type,
        num_clusters=len(clusters),
        num_elements=total,
    )


def f1_star(
    assignment: Mapping[int, Hashable],
    truth: Mapping[int, Hashable],
) -> float:
    """Shorthand for the headline (macro) F1* value."""
    return majority_f1(assignment, truth).headline
