"""Evaluation: metrics, statistical tests, and the experiment harness.

* :mod:`repro.evaluation.f1star` -- the paper's majority-based F1* score;
* :mod:`repro.evaluation.nemenyi` -- Friedman test, average ranks, and the
  Nemenyi critical distance (Figure 3);
* :mod:`repro.evaluation.sampling_error` -- per-property datatype sampling
  error (Figure 8);
* :mod:`repro.evaluation.harness` -- runs systems over datasets x noise x
  label-availability grids and collects measurements;
* :mod:`repro.evaluation.reporting` -- text rendering of tables/series.
"""

from repro.evaluation.f1star import F1Result, f1_star, majority_f1
from repro.evaluation.nemenyi import (
    NemenyiResult,
    average_ranks,
    friedman_statistic,
    nemenyi_critical_distance,
    nemenyi_test,
)
from repro.evaluation.sampling_error import (
    datatype_sampling_errors,
    sampling_error,
)
from repro.evaluation.confusion import (
    Confusion,
    confusion_pairs,
    render_confusions,
)
from repro.evaluation.export import (
    measurements_from_csv,
    measurements_from_json,
    measurements_to_csv,
    measurements_to_json,
)
from repro.evaluation.harness import (
    ExperimentGrid,
    Measurement,
    run_grid,
    run_system,
)

__all__ = [
    "Confusion",
    "ExperimentGrid",
    "F1Result",
    "Measurement",
    "NemenyiResult",
    "average_ranks",
    "datatype_sampling_errors",
    "f1_star",
    "friedman_statistic",
    "majority_f1",
    "confusion_pairs",
    "measurements_from_csv",
    "measurements_from_json",
    "measurements_to_csv",
    "measurements_to_json",
    "nemenyi_critical_distance",
    "nemenyi_test",
    "render_confusions",
    "run_grid",
    "run_system",
    "sampling_error",
]
