"""Exporting harness measurements for downstream plotting.

The benchmark harness keeps measurements as dataclass records; these
helpers serialize a run to CSV or JSON so figures can be regenerated with
external tooling without re-running the experiments.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Sequence

from repro.evaluation.harness import Measurement


def measurements_to_json(
    measurements: Sequence[Measurement], path: str | Path
) -> None:
    """Write measurements as a JSON array of objects."""
    records = [asdict(m) for m in measurements]
    Path(path).write_text(
        json.dumps(records, indent=2, sort_keys=True), encoding="utf-8"
    )


def measurements_from_json(path: str | Path) -> list[Measurement]:
    """Load measurements previously written by :func:`measurements_to_json`."""
    records = json.loads(Path(path).read_text(encoding="utf-8"))
    return [Measurement(**record) for record in records]


def measurements_to_csv(
    measurements: Sequence[Measurement], path: str | Path
) -> None:
    """Write measurements as CSV with one row per measurement."""
    column_names = [f.name for f in fields(Measurement)]
    with Path(path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=column_names)
        writer.writeheader()
        for measurement in measurements:
            writer.writerow(asdict(measurement))


def measurements_from_csv(path: str | Path) -> list[Measurement]:
    """Load measurements previously written by :func:`measurements_to_csv`."""
    converters = {
        "dataset": str, "method": str,
        "noise": float, "label_availability": float,
        "skipped": lambda v: v == "True",
        "node_f1": float, "node_f1_macro": float,
        "edge_f1": _optional_float, "edge_f1_macro": _optional_float,
        "seconds": float,
        "num_node_types": int, "num_edge_types": int,
        "shard_failure_events": int, "degraded_shards": int,
        "ingest_errors": int,
    }
    measurements: list[Measurement] = []
    with Path(path).open("r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            kwargs = {
                key: converters[key](value)
                for key, value in row.items()
                if key in converters
            }
            measurements.append(Measurement(**kwargs))
    return measurements


def _optional_float(value: str) -> float | None:
    if value in ("", "None"):
        return None
    return float(value)
