"""Type confusion analysis: which types get mixed, and with what.

The majority-based F1* says *how much* went wrong; this module says
*what*: for every misplaced element it records the (true type, majority
type of its cluster) pair, producing the ranked confusion list that makes
clustering failures diagnosable (e.g. "Segment absorbed into Neuron" on
MB6, or "Email <-> Phone at 0 % labels: both are single-string-property
nodes").
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.util.tables import render_table


@dataclass(frozen=True, slots=True)
class Confusion:
    """Elements of ``true_type`` placed in clusters dominated by
    ``predicted_type``."""

    true_type: Hashable
    predicted_type: Hashable
    count: int


def confusion_pairs(
    assignment: Mapping[int, Hashable],
    truth: Mapping[int, Hashable],
) -> list[Confusion]:
    """Ranked confusion list (largest first).

    Mirrors the majority logic of :func:`repro.evaluation.f1star.majority_f1`:
    each cluster gets its majority true type; every member whose true type
    differs contributes one confusion.
    """
    clusters: dict[Hashable, list[int]] = defaultdict(list)
    for element_id, cluster in assignment.items():
        if element_id in truth:
            clusters[cluster].append(element_id)
    counts: Counter[tuple[Hashable, Hashable]] = Counter()
    for members in clusters.values():
        votes = Counter(truth[m] for m in members)
        majority = votes.most_common(1)[0][0]
        for member in members:
            true_type = truth[member]
            if true_type != majority:
                counts[(true_type, majority)] += 1
    return [
        Confusion(true_type, predicted_type, count)
        for (true_type, predicted_type), count in counts.most_common()
    ]


def render_confusions(
    confusions: list[Confusion], limit: int = 10, title: str | None = None
) -> str:
    """Text table of the top confusions."""
    rows = [
        [str(c.true_type), str(c.predicted_type), str(c.count)]
        for c in confusions[:limit]
    ]
    if not rows:
        rows = [["-", "-", "0"]]
    return render_table(
        ["true type", "placed with", "elements"], rows,
        title or "Top type confusions",
    )
