"""Datatype-inference sampling error (Figure 8).

For a property p, let D_p be all of its values and S_p a sample.  The
paper defines

    error(p) = (1 / |S_p|) * sum_{v in S_p} 1( f(v) != f(D_p) )

i.e. the fraction of sampled values whose *individual* inferred type
disagrees with the type a full scan assigns to the property.  Clean
homogeneous properties score 0; properties whose full-scan type was forced
to STRING by rare dirty values score the fraction of clean values in the
sample, which lands them in the higher error bins.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.datatypes import infer_datatype, infer_value_type
from repro.graph.model import PropertyGraph


def sampling_error(
    values: Sequence[Any],
    fraction: float = 0.1,
    minimum: int = 1000,
    seed: int = 0,
) -> float:
    """The paper's error(p) for one property's values."""
    if not values:
        return 0.0
    full_scan_type = infer_datatype(values)
    target = max(minimum, int(round(fraction * len(values))))
    if target >= len(values):
        sample: Sequence[Any] = values
    else:
        sample = random.Random(seed).sample(list(values), target)
    disagreements = sum(
        1 for value in sample if infer_value_type(value) is not full_scan_type
    )
    return disagreements / len(sample)


def datatype_sampling_errors(
    graph: PropertyGraph,
    fraction: float = 0.1,
    minimum: int = 1000,
    seed: int = 0,
) -> dict[str, float]:
    """error(p) for every node and edge property of a graph.

    Node and edge properties sharing a key are kept separate (prefixed
    ``n:`` / ``e:``), since the schema tracks them separately.
    """
    node_values: dict[str, list[Any]] = {}
    for node in graph.nodes():
        for key, value in node.properties.items():
            node_values.setdefault(key, []).append(value)
    edge_values: dict[str, list[Any]] = {}
    for edge in graph.edges():
        for key, value in edge.properties.items():
            edge_values.setdefault(key, []).append(value)
    errors: dict[str, float] = {}
    for key, values in node_values.items():
        errors[f"n:{key}"] = sampling_error(values, fraction, minimum, seed)
    for key, values in edge_values.items():
        errors[f"e:{key}"] = sampling_error(values, fraction, minimum, seed)
    return errors


def bin_errors(
    errors: dict[str, float],
    bins: Sequence[float] = (0.05, 0.10, 0.20),
) -> dict[str, float]:
    """Histogram of errors into the paper's bins, normalized to fractions.

    Default bins: [0, 0.05), [0.05, 0.10), [0.10, 0.20), [0.20, inf).
    """
    edges = list(bins)
    labels = (
        [f"<{edges[0]:.2f}"]
        + [f"{lo:.2f}-{hi:.2f}" for lo, hi in zip(edges, edges[1:])]
        + [f">={edges[-1]:.2f}"]
    )
    counts = [0] * (len(edges) + 1)
    for error in errors.values():
        slot = len(edges)
        for index, edge in enumerate(edges):
            if error < edge:
                slot = index
                break
        counts[slot] += 1
    total = max(1, len(errors))
    return {label: count / total for label, count in zip(labels, counts)}
