"""Friedman test and Nemenyi post-hoc analysis (Figure 3).

Given a score matrix of shape (test cases x methods), the paper follows
the standard Demsar protocol: rank the methods within every test case
(rank 1 = best), run the Friedman test on the average ranks, and compare
pairs of methods with the Nemenyi critical distance

    CD = q_alpha * sqrt(k (k + 1) / (6 N))

where ``k`` is the number of methods, ``N`` the number of test cases, and
``q_alpha`` the Studentized-range-based critical value.  Two methods are
significantly different when their average ranks differ by at least CD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

# Critical values q_alpha for the Nemenyi test (infinite df), alpha = 0.05,
# indexed by the number of compared methods k (Demsar 2006, Table 5).
_Q_ALPHA_05 = {
    2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850, 7: 2.949,
    8: 3.031, 9: 3.102, 10: 3.164,
}
# alpha = 0.10 row, same source.
_Q_ALPHA_10 = {
    2: 1.645, 3: 2.052, 4: 2.291, 5: 2.460, 6: 2.589, 7: 2.693,
    8: 2.780, 9: 2.855, 10: 2.920,
}


@dataclass(frozen=True, slots=True)
class NemenyiResult:
    """Aggregate outcome of the rank analysis."""

    methods: tuple[str, ...]
    avg_ranks: tuple[float, ...]
    critical_distance: float
    friedman_chi2: float
    friedman_p: float
    num_cases: int

    def significantly_different(self, a: str, b: str) -> bool:
        """True when methods a and b differ by at least the CD."""
        rank_a = self.avg_ranks[self.methods.index(a)]
        rank_b = self.avg_ranks[self.methods.index(b)]
        return abs(rank_a - rank_b) >= self.critical_distance

    def ranking(self) -> list[tuple[str, float]]:
        """Methods sorted best (lowest average rank) first."""
        pairs = sorted(zip(self.methods, self.avg_ranks), key=lambda p: p[1])
        return [(name, float(rank)) for name, rank in pairs]


def average_ranks(scores: np.ndarray) -> np.ndarray:
    """Average rank per method (columns), rank 1 = highest score.

    Ties receive the average of the tied ranks, as in the standard
    Friedman procedure.
    """
    scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
    # rankdata ranks ascending; we want descending scores = rank 1.
    ranks = np.vstack([
        stats.rankdata(-row, method="average") for row in scores
    ])
    return ranks.mean(axis=0)


def friedman_statistic(scores: np.ndarray) -> tuple[float, float]:
    """Friedman chi-squared statistic and p-value over a score matrix."""
    scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
    n, k = scores.shape
    if k < 2:
        raise ValueError("need at least two methods")
    if n < 2:
        raise ValueError("need at least two test cases")
    columns = [scores[:, j] for j in range(k)]
    statistic, p_value = stats.friedmanchisquare(*columns)
    return float(statistic), float(p_value)


def nemenyi_critical_distance(
    num_methods: int, num_cases: int, alpha: float = 0.05
) -> float:
    """The Nemenyi CD for k methods over N cases."""
    table = _Q_ALPHA_05 if alpha <= 0.05 else _Q_ALPHA_10
    if num_methods not in table:
        raise ValueError(
            f"no critical value tabulated for k={num_methods}"
        )
    q = table[num_methods]
    return q * float(
        np.sqrt(num_methods * (num_methods + 1) / (6.0 * num_cases))
    )


def nemenyi_test(
    scores: np.ndarray,
    methods: Sequence[str],
    alpha: float = 0.05,
) -> NemenyiResult:
    """Full rank analysis of a (cases x methods) score matrix."""
    scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
    if scores.shape[1] != len(methods):
        raise ValueError("methods must match the number of score columns")
    ranks = average_ranks(scores)
    chi2, p_value = friedman_statistic(scores)
    cd = nemenyi_critical_distance(len(methods), scores.shape[0], alpha)
    return NemenyiResult(
        methods=tuple(methods),
        avg_ranks=tuple(float(r) for r in ranks),
        critical_distance=cd,
        friedman_chi2=chi2,
        friedman_p=p_value,
        num_cases=scores.shape[0],
    )
