"""Experiment harness: run systems over dataset/noise/label grids.

The benchmark scripts (one per paper table/figure) are thin wrappers over
:func:`run_grid`, which executes every combination of dataset, method,
noise level and label availability and records F1* and wall-clock time.
Methods that cannot handle a configuration (GMMSchema and SchemI below
100 % label availability) are recorded as skipped, mirroring the missing
lines in the paper's figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines import GMMSchema, SchemI, UnsupportedDataError
from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.result import DiscoveryResult
from repro.datasets import GeneratedDataset, get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.graph.io import IngestReport
from repro.graph.store import GraphStore

METHOD_ELSH = "PG-HIVE-ELSH"
METHOD_MINHASH = "PG-HIVE-MinHash"
METHOD_GMM = "GMMSchema"
METHOD_SCHEMI = "SchemI"

ALL_METHODS = (METHOD_ELSH, METHOD_MINHASH, METHOD_GMM, METHOD_SCHEMI)


@dataclass(frozen=True, slots=True)
class Measurement:
    """One (dataset, method, noise, availability) observation.

    ``shard_failure_events`` counts the failure records a fault-tolerant
    parallel run accumulated (0 for clean and sequential runs);
    ``degraded_shards`` counts shards that never contributed a schema, so
    a nonzero value flags a potentially incomplete measurement.
    ``ingest_errors`` carries the rejected-line count of the run's
    :class:`~repro.graph.io.IngestReport` when the caller loaded the
    dataset from disk (0 when ingestion was clean or synthetic).
    """

    dataset: str
    method: str
    noise: float
    label_availability: float
    skipped: bool = False
    node_f1: float = 0.0  # headline (micro) F1*
    edge_f1: float | None = None
    node_f1_macro: float = 0.0
    edge_f1_macro: float | None = None
    seconds: float = 0.0
    num_node_types: int = 0
    num_edge_types: int = 0
    shard_failure_events: int = 0
    degraded_shards: int = 0
    ingest_errors: int = 0


@dataclass
class ExperimentGrid:
    """A sweep specification."""

    datasets: tuple[str, ...]
    methods: tuple[str, ...] = ALL_METHODS
    noise_levels: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4)
    label_availabilities: tuple[float, ...] = (1.0, 0.5, 0.0)
    scale: float = 1.0
    seed: int = 1
    noise_seed: int = 2
    pghive_config: dict[str, object] = field(default_factory=dict)


def make_system(
    method: str, config_overrides: dict[str, object] | None = None
) -> PGHive | GMMSchema | SchemI:
    """Instantiate a discovery system by method name."""
    overrides = dict(config_overrides or {})
    if method == METHOD_ELSH:
        return PGHive(PGHiveConfig(method=LSHMethod.ELSH, **overrides))
    if method == METHOD_MINHASH:
        return PGHive(PGHiveConfig(method=LSHMethod.MINHASH, **overrides))
    if method == METHOD_GMM:
        return GMMSchema()
    if method == METHOD_SCHEMI:
        return SchemI()
    raise ValueError(f"unknown method {method!r}")


def run_system(
    method: str,
    dataset: GeneratedDataset,
    noise: float = 0.0,
    label_availability: float = 1.0,
    config_overrides: dict[str, object] | None = None,
    ingest_report: IngestReport | None = None,
) -> Measurement:
    """Run one system on one (possibly noisy) dataset configuration.

    Pass the :class:`~repro.graph.io.IngestReport` of a lenient disk load
    as ``ingest_report`` to surface its rejected-record count in the
    measurement (synthetic datasets have none).
    """
    system = make_system(method, config_overrides)
    store = GraphStore(dataset.graph)
    ingest_errors = len(ingest_report.errors) if ingest_report else 0
    started = time.perf_counter()
    try:
        result: DiscoveryResult = system.discover(store)
    except UnsupportedDataError:
        return Measurement(
            dataset=dataset.spec.name,
            method=method,
            noise=noise,
            label_availability=label_availability,
            skipped=True,
            ingest_errors=ingest_errors,
        )
    elapsed = time.perf_counter() - started
    node_scores = majority_f1(result.node_assignment, dataset.truth.node_types)
    if result.edge_assignment:
        edge_scores = majority_f1(
            result.edge_assignment, dataset.truth.edge_types
        )
        edge_f1: float | None = edge_scores.headline
        edge_macro: float | None = edge_scores.macro_f1
    else:
        edge_f1 = None
        edge_macro = None
    return Measurement(
        dataset=dataset.spec.name,
        method=method,
        noise=noise,
        label_availability=label_availability,
        node_f1=node_scores.headline,
        edge_f1=edge_f1,
        node_f1_macro=node_scores.macro_f1,
        edge_f1_macro=edge_macro,
        seconds=elapsed,
        num_node_types=len(result.schema.node_types),
        num_edge_types=len(result.schema.edge_types),
        shard_failure_events=len(result.shard_failures),
        degraded_shards=len(result.degraded_shards),
        ingest_errors=ingest_errors,
    )


def run_grid(grid: ExperimentGrid) -> list[Measurement]:
    """Execute a full sweep; clean datasets are generated once per name."""
    measurements: list[Measurement] = []
    for dataset_name in grid.datasets:
        clean = get_dataset(dataset_name, scale=grid.scale, seed=grid.seed)
        for availability in grid.label_availabilities:
            for noise in grid.noise_levels:
                noisy = inject_noise(
                    clean,
                    property_noise=noise,
                    label_availability=availability,
                    seed=grid.noise_seed,
                )
                for method in grid.methods:
                    measurements.append(run_system(
                        method,
                        noisy,
                        noise=noise,
                        label_availability=availability,
                        config_overrides=grid.pghive_config,
                    ))
    return measurements
