"""Rendering measurements into the rows/series the paper reports."""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.evaluation.harness import Measurement
from repro.util.tables import render_table


def f1_series_table(
    measurements: Sequence[Measurement],
    value: str = "node_f1",
    title: str | None = None,
) -> str:
    """Render F1 (or runtime) series: one row per (dataset, method, avail).

    Columns are the noise levels, matching the x-axis of Figure 4/5.
    """
    noise_levels = sorted({m.noise for m in measurements})
    grouped: dict[tuple, dict[float, Measurement]] = defaultdict(dict)
    for m in measurements:
        grouped[(m.dataset, m.method, m.label_availability)][m.noise] = m
    headers = ["dataset", "method", "labels%"] + [
        f"noise={int(n * 100)}%" for n in noise_levels
    ]
    rows = []
    for (dataset, method, avail) in sorted(grouped):
        cells = [dataset, method, f"{int(avail * 100)}"]
        for noise in noise_levels:
            m = grouped[(dataset, method, avail)].get(noise)
            cells.append(_format_cell(m, value))
        rows.append(cells)
    return render_table(headers, rows, title)


def _format_cell(m: Measurement | None, value: str) -> str:
    """One table cell; skipped/absent runs render as '-'."""
    if m is None or m.skipped:
        return "-"
    v = getattr(m, value)
    if v is None:
        return "-"
    if value == "seconds":
        return f"{v:.2f}s"
    return f"{v:.3f}"


def feature_matrix_table() -> str:
    """The qualitative capability matrix of the paper's Table 1."""
    headers = ["", "SchemI", "GMMSchema", "DiscoPG", "PG-HIVE (ours)"]
    rows = [
        ["Label independent", "no", "no", "no", "yes"],
        ["Multilabeled elements", "no", "yes", "yes", "yes"],
        ["Schema elements", "nodes & edges", "nodes only",
         "nodes + assoc. edges", "nodes, edges & constraints"],
        ["Constraints", "no", "no", "no", "yes"],
        ["Incremental", "no", "no", "yes", "yes"],
        ["Automation", "yes", "yes", "yes", "yes"],
    ]
    return render_table(headers, rows, "Table 1: schema discovery approaches")
