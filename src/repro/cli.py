"""Command-line interface: ``pghive`` (or ``python -m repro``).

Subcommands:

* ``discover`` -- run PG-HIVE on a graph (JSONL file or named synthetic
  dataset) and print/write the schema as PG-Schema or XSD;
* ``datasets`` -- list the bundled synthetic datasets with their Table 2
  statistics;
* ``generate`` -- materialize a synthetic dataset to JSONL (optionally
  with noise);
* ``evaluate`` -- run the method grid on one dataset and print F1* rows;
* ``inspect`` -- discover a graph's schema and print the operator-facing
  summary report (per-type statistics, constraints, cardinalities);
* ``verify-store`` -- scrub a slab directory's checksums and report a
  per-file verdict (exit 1 if anything is corrupt);
* ``repair`` -- roll a damaged slab directory back to its newest fully
  verified generation so it can be discovered (and resumed) again;
* ``validate`` -- check a graph against a saved schema (STRICT/LOOSE)
  and print the violation report (exit 1 on STRICT violations);
* ``serve`` -- run the discovery daemon: named incremental sessions
  over HTTP with async batch ingestion, live schema snapshots and bulk
  admission validation (see ``docs/API.md``).
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.faults import InjectedFault
from repro.core.parallel import ShardRecoveryError
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise, list_datasets
from repro.datasets.registry import dataset_spec
from repro.evaluation.harness import ALL_METHODS, run_system
from repro.graph.diskstore import (
    DiskGraphStore,
    SlabIngestError,
    ingest_jsonl_slabs,
    is_slab_directory,
    write_graph_to_slabs,
)
from repro.graph.io import IngestReport, load_graph_jsonl, save_graph_jsonl
from repro.graph.scrub import repair_slab_directory, scrub_slab_directory
from repro.graph.slab import SlabCorruptionError
from repro.graph.stats import compute_statistics
from repro.graph.store import BaseGraphStore, GraphStore

#: Ephemeral slab directories created for ``--store disk`` runs without
#: ``--store-dir``; removed in :func:`main`'s cleanup.
_EPHEMERAL_STORE_DIRS: list[str] = []
from repro.schema.serialize_cypher import serialize_cypher
from repro.schema.serialize_graphql import serialize_graphql
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.schema.serialize_xsd import serialize_xsd
from repro.util.tables import render_table


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "discover": _cmd_discover,
        "datasets": _cmd_datasets,
        "generate": _cmd_generate,
        "evaluate": _cmd_evaluate,
        "inspect": _cmd_inspect,
        "verify-store": _cmd_verify_store,
        "repair": _cmd_repair,
        "validate": _cmd_validate,
        "serve": _cmd_serve,
    }.get(args.command)
    if handler is None:
        parser.print_help()
        return 2
    try:
        return handler(args)
    except ShardRecoveryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (SlabCorruptionError, SlabIngestError) as exc:
        # Detected storage corruption / a failed ingest: one structured
        # line (these exceptions name the file and what to do next)
        # instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (FileNotFoundError, ValueError) as exc:
        # Loader/config/persistence failures (malformed dumps, corrupt
        # checkpoints, bad flag combinations) exit 1 with one clean line
        # instead of a traceback; usage errors keep exiting 2.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except InjectedFault as exc:
        # A driver-side injected fault (fault-injection harness in
        # "raise" mode) is an expected failure: report it structurally
        # (the message already names the site/attempt) so recovery
        # scripts can assert on it.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (KeyError, IndexError) as exc:
        # Registry lookups raise KeyError for unknown dataset names and
        # the embedding table raises IndexError on out-of-range rows;
        # both carry a human-readable message in args[0].
        detail = exc.args[0] if exc.args else exc
        print(f"error: {detail}", file=sys.stderr)
        return 1
    except (RuntimeError, OSError) as exc:
        # Residual library-level failures (e.g. a baseline's model scan
        # finding no candidate, injected ENOSPC): one structured line,
        # never a traceback, per the CLI's exception-surface invariant.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        while _EPHEMERAL_STORE_DIRS:
            shutil.rmtree(_EPHEMERAL_STORE_DIRS.pop(), ignore_errors=True)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pghive",
        description="PG-HIVE: hybrid incremental schema discovery "
                    "for property graphs",
    )
    sub = parser.add_subparsers(dest="command")

    discover = sub.add_parser("discover", help="discover a graph's schema")
    discover.add_argument(
        "input",
        help="path to a JSONL graph, or a bundled dataset name "
             "(see `pghive datasets`)",
    )
    discover.add_argument("--method", choices=["elsh", "minhash"],
                          default="elsh")
    discover.add_argument(
        "--format",
        choices=["pgschema", "xsd", "cypher", "graphql", "json"],
        default="pgschema",
        help="output serialization; 'json' writes the persistable "
             "schema document `pghive validate` and the daemon load",
    )
    discover.add_argument("--mode", choices=["STRICT", "LOOSE"],
                          default="STRICT",
                          help="PG-Schema strictness (pgschema format only)")
    discover.add_argument("--batches", type=int, default=1,
                          help="process incrementally in N batches")
    discover.add_argument("--jobs", type=int, default=1,
                          help="worker processes for incremental discovery "
                               "(with --batches; 1 = sequential)")
    discover.add_argument("--kernels", choices=["vectorized", "reference"],
                          default="vectorized",
                          help="hot-path implementation: batch numpy "
                               "kernels (default) or the pure-python "
                               "reference loops")
    discover.add_argument("--parallel-chunk", default="auto",
                          help="shards per pool task ('auto' or a "
                               "positive integer; with --jobs > 1)")
    discover.add_argument("--shard-timeout", type=float, default=None,
                          help="seconds before a parallel shard task is "
                               "declared hung and re-queued")
    discover.add_argument("--shard-retries", type=int, default=2,
                          help="retries per failing shard before the "
                               "in-process fallback")
    discover.add_argument("--shard-transport",
                          choices=["pickle", "shm", "memmap"],
                          default="shm",
                          help="how parallel shard payloads cross the "
                               "pool boundary: shared-memory segments "
                               "(default; auto-degrades to memmap when "
                               "/dev/shm is unavailable), memmap files, "
                               "or classic pickling")
    discover.add_argument("--shard-memory-limit-mb", type=float,
                          default=None,
                          help="worker RSS budget in MiB; an exceeding "
                               "shard fails structurally (kind=memory) "
                               "before the OOM killer fires and flows "
                               "through retry/fallback")
    discover.add_argument("--faults",
                          help="fault-injection spec for recovery drills, "
                               "e.g. 'shard:2:raise' (see core.faults)")
    discover.add_argument("--scale", type=float, default=1.0,
                          help="scale factor for bundled datasets")
    discover.add_argument("--seed", type=int, default=7)
    discover.add_argument("--output", help="write schema to a file")
    discover.add_argument("--profiles", action="store_true",
                          help="infer value profiles (enums, ranges)")
    discover.add_argument("--bounds", action="store_true",
                          help="compute exact cardinality bounds")
    discover.add_argument("--memoize", action="store_true",
                          help="enable the incremental memoization fast "
                               "path (with --batches)")
    discover.add_argument("--on-error", choices=["raise", "skip", "collect"],
                          default="raise",
                          help="policy for malformed input records: stop "
                               "at the first (raise), drop silently "
                               "(skip), or drop and report each rejected "
                               "line (collect)")
    discover.add_argument("--checkpoint-dir",
                          help="journal run state here: the running "
                               "schema every --checkpoint-every batches "
                               "(sequential runs) or one entry per "
                               "completed shard (--jobs > 1)")
    discover.add_argument("--checkpoint-every", type=int, default=1,
                          help="batches between checkpoints")
    discover.add_argument("--resume", action="store_true",
                          help="continue from the checkpoint in "
                               "--checkpoint-dir if one exists")
    discover.add_argument("--strict-recovery", action="store_true",
                          help="fail the run if any parallel shard cannot "
                               "be recovered (default: degrade and report)")
    discover.add_argument("--store", choices=["memory", "disk"],
                          default="memory",
                          help="graph storage backend: in-memory objects "
                               "(default) or out-of-core memory-mapped "
                               "slab files whose schema is byte-identical "
                               "while the driver stays small")
    discover.add_argument("--store-dir",
                          help="slab directory for --store disk (also "
                               "accepted directly as the input argument); "
                               "default: an ephemeral temp directory "
                               "removed when the run finishes")
    discover.add_argument("--slab-bytes", type=int, default=4 << 20,
                          help="slab ingest commit granularity in bytes "
                               "(--store disk; default 4 MiB, min 4096)")
    discover.add_argument("--corrupt-slab-policy",
                          choices=["raise", "skip"], default="raise",
                          help="what to do when the disk backend detects "
                               "slab corruption mid-run: fail immediately "
                               "(default) or quarantine the damaged "
                               "shards and finish degraded with the "
                               "damage enumerated")

    datasets = sub.add_parser("datasets", help="list bundled datasets")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.add_argument("--seed", type=int, default=0)

    generate = sub.add_parser("generate", help="materialize a dataset")
    generate.add_argument("name")
    generate.add_argument("output", help="target JSONL path")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--noise", type=float, default=0.0,
                          help="property removal probability")
    generate.add_argument("--label-availability", type=float, default=1.0)

    evaluate = sub.add_parser("evaluate", help="score methods on a dataset")
    evaluate.add_argument("name")
    evaluate.add_argument("--noise", type=float, default=0.0)
    evaluate.add_argument("--label-availability", type=float, default=1.0)
    evaluate.add_argument("--scale", type=float, default=1.0)
    evaluate.add_argument("--seed", type=int, default=1)

    inspect = sub.add_parser(
        "inspect", help="discover and summarize a graph's schema"
    )
    inspect.add_argument("input", help="JSONL path or bundled dataset name")
    inspect.add_argument("--scale", type=float, default=1.0)
    inspect.add_argument("--seed", type=int, default=7)
    inspect.add_argument("--max-types", type=int, default=40)
    inspect.add_argument("--hierarchy", action="store_true",
                         help="also print the inferred subtype hierarchy")

    verify_store = sub.add_parser(
        "verify-store",
        help="scrub a slab directory: verify every checksum and report "
             "a per-file verdict (exit 1 on corruption)",
    )
    verify_store.add_argument("directory", help="slab directory to scrub")

    repair = sub.add_parser(
        "repair",
        help="roll a damaged slab directory back to its newest fully "
             "verified generation (exit 1 if unrepairable)",
    )
    repair.add_argument("directory", help="slab directory to repair")

    validate = sub.add_parser(
        "validate",
        help="check a graph against a saved schema and report violations "
             "(exit 1 on STRICT violations)",
    )
    validate.add_argument(
        "input",
        help="graph to check: JSONL path, slab directory (--store disk) "
             "or bundled dataset name",
    )
    validate.add_argument(
        "schema", help="schema JSON written by `pghive discover --format "
                       "json` or repro.schema.persist.save_schema"
    )
    validate.add_argument("--mode", choices=["STRICT", "LOOSE"],
                          default="STRICT",
                          help="PG-Schema conformance strictness")
    validate.add_argument("--engine", choices=["columns", "reference"],
                          default="columns",
                          help="bulk columnar checker (default) or the "
                               "per-element reference loop; reports are "
                               "identical")
    validate.add_argument("--max-violations", type=int, default=20,
                          help="print at most this many violations")
    validate.add_argument("--scale", type=float, default=1.0,
                          help="scale factor for bundled datasets")
    validate.add_argument("--seed", type=int, default=7)
    validate.add_argument("--store", choices=["memory", "disk"],
                          default="memory",
                          help="graph storage backend of the input")

    serve = sub.add_parser(
        "serve",
        help="run the discovery daemon (named incremental sessions, "
             "async ingestion, live schemas, bulk validation over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (loopback by default; the "
                            "daemon has no authentication layer)")
    serve.add_argument("--port", type=int, default=8850,
                       help="TCP port; 0 binds an ephemeral port and "
                            "prints it")
    serve.add_argument("--workers", type=int, default=2,
                       help="shared ingestion worker threads; batches of "
                            "one session always process in POST order")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="max queued-or-running batches per session "
                            "before posts get 503")
    serve.add_argument("--method", choices=["elsh", "minhash"],
                       default="elsh")
    serve.add_argument("--kernels", choices=["vectorized", "reference"],
                       default="vectorized")
    serve.add_argument("--profiles", action="store_true",
                       help="infer value profiles (enums, ranges)")
    serve.add_argument("--checkpoint-dir",
                       help="journal every session's running schema here "
                            "(under sessions/<name>/) and restore all "
                            "sessions on daemon start")
    serve.add_argument("--checkpoint-every", type=int, default=1,
                       help="batches between session checkpoints")
    serve.add_argument("--seed", type=int, default=7)
    return parser


def _store_directory(args: argparse.Namespace) -> str:
    """Resolve (or create) the slab directory for a ``--store disk`` run."""
    store_dir: str | None = getattr(args, "store_dir", None)
    if store_dir is not None:
        return store_dir
    ephemeral = tempfile.mkdtemp(prefix="pghive-store-")
    _EPHEMERAL_STORE_DIRS.append(ephemeral)
    return ephemeral


def _load_input(args: argparse.Namespace) -> BaseGraphStore:
    """Resolve the discover input: file path or bundled dataset name.

    With ``--store disk`` a JSONL input streams straight into slab files
    in bounded chunks (the graph never materializes in driver memory), a
    slab directory opens as-is, and a bundled dataset is generated and
    written through to slabs.
    """
    path = Path(args.input)
    backend = getattr(args, "store", "memory")
    on_error = getattr(args, "on_error", "raise")
    if path.is_dir() and is_slab_directory(path):
        if backend != "disk":
            print(
                f"error: {args.input!r} is a slab directory; "
                f"pass --store disk to discover it",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return DiskGraphStore(path)
    if path.exists():
        report = IngestReport() if on_error != "raise" else None
        if backend == "disk":
            store = ingest_jsonl_slabs(
                path,
                _store_directory(args),
                slab_bytes=getattr(args, "slab_bytes", 4 << 20),
                on_error=on_error,
                report=report,
            )
            if report is not None and report.errors:
                print(report.describe(), file=sys.stderr)
            return store
        graph = load_graph_jsonl(path, on_error=on_error, report=report)
        if report is not None and report.errors:
            print(report.describe(), file=sys.stderr)
        return GraphStore(graph)
    try:
        dataset = get_dataset(args.input, scale=args.scale, seed=args.seed)
    except KeyError:
        print(
            f"error: {args.input!r} is neither a file nor a known dataset",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if backend == "disk":
        return write_graph_to_slabs(dataset.graph, _store_directory(args))
    return GraphStore(dataset.graph)


def _cmd_discover(args: argparse.Namespace) -> int:
    store = _load_input(args)
    config = PGHiveConfig(
        method=LSHMethod(args.method),
        seed=args.seed,
        infer_value_profiles=args.profiles,
        exact_cardinality_bounds=args.bounds,
        memoize_patterns=args.memoize,
        kernels=args.kernels,
        jobs=args.jobs,
        parallel_chunk=args.parallel_chunk,
        shard_timeout=args.shard_timeout,
        shard_retries=args.shard_retries,
        shard_transport=args.shard_transport,
        shard_memory_limit_mb=args.shard_memory_limit_mb,
        faults=args.faults,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        strict_recovery=args.strict_recovery,
        store=args.store,
        store_dir=args.store_dir,
        slab_bytes=args.slab_bytes,
        corrupt_slab_policy=args.corrupt_slab_policy,
    )
    pipeline = PGHive(config)
    if args.batches > 1:
        result = pipeline.discover_incremental(
            store, args.batches, resume=args.resume
        )
    else:
        result = pipeline.discover(store)
    if args.format == "xsd":
        rendered = serialize_xsd(result.schema)
    elif args.format == "cypher":
        rendered = serialize_cypher(result.schema)
    elif args.format == "graphql":
        rendered = serialize_graphql(result.schema)
    elif args.format == "json":
        import json as _json

        from repro.schema.persist import schema_to_dict

        rendered = _json.dumps(
            schema_to_dict(result.schema, include_members=False), indent=2
        )
    else:
        rendered = serialize_pg_schema(result.schema, args.mode)
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
        print(f"schema written to {args.output}")
    else:
        print(rendered)
    print(
        f"\n-- {result.num_node_types} node types, "
        f"{result.num_edge_types} edge types in "
        f"{result.total_seconds:.2f}s",
        file=sys.stderr,
    )
    stage_seconds = result.aggregate_stage_seconds()
    if stage_seconds:
        breakdown = " ".join(
            f"{name}={seconds:.3f}s"
            for name, seconds in sorted(stage_seconds.items())
        )
        label = "stages (worker compute)" if args.jobs > 1 else "stages"
        print(f"-- {label}: {breakdown}", file=sys.stderr)
    if result.parallel_fallback and args.jobs > 1:
        print(
            f"-- note: --jobs {args.jobs} ignored "
            f"({result.parallel_fallback}); ran sequentially",
            file=sys.stderr,
        )
    if result.resumed_from:
        print(
            f"-- resumed from checkpoint at batch {result.resumed_from}",
            file=sys.stderr,
        )
    if result.resumed_shards:
        print(
            f"-- resumed {len(result.resumed_shards)} shard(s) from the "
            f"parallel journal",
            file=sys.stderr,
        )
    if result.shard_failures:
        print(
            f"-- recovered from {len(result.shard_failures)} shard "
            f"failure(s):",
            file=sys.stderr,
        )
        for failure in result.shard_failures:
            print(f"--   {failure.describe()}", file=sys.stderr)
        if result.degraded_shards:
            print(
                f"-- WARNING: shards {result.degraded_shards} were "
                f"dropped; the schema may be incomplete",
                file=sys.stderr,
            )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in list_datasets():
        dataset = get_dataset(name, scale=args.scale, seed=args.seed)
        stats = compute_statistics(
            dataset.graph,
            dataset.truth.node_types,
            dataset.truth.edge_types,
        )
        row = stats.as_row()
        row.append("R" if dataset_spec(name).real else "S")
        rows.append(row)
    headers = [
        "Dataset", "Nodes", "Edges", "NodeT", "EdgeT",
        "NodeL", "EdgeL", "NodeP", "EdgeP", "R/S",
    ]
    print(render_table(headers, rows, "Bundled datasets (Table 2 shape)"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = get_dataset(args.name, scale=args.scale, seed=args.seed)
    if args.noise > 0 or args.label_availability < 1.0:
        dataset = inject_noise(
            dataset,
            property_noise=args.noise,
            label_availability=args.label_availability,
            seed=args.seed + 1,
        )
    save_graph_jsonl(dataset.graph, args.output)
    print(
        f"wrote {dataset.graph.num_nodes} nodes / "
        f"{dataset.graph.num_edges} edges to {args.output}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    clean = get_dataset(args.name, scale=args.scale, seed=args.seed)
    noisy = inject_noise(
        clean,
        property_noise=args.noise,
        label_availability=args.label_availability,
        seed=args.seed + 1,
    )
    rows = []
    for method in ALL_METHODS:
        m = run_system(
            method, noisy,
            noise=args.noise,
            label_availability=args.label_availability,
        )
        if m.skipped:
            rows.append([method, "-", "-", "-", "-"])
        else:
            rows.append([
                method,
                f"{m.node_f1:.3f}",
                "-" if m.edge_f1 is None else f"{m.edge_f1:.3f}",
                str(m.num_node_types),
                f"{m.seconds:.2f}s",
            ])
    headers = ["method", "node F1*", "edge F1*", "#node types", "time"]
    print(render_table(
        headers, rows,
        f"{args.name} @ noise={args.noise} labels={args.label_availability}",
    ))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.schema.report import render_schema_report

    store = _load_input(args)
    result = PGHive(PGHiveConfig(seed=args.seed)).discover(store)
    print(render_schema_report(result.schema, max_types=args.max_types))
    if args.hierarchy:
        from repro.schema.hierarchy import infer_hierarchy, render_hierarchy

        relations = infer_hierarchy(result.schema)
        print("\nInferred type hierarchy:")
        print(render_hierarchy(result.schema, relations))
    return 0


def _cmd_verify_store(args: argparse.Namespace) -> int:
    report = scrub_slab_directory(args.directory)
    print(report.describe())
    return 0 if report.clean else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    report = repair_slab_directory(args.directory)
    print(report.describe())
    return 0 if report.repaired else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.schema.persist import load_schema
    from repro.schema.validate import (
        ValidationMode,
        validate_batch,
        validate_elements,
    )

    store = _load_input(args)
    schema = load_schema(args.schema)
    mode = ValidationMode(args.mode)
    nodes = list(store.scan_nodes())
    edges = list(store.scan_edges())
    endpoint_labels = {node.id: node.labels for node in nodes}
    if args.engine == "reference":
        report = validate_elements(
            nodes, edges, schema, mode, endpoint_labels
        )
    else:
        report = validate_batch(nodes, edges, schema, mode, endpoint_labels)
    verdict = "conforms" if report.is_valid else "violates"
    print(
        f"{store.name}: {verdict} {schema.name!r} in {mode.value} mode "
        f"({report.checked} elements checked, "
        f"{report.violating_elements} violating, "
        f"{report.violation_count} violations, "
        f"rate {report.violation_rate:.3f})"
    )
    shown = report.violations[: max(args.max_violations, 0)]
    for violation in shown:
        print(
            f"  {violation.element_kind} {violation.element_id} "
            f"[{violation.rule}] {violation.detail}"
        )
    remaining = report.violation_count - len(shown)
    if remaining > 0:
        print(f"  ... and {remaining} more (see --max-violations)")
    if mode is ValidationMode.STRICT and not report.is_valid:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import SchemaServer

    config = PGHiveConfig(
        method=LSHMethod(args.method),
        seed=args.seed,
        kernels=args.kernels,
        infer_value_profiles=args.profiles,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        server_host=args.host,
        server_port=args.port,
        server_workers=args.workers,
        server_queue_depth=args.queue_depth,
    )
    server = SchemaServer(config)
    print(
        f"pghive serve: listening on http://{server.host}:{server.port} "
        f"({config.server_workers} workers, queue depth "
        f"{config.server_queue_depth})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        print("pghive serve: stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
