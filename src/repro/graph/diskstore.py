"""Out-of-core graph store: memory-mapped column slabs on disk.

:class:`DiskGraphStore` implements the full
:class:`~repro.graph.store.BaseGraphStore` contract over the slab files
of :mod:`repro.graph.slab`, so every discovery mode -- sequential,
incremental, parallel, memoized -- runs against graphs that never fit
in RAM.  The driver's resident set stays O(id arrays + merged schema):
node/edge *objects* are materialized only inside whichever process
consumes a shard, property payloads are unpickled row-by-row straight
out of the mapped heap, and the partition that backs ``plan_shards`` is
spilled to a scratch file whose byte ranges workers re-map read-only
(the ``"file"`` flavour of :class:`~repro.core.transport.SlabRef` --
the zero-copy transport extended all the way back to ingest).

Byte-identity with the in-memory backend is the design invariant, not
an aspiration: partitioning replays the exact
``random.Random(seed).shuffle`` over the same insertion-ordered id
list, edge bucketing is the same stable-argsort math over the mapped
source column, ``sample_nodes`` exploits the fact that
``random.Random(seed).sample`` chooses *positions* as a function of
population length only, and the columnize fast path remaps the store's
global interner ids to the per-batch dense ids the reference loops
would have assigned (``tests/test_diskstore.py`` property-tests all of
it across worker counts, chunkings and transports).
"""

from __future__ import annotations

import os
import random
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy

from repro.core.columns import (
    EdgeColumns,
    NodeColumns,
    edge_columns_from_arrays,
    node_columns_from_arrays,
)
from repro.core.transport import ArrayRef, Slab, SlabRef
from repro.graph.io import IngestReport, stream_graph_jsonl
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.slab import (
    DEFAULT_SLAB_BYTES,
    SlabCorruptionError,
    SlabReader,
    SlabWriter,
    read_manifest,
)
from repro.graph.store import BaseGraphStore, GraphBatch, ShardPlan

#: Rows per ingest chunk handed to the slab writer in one call.
INGEST_CHUNK_ROWS = 2048

_SCRATCH_DIR = "scratch"


class _SpilledPartition:
    """A partition spilled to one scratch file, attached lazily per process.

    Holds only the :class:`SlabRef` plus per-shard :class:`ArrayRef`
    byte ranges; the mmap attachment happens on first use in whichever
    process reads a shard, so fork-inherited copies in pool workers map
    the file themselves instead of inheriting a parent attachment.
    """

    __slots__ = ("ref", "node_refs", "edge_refs", "_slab")

    def __init__(
        self,
        ref: SlabRef,
        node_refs: list[ArrayRef],
        edge_refs: list[ArrayRef],
    ) -> None:
        self.ref = ref
        self.node_refs = node_refs
        self.edge_refs = edge_refs
        self._slab: Slab | None = None

    def _attached(self) -> Slab:
        if self._slab is None:
            self._slab = Slab(self.ref)
        return self._slab

    def node_array(self, shard: int) -> numpy.ndarray:
        """Shard's node ids (read-only view into the mapped spill file)."""
        return self._attached().array(self.node_refs[shard])

    def edge_array(self, shard: int) -> numpy.ndarray:
        """Shard's edge ids (read-only view into the mapped spill file)."""
        return self._attached().array(self.edge_refs[shard])

    def close(self) -> None:
        """Detach this process's mapping (the file belongs to the store)."""
        if self._slab is not None:
            self._slab.close()
            self._slab = None


class SlabIngestError(RuntimeError):
    """A streaming ingest died mid-write, but the directory is resumable.

    Raised in place of the raw ``OSError`` (ENOSPC, I/O error, ...) so
    callers learn the one fact that matters: the slab directory is
    intact at its last committed manifest generation, and re-running the
    ingest with ``resume=True`` continues from there.

    Attributes:
        directory: The slab directory left at its last commit.
        source: The ingest source key (the input file path).
        committed_line: Last fully committed line of that source.
    """

    def __init__(
        self,
        message: str,
        *,
        directory: str | Path,
        source: str,
        committed_line: int,
    ) -> None:
        super().__init__(message)
        self.directory = str(directory)
        self.source = source
        self.committed_line = committed_line


class DiskGraphStore(BaseGraphStore):
    """Store contract implementation over an on-disk slab directory.

    ``verify=True`` (the default) runs the slab reader's open-time
    checksum pass; pass ``verify=False`` only when the directory was
    just verified out of band (e.g. straight after a scrub).
    """

    def __init__(self, directory: str | Path, verify: bool = True) -> None:
        self._directory = Path(directory)
        self._verify = verify
        self._reader = SlabReader(self._directory, verify=verify)
        self._partition_cache: tuple[
            tuple[int, int, bool], _SpilledPartition
        ] | None = None
        self._node_sorted: tuple[numpy.ndarray, numpy.ndarray] | None = None
        self._edge_sorted: tuple[numpy.ndarray, numpy.ndarray] | None = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Name of the stored graph (from the slab manifest)."""
        return self._reader.name

    @property
    def directory(self) -> Path:
        """The slab directory backing this store."""
        return self._directory

    @property
    def reader(self) -> SlabReader:
        """The underlying slab reader (mapped columns)."""
        return self._reader

    def journal_fingerprint(self) -> dict[str, str] | None:
        """Durable slab state, recorded in checkpoint/journal context."""
        return {"slab": self._reader.fingerprint}

    def refresh(self) -> None:
        """Re-open at the latest commit (picks up appended segments)."""
        self.close()
        self._reader = SlabReader(self._directory, verify=self._verify)

    def close(self) -> None:
        """Release every mapping held by this process."""
        if self._partition_cache is not None:
            self._partition_cache[1].close()
            self._partition_cache = None
        self._node_sorted = None
        self._edge_sorted = None
        self._reader.close()

    def __enter__(self) -> "DiskGraphStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan_nodes(self) -> Iterator[Node]:
        """Stream all nodes in insertion order."""
        return self._reader.iter_nodes()

    def scan_edges(self) -> Iterator[Edge]:
        """Stream all edges in insertion order."""
        return self._reader.iter_edges()

    def count_nodes(self) -> int:
        """Total number of nodes."""
        return self._reader.node_count

    def count_edges(self) -> int:
        """Total number of edges."""
        return self._reader.edge_count

    # ------------------------------------------------------------------
    # Point lookups (id-sorted binary search over the mapped id column)
    # ------------------------------------------------------------------
    def _node_index(self) -> tuple[numpy.ndarray, numpy.ndarray]:
        if self._node_sorted is None:
            ids = self._reader.node_ids
            order = numpy.argsort(ids, kind="stable")
            self._node_sorted = (ids[order], order)
        return self._node_sorted

    def _edge_index(self) -> tuple[numpy.ndarray, numpy.ndarray]:
        if self._edge_sorted is None:
            ids = self._reader.edge_ids
            order = numpy.argsort(ids, kind="stable")
            self._edge_sorted = (ids[order], order)
        return self._edge_sorted

    @staticmethod
    def _rows_for(
        ids: numpy.ndarray,
        index: tuple[numpy.ndarray, numpy.ndarray],
    ) -> numpy.ndarray:
        """Rows of the given element ids; ``KeyError`` on any unknown id."""
        sorted_ids, order = index
        ids = numpy.asarray(ids, dtype=numpy.int64)
        if ids.size == 0:
            return numpy.empty(0, dtype=numpy.int64)
        positions = numpy.searchsorted(sorted_ids, ids)
        in_range = positions < sorted_ids.size
        if not in_range.all():
            raise KeyError(int(ids[numpy.flatnonzero(~in_range)[0]]))
        matched = sorted_ids[positions] == ids
        if not matched.all():
            raise KeyError(int(ids[numpy.flatnonzero(~matched)[0]]))
        result: numpy.ndarray = order[positions]
        return result

    def _node_rows(self, ids: numpy.ndarray) -> numpy.ndarray:
        return self._rows_for(ids, self._node_index())

    def _edge_rows(self, ids: numpy.ndarray) -> numpy.ndarray:
        return self._rows_for(ids, self._edge_index())

    def node(self, node_id: int) -> Node:
        """Point lookup of a node (``KeyError`` when absent)."""
        row = self._node_rows(numpy.asarray([node_id], dtype=numpy.int64))
        return self._reader.node_at(int(row[0]))

    def edge(self, edge_id: int) -> Edge:
        """Point lookup of an edge (``KeyError`` when absent)."""
        row = self._edge_rows(numpy.asarray([edge_id], dtype=numpy.int64))
        return self._reader.edge_at(int(row[0]))

    # ------------------------------------------------------------------
    # Sharded scans
    # ------------------------------------------------------------------
    def plan_shards(
        self,
        num_shards: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> list[ShardPlan]:
        """Plans for materializing each batch of a sharded scan on demand.

        Warms the spilled partition, so forked workers inherit only the
        tiny :class:`SlabRef` + byte ranges and map the scratch file
        themselves.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._partition(num_shards, seed, shuffle)
        return [
            ShardPlan(index, num_shards, seed, shuffle)
            for index in range(num_shards)
        ]

    def materialize_shard(self, plan: ShardPlan) -> GraphBatch:
        """Build the single batch described by ``plan``."""
        if not 0 <= plan.index < plan.num_shards:
            raise ValueError(
                f"shard index {plan.index} out of range for "
                f"{plan.num_shards} shards"
            )
        partition = self._partition(plan.num_shards, plan.seed, plan.shuffle)
        return self.materialize_index_shard(
            plan.index,
            partition.node_array(plan.index),
            partition.edge_array(plan.index),
        )

    def partition_tables(
        self, num_shards: int, seed: int = 0, shuffle: bool = True
    ) -> tuple[list[numpy.ndarray], numpy.ndarray, numpy.ndarray]:
        """Parent-side half of the parallel partition pass.

        Replays :meth:`GraphStore.partition_tables` exactly -- same
        ``random.Random(seed).shuffle`` over the same insertion-ordered
        id list (here the mapped id column), same stable argsort -- so
        both backends assign every element to the same shard.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        node_ids = self._reader.node_ids.tolist()
        if shuffle:
            random.Random(seed).shuffle(node_ids)
        shuffled = numpy.asarray(node_ids, dtype=numpy.int64)
        if shuffled.size == 0:
            empty = numpy.empty(0, dtype=numpy.int64)
            return [empty.copy() for _ in range(num_shards)], empty, empty
        order = numpy.argsort(shuffled, kind="stable")
        sorted_ids = shuffled[order]
        shard_of_sorted = (order % num_shards).astype(numpy.int64)
        nodes_by_shard = [
            shuffled[shard::num_shards].copy() for shard in range(num_shards)
        ]
        return nodes_by_shard, sorted_ids, shard_of_sorted

    def bucket_edge_range(
        self,
        start: int,
        stop: int,
        sorted_ids: numpy.ndarray,
        shard_of_sorted: numpy.ndarray,
        num_shards: int,
    ) -> list[numpy.ndarray]:
        """Bucket the edges at positions ``[start, stop)`` by shard.

        Unlike the in-memory backend there is no object loop at all:
        the slice of the mapped source column feeds the same
        ``searchsorted`` + stable-argsort math directly.
        """
        count = max(stop - start, 0)
        total = self._reader.edge_count
        consumed = max(min(stop, total) - start, 0)
        if consumed != count:
            raise ValueError(
                f"edge range [{start}, {stop}) exceeds the graph's "
                f"{start + consumed} edges"
            )
        edge_ids = self._reader.edge_ids[start:stop]
        sources = self._reader.edge_sources[start:stop]
        lookup = numpy.searchsorted(sorted_ids, sources)
        shards = shard_of_sorted[lookup]
        order = numpy.argsort(shards, kind="stable")
        sorted_shards = shards[order]
        sorted_edge_ids = edge_ids[order]
        bounds = numpy.searchsorted(
            sorted_shards, numpy.arange(num_shards + 1)
        )
        return [
            sorted_edge_ids[bounds[shard] : bounds[shard + 1]].copy()
            for shard in range(num_shards)
        ]

    def materialize_index_shard(
        self,
        index: int,
        node_ids: numpy.ndarray,
        edge_ids: numpy.ndarray,
    ) -> GraphBatch:
        """Build a batch from explicit id arrays (parallel plan mode).

        Elements are materialized row-by-row from the mapped columns in
        id-array order; the endpoint-label map replays the identical
        first-seen-in-edge-order walk, reading label sets straight from
        the label column without materializing endpoint nodes.
        """
        reader = self._reader
        node_rows = self._node_rows(node_ids)
        nodes = [reader.node_at(int(row)) for row in node_rows.tolist()]
        edge_rows = self._edge_rows(edge_ids)
        edges = [reader.edge_at(int(row)) for row in edge_rows.tolist()]
        endpoint_labels: dict[int, frozenset[str]] = {}
        if edges:
            label_column = reader.node_label_ids
            label_sets = reader.node_label_sets
            endpoint_ids = numpy.empty(len(edges) * 2, dtype=numpy.int64)
            for position, edge in enumerate(edges):
                endpoint_ids[position * 2] = edge.source
                endpoint_ids[position * 2 + 1] = edge.target
            endpoint_rows = self._node_rows(endpoint_ids)
            for position in range(endpoint_ids.size):
                nid = int(endpoint_ids[position])
                if nid not in endpoint_labels:
                    endpoint_labels[nid] = label_sets[
                        int(label_column[int(endpoint_rows[position])])
                    ]
        return GraphBatch(index, nodes, edges, endpoint_labels)

    def install_partition(
        self,
        num_shards: int,
        seed: int,
        shuffle: bool,
        nodes_by_shard_ids: Sequence[numpy.ndarray],
        edges_by_shard_ids: Sequence[numpy.ndarray],
    ) -> None:
        """Install an externally computed partition (spilled to disk)."""
        self._set_partition(
            (num_shards, seed, shuffle),
            self._spill_partition(
                num_shards, seed, shuffle,
                nodes_by_shard_ids, edges_by_shard_ids,
            ),
        )

    def _set_partition(
        self, key: tuple[int, int, bool], partition: _SpilledPartition
    ) -> None:
        if self._partition_cache is not None:
            self._partition_cache[1].close()
        self._partition_cache = (key, partition)

    def _partition(
        self, num_shards: int, seed: int, shuffle: bool
    ) -> _SpilledPartition:
        """Assign nodes and edges to shards (cached for the last plan)."""
        if num_shards < 1:
            raise ValueError("num_batches must be >= 1")
        key = (num_shards, seed, shuffle)
        cached = self._partition_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        nodes_by_shard, sorted_ids, shard_of_sorted = self.partition_tables(
            num_shards, seed, shuffle
        )
        edges_by_shard = self.bucket_edge_range(
            0, self._reader.edge_count, sorted_ids, shard_of_sorted,
            num_shards,
        )
        partition = self._spill_partition(
            num_shards, seed, shuffle, nodes_by_shard, edges_by_shard
        )
        self._set_partition(key, partition)
        return partition

    def _spill_partition(
        self,
        num_shards: int,
        seed: int,
        shuffle: bool,
        nodes_by_shard_ids: Sequence[numpy.ndarray],
        edges_by_shard_ids: Sequence[numpy.ndarray],
    ) -> _SpilledPartition:
        """Write per-shard id arrays to one scratch file, keep byte ranges.

        The file is written to a temp name and atomically renamed, so a
        partition file is always complete; workers that mapped an older
        file for the same key keep reading their (replaced) inode.
        """
        scratch = self._directory / _SCRATCH_DIR
        scratch.mkdir(parents=True, exist_ok=True)
        file_name = f"partition-{num_shards}-{seed}-{int(shuffle)}.bin"
        refs: list[ArrayRef] = []
        offset = 0
        tmp_path = scratch / (file_name + ".tmp")
        with tmp_path.open("wb") as handle:
            for array in (*nodes_by_shard_ids, *edges_by_shard_ids):
                contiguous = numpy.ascontiguousarray(
                    array, dtype=numpy.int64
                )
                refs.append(
                    ArrayRef(offset, int(contiguous.size), contiguous.dtype.str)
                )
                raw = contiguous.tobytes()
                handle.write(raw)
                offset += len(raw)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, scratch / file_name)
        ref = SlabRef("file", file_name, offset, str(scratch))
        return _SpilledPartition(
            ref, refs[:num_shards], refs[num_shards:]
        )

    # ------------------------------------------------------------------
    # Column fast path (no object materialization at all)
    # ------------------------------------------------------------------
    def columnize_shard(
        self, plan: ShardPlan
    ) -> tuple[NodeColumns, EdgeColumns]:
        """Columnize one shard straight from the mapped columns.

        Byte-identical to columnizing the materialized batch: global
        interner ids are remapped to per-batch first-appearance dense
        ids by the from-arrays constructors.  Used by pool workers when
        a shard's schema is all that is needed (no per-value statistics
        and no absorption snapshot), skipping Node/Edge object
        construction and the property heap entirely.
        """
        partition = self._partition(plan.num_shards, plan.seed, plan.shuffle)
        reader = self._reader
        node_ids = partition.node_array(plan.index)
        node_rows = self._node_rows(node_ids)
        # Key orders must come from the representative *row's* own
        # property dict (two rows with one key set may order their dicts
        # differently); one heap unpickle per distinct key set.
        node_cols = node_columns_from_arrays(
            node_ids,
            reader.node_label_ids[node_rows],
            reader.node_keyset_ids[node_rows],
            reader.node_label_sets,
            lambda position: tuple(
                reader.node_properties_at(int(node_rows[position]))
            ),
        )
        edge_ids = partition.edge_array(plan.index)
        edge_rows = self._edge_rows(edge_ids)
        sources = reader.edge_sources[edge_rows]
        targets = reader.edge_targets[edge_rows]
        node_label_column = reader.node_label_ids
        edge_cols = edge_columns_from_arrays(
            edge_ids,
            sources,
            targets,
            reader.edge_label_ids[edge_rows],
            node_label_column[self._node_rows(sources)],
            node_label_column[self._node_rows(targets)],
            reader.edge_keyset_ids[edge_rows],
            reader.edge_label_sets,
            reader.node_label_sets,
            lambda position: tuple(
                reader.edge_properties_at(int(edge_rows[position]))
            ),
        )
        return node_cols, edge_cols

    # ------------------------------------------------------------------
    # Aggregations and sampling
    # ------------------------------------------------------------------
    def degree_extremes(self, edge_ids: Iterable[int]) -> tuple[int, int]:
        """Max out-degree and max in-degree over a set of edges.

        Vectorized: unique-count over the mapped endpoint columns gives
        the same maxima as the in-memory dict count.
        """
        ids = numpy.fromiter(
            (int(edge_id) for edge_id in edge_ids), dtype=numpy.int64
        )
        if ids.size == 0:
            return 0, 0
        rows = self._edge_rows(ids)
        sources = self._reader.edge_sources[rows]
        targets = self._reader.edge_targets[rows]
        max_out = int(numpy.unique(sources, return_counts=True)[1].max())
        max_in = int(numpy.unique(targets, return_counts=True)[1].max())
        return max_out, max_in

    def sample_nodes(self, size: int, seed: int = 0) -> list[Node]:
        """Uniform random sample of at most ``size`` nodes.

        ``random.Random(seed).sample`` selects positions as a function
        of the population *length* only, so sampling ``range(n)`` yields
        exactly the indices (in exactly the order) that sampling the
        materialized node list would -- the in-memory backend's sample,
        without building that list.
        """
        total = self._reader.node_count
        if size >= total:
            return [self._reader.node_at(row) for row in range(total)]
        chosen = random.Random(seed).sample(range(total), size)
        return [self._reader.node_at(row) for row in chosen]


# ----------------------------------------------------------------------
# Building slab directories
# ----------------------------------------------------------------------
def write_graph_to_slabs(
    graph: PropertyGraph,
    directory: str | Path,
    name: str | None = None,
    slab_bytes: int = DEFAULT_SLAB_BYTES,
) -> DiskGraphStore:
    """Convert an in-memory graph into a slab directory.

    Convenience for tests, dataset generators and backend comparisons;
    large inputs should use :func:`ingest_jsonl_slabs` instead, which
    never holds the graph in RAM.
    """
    writer = SlabWriter(
        directory, name=name or graph.name, slab_bytes=slab_bytes
    )
    if writer.counts() != (0, 0):
        writer.reset()
    chunk: list[Node] = []
    for node in graph.nodes():
        chunk.append(node)
        if len(chunk) >= INGEST_CHUNK_ROWS:
            writer.add_nodes(chunk)
            chunk.clear()
    if chunk:
        writer.add_nodes(chunk)
    edge_chunk: list[Edge] = []
    for edge in graph.edges():
        edge_chunk.append(edge)
        if len(edge_chunk) >= INGEST_CHUNK_ROWS:
            writer.add_edges(edge_chunk)
            edge_chunk.clear()
    if edge_chunk:
        writer.add_edges(edge_chunk)
    writer.commit()
    writer.close()
    return DiskGraphStore(directory)


class SlabIngestSink:
    """Streaming ingest target: chunks land on disk, commits by bytes.

    Implements the :class:`repro.graph.io.GraphSink` protocol over a
    :class:`SlabWriter` and commits the manifest (with the source's
    line-progress marker) whenever ``slab_bytes`` of payload has
    accumulated since the last commit -- the unit of crash recovery for
    a killed ingest.
    """

    def __init__(
        self, writer: SlabWriter, source_key: str, slab_bytes: int
    ) -> None:
        self._writer = writer
        self._source_key = source_key
        self._slab_bytes = slab_bytes

    def add_nodes(self, nodes: Sequence[Node]) -> list[tuple[int, str]]:
        """Append a node chunk; returns ``(position, reason)`` rejects."""
        return self._writer.add_nodes(nodes)

    def add_edges(self, edges: Sequence[Edge]) -> list[tuple[int, str]]:
        """Append an edge chunk; returns ``(position, reason)`` rejects."""
        return self._writer.add_edges(edges)

    def chunk_done(self, line_number: int) -> None:
        """Commit durably once enough bytes accumulated since the last."""
        if self._writer.uncommitted_bytes >= self._slab_bytes:
            self._writer.commit({self._source_key: line_number})

    def finish(self, line_number: int) -> None:
        """Final commit covering everything up to ``line_number``."""
        self._writer.commit({self._source_key: line_number})


def ingest_jsonl_slabs(
    path: str | Path,
    directory: str | Path,
    name: str | None = None,
    slab_bytes: int = DEFAULT_SLAB_BYTES,
    on_error: str = "raise",
    report: IngestReport | None = None,
    chunk_rows: int = INGEST_CHUNK_ROWS,
    resume: bool = False,
    faults: str | None = None,
) -> DiskGraphStore:
    """Stream a JSONL graph file straight into a slab directory.

    Rows land on disk in bounded chunks -- peak memory is one chunk
    plus the writer's ``slab_bytes`` buffer, independent of file size.
    With ``resume=True`` an interrupted ingest continues from the last
    committed line of the same source (earlier lines are skipped
    without parsing); otherwise any existing rows are discarded first.

    Accepts the loader ``on_error`` / ``report`` policy of
    :func:`repro.graph.io.load_graph_jsonl`; a resumed ingest reports
    only the resumed portion.  ``faults`` is a
    :class:`repro.core.faults.FaultPlan` spec for the writer's storage
    fault sites (tests/CI only).

    Raises:
        SlabIngestError: An ``OSError`` (ENOSPC, I/O error, ...) hit the
            write path.  The directory is left at its last committed
            manifest generation; rerun with ``resume=True`` to continue
            from :attr:`SlabIngestError.committed_line`.
    """
    path = Path(path)
    writer = SlabWriter(
        directory,
        name=name or path.stem,
        slab_bytes=slab_bytes,
        faults=faults,
    )
    source_key = str(path)
    if resume:
        start_line = writer.source_progress(source_key)
    else:
        if writer.counts() != (0, 0) or writer.source_progress(source_key):
            writer.reset()
        start_line = 0
    sink = SlabIngestSink(writer, source_key, slab_bytes)
    try:
        last_line = stream_graph_jsonl(
            path,
            sink,
            on_error=on_error,
            report=report,
            chunk_rows=chunk_rows,
            start_line=start_line,
            on_progress=sink.chunk_done,
        )
        sink.finish(max(last_line, start_line))
    except OSError as exc:
        writer.close()
        committed = _committed_progress(Path(directory), source_key)
        raise SlabIngestError(
            f"{path}: ingest failed mid-write ({exc}); {directory} is "
            f"intact at its last commit (line {committed} of this "
            f"source) -- rerun with resume=True to continue",
            directory=directory,
            source=source_key,
            committed_line=committed,
        ) from exc
    writer.close()
    return DiskGraphStore(directory)


def _committed_progress(directory: Path, source_key: str) -> int:
    """Durable line marker for one source (0 when unreadable/absent)."""
    try:
        manifest = read_manifest(directory)
    except (FileNotFoundError, SlabCorruptionError):
        return 0
    return int(manifest.get("sources", {}).get(source_key, 0))


def is_slab_directory(path: str | Path) -> bool:
    """Whether ``path`` looks like a slab directory (has a manifest)."""
    return (Path(path) / "manifest.json").is_file()


__all__ = [
    "DiskGraphStore",
    "SlabIngestError",
    "SlabIngestSink",
    "ingest_jsonl_slabs",
    "is_slab_directory",
    "write_graph_to_slabs",
]
