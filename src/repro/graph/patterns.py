"""Node and edge patterns (paper Definitions 3.5 and 3.6).

A *node pattern* is the pair (label set, property key set) of a node; an
*edge pattern* additionally records the (source label set, target label set)
endpoint pair.  Multiple patterns may correspond to the same schema type --
the generators use pattern counts to match Table 2 of the paper, and the
clustering quality discussion is phrased in terms of patterns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.model import Edge, Node, PropertyGraph


@dataclass(frozen=True, slots=True)
class NodePattern:
    """Structural fingerprint of a node: ``(L, K)`` per Definition 3.5."""

    labels: frozenset[str]
    property_keys: frozenset[str]

    def is_labeled(self) -> bool:
        """True when the pattern carries at least one label."""
        return bool(self.labels)


@dataclass(frozen=True, slots=True)
class EdgePattern:
    """Structural fingerprint of an edge: ``(L, K, R)`` per Definition 3.6."""

    labels: frozenset[str]
    property_keys: frozenset[str]
    source_labels: frozenset[str]
    target_labels: frozenset[str]

    def is_labeled(self) -> bool:
        """True when the pattern carries at least one label."""
        return bool(self.labels)


def node_pattern_of(node: Node) -> NodePattern:
    """The node pattern instantiated by ``node``."""
    return NodePattern(node.labels, node.property_keys)


def edge_pattern_of(edge: Edge, graph: PropertyGraph) -> EdgePattern:
    """The edge pattern instantiated by ``edge`` within ``graph``."""
    source, target = graph.endpoints(edge.id)
    return EdgePattern(
        labels=edge.labels,
        property_keys=edge.property_keys,
        source_labels=source.labels,
        target_labels=target.labels,
    )


def extract_patterns(
    graph: PropertyGraph,
) -> tuple[Counter[NodePattern], Counter[EdgePattern]]:
    """Count every distinct node and edge pattern in a graph.

    Returns:
        A pair ``(node_patterns, edge_patterns)`` of Counters mapping each
        pattern to the number of instances exhibiting it.
    """
    node_patterns: Counter[NodePattern] = Counter()
    for node in graph.nodes():
        node_patterns[node_pattern_of(node)] += 1
    edge_patterns: Counter[EdgePattern] = Counter()
    for edge in graph.edges():
        edge_patterns[edge_pattern_of(edge, graph)] += 1
    return node_patterns, edge_patterns
