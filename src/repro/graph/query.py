"""A small query and traversal API over property graphs.

Schema discovery is motivated by making graphs *queryable*; this module
provides the query surface the examples and tests use: label/property
node and edge selection, one-hop traversal with direction, and simple
triple-pattern matching (source label, edge label, target label) --
the Cypher-lite subset the paper's motivating scenarios need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.graph.model import Edge, Node, PropertyGraph

NodePredicate = Callable[[Node], bool]
EdgePredicate = Callable[[Edge], bool]


def match_nodes(
    graph: PropertyGraph,
    label: str | None = None,
    labels: Iterable[str] | None = None,
    properties: dict[str, Any] | None = None,
    where: NodePredicate | None = None,
) -> list[Node]:
    """Nodes matching all given criteria.

    Args:
        graph: The graph to query.
        label: Required single label (the node may carry more).
        labels: Required label set (all must be present).
        properties: Exact-match property constraints.
        where: Arbitrary extra predicate.
    """
    required = set(labels or ())
    if label is not None:
        required.add(label)
    matched = []
    for node in graph.nodes():
        if required and not required <= node.labels:
            continue
        if properties and not _properties_match(node, properties):
            continue
        if where is not None and not where(node):
            continue
        matched.append(node)
    return matched


def match_edges(
    graph: PropertyGraph,
    label: str | None = None,
    properties: dict[str, Any] | None = None,
    where: EdgePredicate | None = None,
) -> list[Edge]:
    """Edges matching all given criteria."""
    matched = []
    for edge in graph.edges():
        if label is not None and label not in edge.labels:
            continue
        if properties and not _properties_match(edge, properties):
            continue
        if where is not None and not where(edge):
            continue
        matched.append(edge)
    return matched


@dataclass(frozen=True, slots=True)
class Triple:
    """One match of a (source, edge, target) pattern."""

    source: Node
    edge: Edge
    target: Node


def match_pattern(
    graph: PropertyGraph,
    source_label: str | None = None,
    edge_label: str | None = None,
    target_label: str | None = None,
) -> list[Triple]:
    """Triple-pattern matching: ``(:A)-[:R]->(:B)`` with optional parts."""
    matches = []
    for edge in graph.edges():
        if edge_label is not None and edge_label not in edge.labels:
            continue
        source, target = graph.endpoints(edge.id)
        if source_label is not None and source_label not in source.labels:
            continue
        if target_label is not None and target_label not in target.labels:
            continue
        matches.append(Triple(source, edge, target))
    return matches


class Traversal:
    """Fluent one-hop-at-a-time traversal.

    Example:
        >>> # colleagues = people working at Bob's organizations
        >>> # Traversal(graph).start(bob).out("WORKS_AT").in_("WORKS_AT")
    """

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph = graph
        self._frontier: list[Node] = []

    def start(self, *nodes: Node | int) -> "Traversal":
        """Seed the frontier with nodes or node ids."""
        self._frontier = [
            node if isinstance(node, Node) else self._graph.node(node)
            for node in nodes
        ]
        return self

    def start_matching(self, **criteria: Any) -> "Traversal":
        """Seed the frontier via :func:`match_nodes` keyword criteria."""
        self._frontier = match_nodes(self._graph, **criteria)
        return self

    def out(self, edge_label: str | None = None) -> "Traversal":
        """Follow outgoing edges (optionally restricted by label)."""
        self._frontier = self._step(outgoing=True, edge_label=edge_label)
        return self

    def in_(self, edge_label: str | None = None) -> "Traversal":
        """Follow incoming edges backwards."""
        self._frontier = self._step(outgoing=False, edge_label=edge_label)
        return self

    def where(self, predicate: NodePredicate) -> "Traversal":
        """Filter the current frontier."""
        self._frontier = [n for n in self._frontier if predicate(n)]
        return self

    def with_label(self, label: str) -> "Traversal":
        """Keep only frontier nodes carrying the label."""
        return self.where(lambda node: label in node.labels)

    def nodes(self) -> list[Node]:
        """The current frontier, deduplicated, in first-visit order."""
        seen: set[int] = set()
        unique = []
        for node in self._frontier:
            if node.id not in seen:
                seen.add(node.id)
                unique.append(node)
        return unique

    def ids(self) -> list[int]:
        """Frontier node ids."""
        return [node.id for node in self.nodes()]

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())

    def _step(self, outgoing: bool, edge_label: str | None) -> list[Node]:
        next_frontier: list[Node] = []
        for node in self._frontier:
            edges = (
                self._graph.out_edges(node.id)
                if outgoing
                else self._graph.in_edges(node.id)
            )
            for edge in edges:
                if edge_label is not None and edge_label not in edge.labels:
                    continue
                neighbor_id = edge.target if outgoing else edge.source
                next_frontier.append(self._graph.node(neighbor_id))
        return next_frontier


def _properties_match(
    element: Node | Edge, required: dict[str, Any]
) -> bool:
    return all(
        key in element.properties and element.properties[key] == value
        for key, value in required.items()
    )
