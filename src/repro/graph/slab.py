"""Append-only columnar slab files: the on-disk graph representation.

One slab directory holds one property graph as per-kind column files
plus a JSON manifest that is the *only* commit point:

* ``nodes-ids.i64`` / ``edges-ids.i64`` -- element ids, int64 per row;
* ``edges-src.i64`` / ``edges-tgt.i64`` -- edge endpoints;
* ``*-labels.i64`` -- per-row dense id into the kind's interned label
  sets (stored in the manifest, first-seen order);
* ``*-keys.i64`` -- per-row dense id into the interned property-key
  orders (first-seen key order retained, which byte-identical MinHash
  feature interning depends on);
* ``*-props.dat`` + ``*-propend.i64`` -- a pickle heap of per-row
  property dicts and the int64 *end* offset of each row's pickle, so
  row ``r`` occupies ``[propend[r-1], propend[r])``.

Column files are append-only.  Writers buffer rows and flush whole
column chunks once ``slab_bytes`` of property payload accumulates; the
manifest is rewritten atomically (temp file + ``os.replace``) only at
:meth:`SlabWriter.commit`.  Crash consistency follows from that split:

* a reader trusts nothing past the manifest's durable row counts, so a
  crash mid-append is invisible;
* a writer reopening the directory physically truncates every column
  file back to the durable lengths before appending, so a torn tail
  can never be concatenated with new rows;
* the manifest also records per-source ingest progress
  (``sources[key] -> last fully committed line number``), which is what
  lets a killed ingest resume exactly where the last commit left off.

The layout is deliberately dumb -- no compression, no btree -- because
discovery only ever needs sequential scans, vectorized slices, and
id-sorted point lookups, all of which mmap + numpy already serve.

Crash consistency alone does not protect against *silent* storage
faults -- a torn write the kernel acknowledged, a bit flip on the
medium, a rename that lost its target.  The integrity layer closes that
gap end to end:

* every column file and property heap carries a running CRC-32 over its
  durable prefix, recorded in the manifest at each commit (append-only
  files make the checksum incrementally maintainable -- no rehash of
  old bytes, ever);
* the manifest itself embeds a self-checksum (``manifest_crc``) and the
  previous manifest is preserved as ``manifest.json.bak`` before each
  replace, so a torn manifest rename is both detectable and repairable;
* :class:`SlabReader` verifies every checksum on open (and re-checks
  byte lengths on every map-in), raising a structured
  :class:`SlabCorruptionError` naming the file, the slab column and the
  corruption kind -- corrupted data is never silently read;
* each commit appends a *generation* record (row counts, byte lengths,
  interner sizes, checksums, source markers) to a bounded history, so
  the offline scrubber (:mod:`repro.graph.scrub`) can truncate a
  damaged directory back to its newest fully-verified generation;
* the write paths are instrumented with deterministic storage fault
  sites (``slab-torn-write``, ``slab-bitflip``, ``slab-enospc``,
  ``manifest-partial-rename``) so every failure mode above is
  reproducible in tests and CI (:mod:`repro.core.faults`).

The checksum is ``zlib.crc32`` (the stdlib's C-speed CRC-32); the
Castagnoli variant would need a native wheel this repo deliberately
does not depend on, and the two are equivalent detectors for random
corruption.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

import numpy

from repro.graph.model import Edge, Node
from repro.util.diskio import fsync_directory

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    # Runtime import is deferred to SlabWriter.__init__: core.faults
    # lives under repro.core, whose package __init__ imports the
    # parallel driver, which imports this module -- a cycle at import
    # time but not at construction time.
    from repro.core.faults import FaultInjector

MANIFEST_NAME = "manifest.json"
MANIFEST_BACKUP_NAME = "manifest.json.bak"
SLAB_VERSION = 2
DEFAULT_SLAB_BYTES = 4 << 20

#: How many previous commit snapshots the manifest retains for
#: :func:`repro.graph.scrub.repair_slab_directory` to roll back to.
GENERATION_HISTORY = 8

#: Read granularity for checksum verification -- bounds scrub/open
#: memory at one chunk regardless of file size.
_CRC_CHUNK = 1 << 20

NODE_KIND = "nodes"
EDGE_KIND = "edges"

_INT_COLUMNS: dict[str, tuple[str, ...]] = {
    NODE_KIND: ("ids", "labels", "keys", "propend"),
    EDGE_KIND: ("ids", "src", "tgt", "labels", "keys", "propend"),
}


class SlabCorruptionError(RuntimeError):
    """A slab directory's on-disk state contradicts its manifest.

    Structured so callers can pinpoint and report the damage:

    Attributes:
        path: Filesystem path of the offending file (``None`` when the
            corruption is not attributable to a single file).
        slab: Which slab the damage hit -- a column identifier such as
            ``"nodes-props"`` or ``"edges-ids"``, or ``"manifest"``.
        kind: ``"checksum"`` (stored CRC does not match the bytes),
            ``"truncated"`` (file shorter than the manifest's durable
            length), ``"missing"`` (file absent but rows recorded),
            ``"manifest"`` (the manifest document itself is unreadable)
            or ``"heap-decode"`` (a property pickle failed to decode at
            read time).
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | Path | None = None,
        slab: str | None = None,
        kind: str = "corrupt",
    ) -> None:
        super().__init__(message)
        self.path = None if path is None else str(path)
        self.slab = slab
        self.kind = kind

    def __reduce__(self) -> tuple[Any, ...]:
        # Preserve the structured fields across the process-pool
        # boundary (default exception pickling only keeps ``args``).
        return (
            _rebuild_corruption_error,
            (str(self), self.path, self.slab, self.kind),
        )


def _rebuild_corruption_error(
    message: str, path: str | None, slab: str | None, kind: str
) -> "SlabCorruptionError":
    """Unpickle helper for :class:`SlabCorruptionError`."""
    return SlabCorruptionError(message, path=path, slab=slab, kind=kind)


def _column_path(directory: Path, kind: str, column: str) -> Path:
    """Path of one int64 column file."""
    return directory / f"{kind}-{column}.i64"


def _heap_path(directory: Path, kind: str) -> Path:
    """Path of the pickled-properties heap file."""
    return directory / f"{kind}-props.dat"


def manifest_checksum(manifest: Mapping[str, Any]) -> int:
    """Self-checksum of a manifest document (``manifest_crc`` excluded).

    Computed over the canonical (sorted-keys) JSON encoding of every
    other field, so any byte of a torn or bit-flipped manifest document
    fails verification in :func:`read_manifest`.
    """
    body = {
        key: value
        for key, value in manifest.items()
        if key != "manifest_crc"
    }
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def manifest_file_lengths(manifest: Mapping[str, Any]) -> dict[str, int]:
    """Durable byte length of every data file a manifest commits to."""
    lengths: dict[str, int] = {}
    for kind in (NODE_KIND, EDGE_KIND):
        entry = manifest["kinds"][kind]
        for column in _INT_COLUMNS[kind]:
            lengths[f"{kind}-{column}.i64"] = int(entry["rows"]) * 8
        lengths[f"{kind}-props.dat"] = int(entry["props_bytes"])
    return lengths


def checksum_file_prefix(path: Path, length: int) -> int:
    """CRC-32 of a file's first ``length`` bytes, read in bounded chunks.

    Because slab files are append-only, the checksum of any *older*
    generation's durable prefix is also verifiable from the current
    file -- this is what makes repair-by-truncation sound.

    Raises:
        SlabCorruptionError: The file is missing or shorter than
            ``length`` (kinds ``"missing"`` / ``"truncated"``).
    """
    if length == 0:
        return 0
    crc = 0
    remaining = length
    try:
        with path.open("rb") as handle:
            while remaining:
                chunk = handle.read(min(remaining, _CRC_CHUNK))
                if not chunk:
                    raise SlabCorruptionError(
                        f"{path}: shorter than the expected {length} bytes",
                        path=path,
                        slab=path.stem,
                        kind="truncated",
                    )
                crc = zlib.crc32(chunk, crc)
                remaining -= len(chunk)
    except FileNotFoundError as exc:
        raise SlabCorruptionError(
            f"{path}: missing but the manifest records {length} bytes",
            path=path,
            slab=path.stem,
            kind="missing",
        ) from exc
    return crc


def verify_manifest_files(
    directory: Path, manifest: Mapping[str, Any]
) -> None:
    """Check every durable file prefix against the manifest checksums.

    Pre-integrity (v1) manifests carry no ``checksums`` mapping; they
    are accepted as-is -- the first commit by an integrity-aware writer
    upgrades them.

    Raises:
        SlabCorruptionError: A file is missing, shorter than its durable
            length, or its bytes do not match the recorded CRC.
    """
    checksums = manifest.get("checksums")
    if checksums is None:
        return
    for file_name, length in sorted(manifest_file_lengths(manifest).items()):
        stored = checksums.get(file_name)
        if stored is None:
            continue
        path = directory / file_name
        actual = checksum_file_prefix(path, length)
        if actual != int(stored):
            raise SlabCorruptionError(
                f"{path}: checksum mismatch over the durable {length} "
                f"bytes (stored {int(stored)}, computed {actual})",
                path=path,
                slab=path.stem,
                kind="checksum",
            )


def _write_manifest(
    directory: Path,
    manifest: dict[str, Any],
    injector: "FaultInjector | None" = None,
    seq: int = 0,
) -> None:
    """Atomically replace the manifest (temp + rename + parent fsync).

    The previous manifest is first preserved as ``manifest.json.bak``,
    so even a corrupted replacement leaves one verifiable document for
    :func:`repro.graph.scrub.repair_slab_directory` to fall back on.
    ``seq`` is the writer's commit ordinal, used to address the
    ``manifest-partial-rename`` fault site.
    """
    manifest["manifest_crc"] = manifest_checksum(manifest)
    payload = json.dumps(manifest, sort_keys=True)
    final = directory / MANIFEST_NAME
    if final.exists():
        backup_tmp = directory / (MANIFEST_BACKUP_NAME + ".tmp")
        with backup_tmp.open("wb") as handle:
            handle.write(final.read_bytes())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(backup_tmp, directory / MANIFEST_BACKUP_NAME)
    if injector is not None and injector.corrupts(
        "manifest-partial-rename", seq
    ):
        # Injected fault: the rename "landed" but only half the document
        # reached the target -- the reader must reject it by checksum
        # and repair must fall back to the backup.
        final.write_text(payload[: len(payload) // 2], encoding="utf-8")
        return
    tmp = directory / (MANIFEST_NAME + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    fsync_directory(directory)


def read_manifest(directory: str | Path) -> dict[str, Any]:
    """Load a slab directory's manifest, verifying its self-checksum.

    Raises:
        FileNotFoundError: No manifest -- not a slab directory.
        SlabCorruptionError: Manifest exists but is not valid slab JSON,
            or its ``manifest_crc`` does not match the document.
    """
    return parse_manifest_file(Path(directory) / MANIFEST_NAME)


def parse_manifest_file(path: Path) -> dict[str, Any]:
    """Parse and self-verify one manifest document at an explicit path.

    Used by :func:`read_manifest` for the live manifest and by the
    scrubber for ``manifest.json.bak``.
    """
    try:
        with path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        raise SlabCorruptionError(
            f"{path}: manifest is not valid JSON: {exc.msg}",
            path=path,
            slab="manifest",
            kind="manifest",
        ) from exc
    if not isinstance(manifest, dict) or "kinds" not in manifest:
        raise SlabCorruptionError(
            f"{path}: manifest missing 'kinds'",
            path=path,
            slab="manifest",
            kind="manifest",
        )
    stored = manifest.get("manifest_crc")
    if stored is not None and int(stored) != manifest_checksum(manifest):
        raise SlabCorruptionError(
            f"{path}: manifest self-checksum mismatch",
            path=path,
            slab="manifest",
            kind="checksum",
        )
    return manifest


def _empty_manifest(name: str) -> dict[str, Any]:
    """Fresh manifest for an empty graph."""
    manifest: dict[str, Any] = {
        "version": SLAB_VERSION,
        "name": name,
        "kinds": {
            kind: {
                "rows": 0,
                "props_bytes": 0,
                "label_sets": [],
                "key_orders": [],
            }
            for kind in (NODE_KIND, EDGE_KIND)
        },
        "sources": {},
        "generations": [],
    }
    manifest["checksums"] = {
        file_name: 0
        for file_name in sorted(manifest_file_lengths(manifest))
    }
    return manifest


class _KindState:
    """Writer-side state for one element kind (nodes or edges)."""

    __slots__ = (
        "kind", "rows", "props_bytes", "label_sets", "label_ids",
        "key_orders", "key_ids", "ids_seen", "buffers", "prop_buffer",
    )

    def __init__(self, kind: str, entry: Mapping[str, Any]) -> None:
        self.kind = kind
        self.rows = int(entry["rows"])
        self.props_bytes = int(entry["props_bytes"])
        self.label_sets: list[frozenset[str]] = [
            frozenset(labels) for labels in entry["label_sets"]
        ]
        self.label_ids: dict[frozenset[str], int] = {
            labels: index for index, labels in enumerate(self.label_sets)
        }
        self.key_orders: list[tuple[str, ...]] = [
            tuple(order) for order in entry["key_orders"]
        ]
        self.key_ids: dict[frozenset[str], int] = {
            frozenset(order): index
            for index, order in enumerate(self.key_orders)
        }
        self.ids_seen: set[int] = set()
        self.buffers: dict[str, list[int]] = {
            column: [] for column in _INT_COLUMNS[kind]
        }
        self.prop_buffer = bytearray()

    def intern_labels(self, labels: frozenset[str]) -> int:
        """Dense id for a label set (first-seen assignment)."""
        existing = self.label_ids.get(labels)
        if existing is not None:
            return existing
        new_id = len(self.label_sets)
        self.label_ids[labels] = new_id
        self.label_sets.append(labels)
        return new_id

    def intern_keys(self, properties: Mapping[str, Any]) -> int:
        """Dense id for a property-key set (first-seen order retained)."""
        keys = frozenset(properties)
        existing = self.key_ids.get(keys)
        if existing is not None:
            return existing
        new_id = len(self.key_orders)
        self.key_ids[keys] = new_id
        self.key_orders.append(tuple(properties))
        return new_id

    def manifest_entry(self) -> dict[str, Any]:
        """Durable description of this kind for the manifest."""
        return {
            "rows": self.rows,
            "props_bytes": self.props_bytes,
            "label_sets": [sorted(labels) for labels in self.label_sets],
            "key_orders": [list(order) for order in self.key_orders],
        }


class SlabWriter:
    """Appends nodes and edges to a slab directory.

    Opening an existing directory resumes from its manifest: column
    files are truncated back to the durable lengths (discarding any torn
    tail from a crash) and the id sets needed for duplicate/endpoint
    validation are rebuilt from the id columns.  ``with`` usage commits
    on clean exit and leaves the last durable state on an exception.
    """

    def __init__(
        self,
        directory: str | Path,
        name: str | None = None,
        slab_bytes: int = DEFAULT_SLAB_BYTES,
        faults: str | None = None,
    ) -> None:
        if slab_bytes < 4096:
            raise ValueError("slab_bytes must be >= 4096")
        # Deferred import: repro.core's package __init__ pulls in the
        # parallel driver, which imports this module (see module head).
        from repro.core.faults import FaultInjector

        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._slab_bytes = slab_bytes
        self._injector = FaultInjector.from_spec(faults)
        self._flush_seq = 0
        self._commit_seq = 0
        manifest_path = self._directory / MANIFEST_NAME
        if manifest_path.exists():
            manifest = read_manifest(self._directory)
            if name is not None:
                manifest["name"] = name
        else:
            manifest = _empty_manifest(name or self._directory.name)
        self._sources: dict[str, int] = {
            str(key): int(value)
            for key, value in manifest.get("sources", {}).items()
        }
        self._name = str(manifest["name"])
        self._kinds = {
            kind: _KindState(kind, manifest["kinds"][kind])
            for kind in (NODE_KIND, EDGE_KIND)
        }
        self._uncommitted = 0
        self._closed = False
        self._recover()
        self._load_id_sets()
        stored_crcs = manifest.get("checksums")
        if stored_crcs is not None:
            self._crcs: dict[str, int] = {
                str(key): int(value) for key, value in stored_crcs.items()
            }
        else:
            # v1 directory: seed the running checksums from the durable
            # bytes once; every later commit maintains them
            # incrementally from the appended chunks.
            self._crcs = {
                file_name: checksum_file_prefix(
                    self._directory / file_name, length
                )
                for file_name, length in sorted(
                    manifest_file_lengths(manifest).items()
                )
            }
        self._generations: list[dict[str, Any]] = [
            dict(generation)
            for generation in manifest.get("generations", [])
        ]
        self._last_snapshot = self._snapshot()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Truncate every column file back to the durable manifest state."""
        for kind, state in self._kinds.items():
            for column in _INT_COLUMNS[kind]:
                self._truncate(
                    _column_path(self._directory, kind, column),
                    state.rows * 8,
                )
            self._truncate(
                _heap_path(self._directory, kind), state.props_bytes
            )

    def _truncate(self, path: Path, durable: int) -> None:
        """Cut one file to its durable byte length (create if absent)."""
        if not path.exists():
            if durable:
                raise SlabCorruptionError(
                    f"{path}: missing but manifest records {durable} bytes",
                    path=path,
                    slab=path.stem,
                    kind="missing",
                )
            path.touch()
            return
        actual = path.stat().st_size
        if actual < durable:
            raise SlabCorruptionError(
                f"{path}: {actual} bytes on disk, manifest records "
                f"{durable}",
                path=path,
                slab=path.stem,
                kind="truncated",
            )
        if actual > durable:
            with path.open("r+b") as handle:
                handle.truncate(durable)

    def _load_id_sets(self) -> None:
        """Rebuild duplicate/endpoint validation sets from the id columns."""
        for kind, state in self._kinds.items():
            if state.rows:
                ids = numpy.fromfile(
                    _column_path(self._directory, kind, "ids"),
                    dtype=numpy.int64,
                    count=state.rows,
                )
                state.ids_seen = set(ids.tolist())

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def add_nodes(self, nodes: Sequence[Node]) -> list[tuple[int, str]]:
        """Append a chunk of nodes; returns ``(position, reason)`` rejects."""
        state = self._kinds[NODE_KIND]
        rejects: list[tuple[int, str]] = []
        buffers = state.buffers
        ids_buf = buffers["ids"]
        labels_buf = buffers["labels"]
        keys_buf = buffers["keys"]
        end_buf = buffers["propend"]
        heap = state.prop_buffer
        base = state.props_bytes
        before = len(heap)
        seen = state.ids_seen
        for position, node in enumerate(nodes):
            node_id = node.id
            if node_id in seen:
                rejects.append((position, f"duplicate node id {node_id}"))
                continue
            seen.add(node_id)
            ids_buf.append(node_id)
            labels_buf.append(state.intern_labels(node.labels))
            keys_buf.append(state.intern_keys(node.properties))
            heap += pickle.dumps(dict(node.properties), protocol=5)
            end_buf.append(base + len(heap))
        self._uncommitted += len(heap) - before
        self._maybe_flush()
        return rejects

    def add_edges(self, edges: Sequence[Edge]) -> list[tuple[int, str]]:
        """Append a chunk of edges; returns ``(position, reason)`` rejects.

        Endpoint validation matches :class:`~repro.graph.model.PropertyGraph`
        exactly (same reject messages), against every node committed or
        buffered so far -- nodes must precede the edges that use them,
        which both the JSONL layout and the CSV loader guarantee.
        """
        state = self._kinds[EDGE_KIND]
        node_ids = self._kinds[NODE_KIND].ids_seen
        rejects: list[tuple[int, str]] = []
        buffers = state.buffers
        ids_buf = buffers["ids"]
        src_buf = buffers["src"]
        tgt_buf = buffers["tgt"]
        labels_buf = buffers["labels"]
        keys_buf = buffers["keys"]
        end_buf = buffers["propend"]
        heap = state.prop_buffer
        base = state.props_bytes
        before = len(heap)
        seen = state.ids_seen
        for position, edge in enumerate(edges):
            edge_id = edge.id
            if edge_id in seen:
                rejects.append((position, f"duplicate edge id {edge_id}"))
                continue
            if edge.source not in node_ids:
                rejects.append(
                    (position, f"edge {edge_id}: unknown source {edge.source}")
                )
                continue
            if edge.target not in node_ids:
                rejects.append(
                    (position, f"edge {edge_id}: unknown target {edge.target}")
                )
                continue
            seen.add(edge_id)
            ids_buf.append(edge_id)
            src_buf.append(edge.source)
            tgt_buf.append(edge.target)
            labels_buf.append(state.intern_labels(edge.labels))
            keys_buf.append(state.intern_keys(edge.properties))
            heap += pickle.dumps(dict(edge.properties), protocol=5)
            end_buf.append(base + len(heap))
        self._uncommitted += len(heap) - before
        self._maybe_flush()
        return rejects

    # ------------------------------------------------------------------
    # Flush / commit
    # ------------------------------------------------------------------
    @property
    def uncommitted_bytes(self) -> int:
        """Property-heap bytes appended since the last :meth:`commit`."""
        return self._uncommitted

    @property
    def name(self) -> str:
        """Graph name recorded in the manifest."""
        return self._name

    @property
    def directory(self) -> Path:
        """The slab directory."""
        return self._directory

    def counts(self) -> tuple[int, int]:
        """(nodes, edges) appended so far, including buffered rows."""
        node_state = self._kinds[NODE_KIND]
        edge_state = self._kinds[EDGE_KIND]
        return (
            node_state.rows + len(node_state.buffers["ids"]),
            edge_state.rows + len(edge_state.buffers["ids"]),
        )

    def source_progress(self, key: str) -> int:
        """Last committed progress marker for one ingest source (0 if new)."""
        return self._sources.get(key, 0)

    def _maybe_flush(self) -> None:
        """Flush buffered rows once enough property payload accumulates."""
        for state in self._kinds.values():
            if len(state.prop_buffer) >= self._slab_bytes:
                self._flush_kind(state)

    def _flush_kind(self, state: _KindState) -> None:
        """Append one kind's buffered rows to its column files.

        This is the instrumented write path: ``slab-enospc`` fires after
        the column appends (leaving a torn, recoverable tail) and
        ``slab-torn-write`` shears the freshly appended heap bytes after
        the kernel acknowledged them.  The running checksums always
        cover the *intended* bytes, so torn writes are caught at the
        next open.
        """
        added = len(state.buffers["ids"])
        if not added:
            return
        seq = self._flush_seq
        self._flush_seq += 1
        chunks = {
            column: numpy.asarray(
                state.buffers[column], dtype=numpy.int64
            ).tobytes()
            for column in _INT_COLUMNS[state.kind]
        }
        for column in _INT_COLUMNS[state.kind]:
            path = _column_path(self._directory, state.kind, column)
            with path.open("ab") as handle:
                handle.write(chunks[column])
                handle.flush()
                os.fsync(handle.fileno())
        if self._injector is not None:
            # Columns are already appended past the manifest state here,
            # so an injected ENOSPC leaves exactly the torn tail that
            # reopen-recovery must truncate away.
            self._injector.fire("slab-enospc", seq)
        pending = len(state.prop_buffer)
        heap_path = _heap_path(self._directory, state.kind)
        with heap_path.open("ab") as handle:
            # memoryview avoids duplicating the whole pending heap just
            # to write it -- the buffer can be many megabytes.
            handle.write(memoryview(state.prop_buffer))
            handle.flush()
            os.fsync(handle.fileno())
        if self._injector is not None and self._injector.corrupts(
            "slab-torn-write", seq
        ):
            # Injected fault: only half the acknowledged heap append
            # reached the medium.
            with heap_path.open("r+b") as handle:
                handle.truncate(state.props_bytes + pending // 2)
        for column in _INT_COLUMNS[state.kind]:
            file_name = f"{state.kind}-{column}.i64"
            self._crcs[file_name] = zlib.crc32(
                chunks[column], self._crcs.get(file_name, 0)
            )
            state.buffers[column].clear()
        self._crcs[heap_path.name] = zlib.crc32(
            memoryview(state.prop_buffer),
            self._crcs.get(heap_path.name, 0),
        )
        state.props_bytes += pending
        state.prop_buffer.clear()
        state.rows += added

    def _snapshot(self) -> dict[str, Any]:
        """Generation record of the current durable state.

        Stores counts (not contents) for the interner lists: slab files
        and interners are append-only, so truncating both back to these
        counts reconstructs the generation exactly, and the stored
        checksums verify the rollback (prefix CRCs of append-only files
        never change).
        """
        return {
            "kinds": {
                kind: {
                    "rows": state.rows,
                    "props_bytes": state.props_bytes,
                    "label_sets": len(state.label_sets),
                    "key_orders": len(state.key_orders),
                }
                for kind, state in sorted(self._kinds.items())
            },
            "checksums": dict(self._crcs),
            "sources": dict(self._sources),
        }

    def _flip_durable_byte(self) -> None:
        """Injected medium fault: XOR the last durable payload byte."""
        node_state = self._kinds[NODE_KIND]
        edge_state = self._kinds[EDGE_KIND]
        candidates = (
            (_heap_path(self._directory, NODE_KIND), node_state.props_bytes),
            (_heap_path(self._directory, EDGE_KIND), edge_state.props_bytes),
            (
                _column_path(self._directory, NODE_KIND, "ids"),
                node_state.rows * 8,
            ),
        )
        for path, durable in candidates:
            if durable <= 0:
                continue
            with path.open("r+b") as handle:
                handle.seek(durable - 1)
                byte = handle.read(1)
                handle.seek(durable - 1)
                handle.write(bytes((byte[0] ^ 0xFF,)))
            return

    def commit(self, sources: Mapping[str, int] | None = None) -> None:
        """Flush all buffers and atomically publish the new durable state.

        Each commit that changes the durable state also archives the
        *previous* state as a generation record (bounded to
        ``GENERATION_HISTORY``), giving the offline scrubber verified
        rollback points.

        Args:
            sources: Optional per-source progress markers to merge into
                the manifest (``key -> last fully processed line``); a
                resumed ingest reads them back via
                :meth:`source_progress`.
        """
        for state in self._kinds.values():
            self._flush_kind(state)
        if sources:
            for key, value in sources.items():
                self._sources[str(key)] = int(value)
        snapshot = self._snapshot()
        if snapshot != self._last_snapshot:
            self._generations.append(self._last_snapshot)
            if len(self._generations) > GENERATION_HISTORY:
                del self._generations[:-GENERATION_HISTORY]
            self._last_snapshot = snapshot
        manifest = {
            "version": SLAB_VERSION,
            "name": self._name,
            "kinds": {
                kind: state.manifest_entry()
                for kind, state in self._kinds.items()
            },
            "sources": dict(self._sources),
            "checksums": dict(self._crcs),
            "generations": [
                dict(generation) for generation in self._generations
            ],
        }
        seq = self._commit_seq
        self._commit_seq += 1
        _write_manifest(self._directory, manifest, self._injector, seq)
        self._uncommitted = 0
        if self._injector is not None and self._injector.corrupts(
            "slab-bitflip", seq
        ):
            self._flip_durable_byte()

    def reset(self) -> None:
        """Discard all rows and start the directory over (fresh manifest)."""
        for kind in (NODE_KIND, EDGE_KIND):
            for column in _INT_COLUMNS[kind]:
                _column_path(self._directory, kind, column).unlink(
                    missing_ok=True
                )
            _heap_path(self._directory, kind).unlink(missing_ok=True)
        manifest = _empty_manifest(self._name)
        seq = self._commit_seq
        self._commit_seq += 1
        _write_manifest(self._directory, manifest, self._injector, seq)
        self._sources = {}
        self._kinds = {
            kind: _KindState(kind, manifest["kinds"][kind])
            for kind in (NODE_KIND, EDGE_KIND)
        }
        self._crcs = {
            str(key): int(value)
            for key, value in manifest["checksums"].items()
        }
        self._generations = []
        self._uncommitted = 0
        self._recover()
        self._last_snapshot = self._snapshot()

    def close(self) -> None:
        """Drop buffered (uncommitted) rows without publishing them."""
        self._closed = True

    def __enter__(self) -> "SlabWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.commit()
        self.close()


class _KindView:
    """Reader-side mmap view of one kind's columns."""

    __slots__ = (
        "kind", "rows", "label_sets", "key_orders", "_columns", "_heap",
        "_heap_path", "_handles",
    )

    def __init__(
        self, directory: Path, kind: str, entry: Mapping[str, Any]
    ) -> None:
        self.kind = kind
        self.rows = int(entry["rows"])
        self.label_sets: tuple[frozenset[str], ...] = tuple(
            frozenset(labels) for labels in entry["label_sets"]
        )
        self.key_orders: tuple[tuple[str, ...], ...] = tuple(
            tuple(order) for order in entry["key_orders"]
        )
        self._handles: list[tuple[Any, mmap.mmap]] = []
        self._columns: dict[str, numpy.ndarray] = {}
        props_bytes = int(entry["props_bytes"])
        for column in _INT_COLUMNS[kind]:
            path = _column_path(directory, kind, column)
            self._columns[column] = self._map_array(path, self.rows)
        self._heap_path = _heap_path(directory, kind)
        self._heap = self._map_bytes(self._heap_path, props_bytes)

    def _map_array(self, path: Path, rows: int) -> numpy.ndarray:
        """Memory-map one int64 column, logically truncated to ``rows``."""
        if rows == 0:
            return numpy.empty(0, dtype=numpy.int64)
        mapped = self._map(path, rows * 8)
        return numpy.frombuffer(mapped, dtype=numpy.int64, count=rows)

    def _map_bytes(self, path: Path, length: int) -> "mmap.mmap | bytes":
        """Memory-map the property heap (empty heap maps to ``b""``)."""
        if length == 0:
            return b""
        return self._map(path, length)

    def _map(self, path: Path, length: int) -> mmap.mmap:
        """Open + mmap one file read-only, tracking the handle pair."""
        handle = path.open("rb")
        try:
            if os.fstat(handle.fileno()).st_size < length:
                raise SlabCorruptionError(
                    f"{path}: shorter than the manifest's {length} bytes",
                    path=path,
                    slab=path.stem,
                    kind="truncated",
                )
            mapped = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except BaseException:
            handle.close()
            raise
        self._handles.append((handle, mapped))
        return mapped

    def column(self, name: str) -> numpy.ndarray:
        """One int64 column as a read-only array."""
        return self._columns[name]

    def properties_at(self, row: int) -> dict[str, Any]:
        """Unpickle one row's property dict from the heap.

        Raises:
            SlabCorruptionError: The pickle bytes fail to decode or
                decode to something other than a dict (kind
                ``"heap-decode"``) -- the last line of defence against
                damage that appeared *after* the open-time checksum
                pass (the mmap reflects later file writes).
        """
        ends = self._columns["propend"]
        start = int(ends[row - 1]) if row else 0
        payload = bytes(self._heap[start : int(ends[row])])
        try:
            result: dict[str, Any] = pickle.loads(payload)
        except Exception as exc:
            raise SlabCorruptionError(
                f"{self._heap_path}: property pickle for {self.kind} row "
                f"{row} failed to decode: {exc}",
                path=self._heap_path,
                slab=f"{self.kind}-props",
                kind="heap-decode",
            ) from exc
        if not isinstance(result, dict):
            raise SlabCorruptionError(
                f"{self._heap_path}: property pickle for {self.kind} row "
                f"{row} decoded to {type(result).__name__}, not dict",
                path=self._heap_path,
                slab=f"{self.kind}-props",
                kind="heap-decode",
            )
        return result

    def close(self) -> None:
        """Release every mmap and file handle."""
        self._columns = {}
        self._heap = b""
        for handle, mapped in self._handles:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover - exported view alive
                pass
            handle.close()
        self._handles = []


class SlabReader:
    """Read-only mmap view of a slab directory at its last commit.

    Every column is exposed as a numpy array over the mapped bytes,
    logically truncated to the manifest's durable row counts, so rows
    appended (but not committed) after the reader opened are invisible.

    With ``verify=True`` (the default) every durable file prefix is
    checked against the manifest's CRC-32 record before any mapping is
    handed out -- a torn write, bit flip or partial rename surfaces as a
    structured :class:`SlabCorruptionError` instead of silently wrong
    data.  ``verify=False`` skips the scan (one full read of the
    directory) for callers that just verified it out of band, e.g. the
    scrubber re-opening a directory it scrubbed.
    """

    def __init__(self, directory: str | Path, verify: bool = True) -> None:
        self._directory = Path(directory)
        manifest = read_manifest(self._directory)
        if verify:
            verify_manifest_files(self._directory, manifest)
        self._name = str(manifest["name"])
        self._sources: dict[str, int] = {
            str(key): int(value)
            for key, value in manifest.get("sources", {}).items()
        }
        self._kinds = {
            kind: _KindView(self._directory, kind, manifest["kinds"][kind])
            for kind in (NODE_KIND, EDGE_KIND)
        }
        self._fingerprint = ":".join(
            f"{kind}={manifest['kinds'][kind]['rows']}"
            f"/{manifest['kinds'][kind]['props_bytes']}"
            for kind in (NODE_KIND, EDGE_KIND)
        )

    @property
    def name(self) -> str:
        """Graph name recorded in the manifest."""
        return self._name

    @property
    def fingerprint(self) -> str:
        """Compact marker of the durable state this reader is pinned to."""
        return self._fingerprint

    @property
    def directory(self) -> Path:
        """The slab directory."""
        return self._directory

    @property
    def node_count(self) -> int:
        """Durable node rows."""
        return self._kinds[NODE_KIND].rows

    @property
    def edge_count(self) -> int:
        """Durable edge rows."""
        return self._kinds[EDGE_KIND].rows

    @property
    def node_ids(self) -> numpy.ndarray:
        """Node ids in insertion order."""
        return self._kinds[NODE_KIND].column("ids")

    @property
    def node_label_ids(self) -> numpy.ndarray:
        """Per-node dense label-set ids (into :attr:`node_label_sets`)."""
        return self._kinds[NODE_KIND].column("labels")

    @property
    def node_keyset_ids(self) -> numpy.ndarray:
        """Per-node dense key-set ids (into :attr:`node_key_orders`)."""
        return self._kinds[NODE_KIND].column("keys")

    @property
    def node_label_sets(self) -> tuple[frozenset[str], ...]:
        """Interned node label sets in first-seen order."""
        return self._kinds[NODE_KIND].label_sets

    @property
    def node_key_orders(self) -> tuple[tuple[str, ...], ...]:
        """Interned node property-key orders in first-seen order."""
        return self._kinds[NODE_KIND].key_orders

    @property
    def edge_ids(self) -> numpy.ndarray:
        """Edge ids in insertion order."""
        return self._kinds[EDGE_KIND].column("ids")

    @property
    def edge_sources(self) -> numpy.ndarray:
        """Edge source node ids in insertion order."""
        return self._kinds[EDGE_KIND].column("src")

    @property
    def edge_targets(self) -> numpy.ndarray:
        """Edge target node ids in insertion order."""
        return self._kinds[EDGE_KIND].column("tgt")

    @property
    def edge_label_ids(self) -> numpy.ndarray:
        """Per-edge dense label-set ids (into :attr:`edge_label_sets`)."""
        return self._kinds[EDGE_KIND].column("labels")

    @property
    def edge_keyset_ids(self) -> numpy.ndarray:
        """Per-edge dense key-set ids (into :attr:`edge_key_orders`)."""
        return self._kinds[EDGE_KIND].column("keys")

    @property
    def edge_label_sets(self) -> tuple[frozenset[str], ...]:
        """Interned edge label sets in first-seen order."""
        return self._kinds[EDGE_KIND].label_sets

    @property
    def edge_key_orders(self) -> tuple[tuple[str, ...], ...]:
        """Interned edge property-key orders in first-seen order."""
        return self._kinds[EDGE_KIND].key_orders

    def source_progress(self, key: str) -> int:
        """Committed ingest progress marker for one source (0 if unseen)."""
        return self._sources.get(key, 0)

    def node_properties_at(self, row: int) -> dict[str, Any]:
        """One node row's property dict, original key order preserved."""
        return self._kinds[NODE_KIND].properties_at(row)

    def edge_properties_at(self, row: int) -> dict[str, Any]:
        """One edge row's property dict, original key order preserved."""
        return self._kinds[EDGE_KIND].properties_at(row)

    def node_at(self, row: int) -> Node:
        """Materialize the node stored at ``row``."""
        view = self._kinds[NODE_KIND]
        return Node(
            id=int(view.column("ids")[row]),
            labels=view.label_sets[int(view.column("labels")[row])],
            properties=view.properties_at(row),
        )

    def edge_at(self, row: int) -> Edge:
        """Materialize the edge stored at ``row``."""
        view = self._kinds[EDGE_KIND]
        return Edge(
            id=int(view.column("ids")[row]),
            source=int(view.column("src")[row]),
            target=int(view.column("tgt")[row]),
            labels=view.label_sets[int(view.column("labels")[row])],
            properties=view.properties_at(row),
        )

    def iter_nodes(self) -> Iterator[Node]:
        """Stream every node in insertion order."""
        for row in range(self.node_count):
            yield self.node_at(row)

    def iter_edges(self) -> Iterator[Edge]:
        """Stream every edge in insertion order."""
        for row in range(self.edge_count):
            yield self.edge_at(row)

    def close(self) -> None:
        """Release every mmap held by this reader."""
        for view in self._kinds.values():
            view.close()

    def __enter__(self) -> "SlabReader":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
