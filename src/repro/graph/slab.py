"""Append-only columnar slab files: the on-disk graph representation.

One slab directory holds one property graph as per-kind column files
plus a JSON manifest that is the *only* commit point:

* ``nodes-ids.i64`` / ``edges-ids.i64`` -- element ids, int64 per row;
* ``edges-src.i64`` / ``edges-tgt.i64`` -- edge endpoints;
* ``*-labels.i64`` -- per-row dense id into the kind's interned label
  sets (stored in the manifest, first-seen order);
* ``*-keys.i64`` -- per-row dense id into the interned property-key
  orders (first-seen key order retained, which byte-identical MinHash
  feature interning depends on);
* ``*-props.dat`` + ``*-propend.i64`` -- a pickle heap of per-row
  property dicts and the int64 *end* offset of each row's pickle, so
  row ``r`` occupies ``[propend[r-1], propend[r])``.

Column files are append-only.  Writers buffer rows and flush whole
column chunks once ``slab_bytes`` of property payload accumulates; the
manifest is rewritten atomically (temp file + ``os.replace``) only at
:meth:`SlabWriter.commit`.  Crash consistency follows from that split:

* a reader trusts nothing past the manifest's durable row counts, so a
  crash mid-append is invisible;
* a writer reopening the directory physically truncates every column
  file back to the durable lengths before appending, so a torn tail
  can never be concatenated with new rows;
* the manifest also records per-source ingest progress
  (``sources[key] -> last fully committed line number``), which is what
  lets a killed ingest resume exactly where the last commit left off.

The layout is deliberately dumb -- no compression, no btree -- because
discovery only ever needs sequential scans, vectorized slices, and
id-sorted point lookups, all of which mmap + numpy already serve.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy

from repro.graph.model import Edge, Node

MANIFEST_NAME = "manifest.json"
SLAB_VERSION = 1
DEFAULT_SLAB_BYTES = 4 << 20

NODE_KIND = "nodes"
EDGE_KIND = "edges"

_INT_COLUMNS: dict[str, tuple[str, ...]] = {
    NODE_KIND: ("ids", "labels", "keys", "propend"),
    EDGE_KIND: ("ids", "src", "tgt", "labels", "keys", "propend"),
}


class SlabCorruptionError(RuntimeError):
    """A slab directory's files are shorter than its manifest promises."""


def _column_path(directory: Path, kind: str, column: str) -> Path:
    """Path of one int64 column file."""
    return directory / f"{kind}-{column}.i64"


def _heap_path(directory: Path, kind: str) -> Path:
    """Path of the pickled-properties heap file."""
    return directory / f"{kind}-props.dat"


def _write_manifest(directory: Path, manifest: dict[str, Any]) -> None:
    """Atomically replace the manifest (temp file + rename)."""
    tmp = directory / (MANIFEST_NAME + ".tmp")
    payload = json.dumps(manifest, sort_keys=True)
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / MANIFEST_NAME)


def read_manifest(directory: str | Path) -> dict[str, Any]:
    """Load a slab directory's manifest.

    Raises:
        FileNotFoundError: No manifest -- not a slab directory.
        SlabCorruptionError: Manifest exists but is not valid slab JSON.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        with path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        raise SlabCorruptionError(
            f"{path}: manifest is not valid JSON: {exc.msg}"
        ) from exc
    if not isinstance(manifest, dict) or "kinds" not in manifest:
        raise SlabCorruptionError(f"{path}: manifest missing 'kinds'")
    return manifest


def _empty_manifest(name: str) -> dict[str, Any]:
    """Fresh manifest for an empty graph."""
    return {
        "version": SLAB_VERSION,
        "name": name,
        "kinds": {
            kind: {
                "rows": 0,
                "props_bytes": 0,
                "label_sets": [],
                "key_orders": [],
            }
            for kind in (NODE_KIND, EDGE_KIND)
        },
        "sources": {},
    }


class _KindState:
    """Writer-side state for one element kind (nodes or edges)."""

    __slots__ = (
        "kind", "rows", "props_bytes", "label_sets", "label_ids",
        "key_orders", "key_ids", "ids_seen", "buffers", "prop_buffer",
    )

    def __init__(self, kind: str, entry: Mapping[str, Any]) -> None:
        self.kind = kind
        self.rows = int(entry["rows"])
        self.props_bytes = int(entry["props_bytes"])
        self.label_sets: list[frozenset[str]] = [
            frozenset(labels) for labels in entry["label_sets"]
        ]
        self.label_ids: dict[frozenset[str], int] = {
            labels: index for index, labels in enumerate(self.label_sets)
        }
        self.key_orders: list[tuple[str, ...]] = [
            tuple(order) for order in entry["key_orders"]
        ]
        self.key_ids: dict[frozenset[str], int] = {
            frozenset(order): index
            for index, order in enumerate(self.key_orders)
        }
        self.ids_seen: set[int] = set()
        self.buffers: dict[str, list[int]] = {
            column: [] for column in _INT_COLUMNS[kind]
        }
        self.prop_buffer = bytearray()

    def intern_labels(self, labels: frozenset[str]) -> int:
        """Dense id for a label set (first-seen assignment)."""
        existing = self.label_ids.get(labels)
        if existing is not None:
            return existing
        new_id = len(self.label_sets)
        self.label_ids[labels] = new_id
        self.label_sets.append(labels)
        return new_id

    def intern_keys(self, properties: Mapping[str, Any]) -> int:
        """Dense id for a property-key set (first-seen order retained)."""
        keys = frozenset(properties)
        existing = self.key_ids.get(keys)
        if existing is not None:
            return existing
        new_id = len(self.key_orders)
        self.key_ids[keys] = new_id
        self.key_orders.append(tuple(properties))
        return new_id

    def manifest_entry(self) -> dict[str, Any]:
        """Durable description of this kind for the manifest."""
        return {
            "rows": self.rows,
            "props_bytes": self.props_bytes,
            "label_sets": [sorted(labels) for labels in self.label_sets],
            "key_orders": [list(order) for order in self.key_orders],
        }


class SlabWriter:
    """Appends nodes and edges to a slab directory.

    Opening an existing directory resumes from its manifest: column
    files are truncated back to the durable lengths (discarding any torn
    tail from a crash) and the id sets needed for duplicate/endpoint
    validation are rebuilt from the id columns.  ``with`` usage commits
    on clean exit and leaves the last durable state on an exception.
    """

    def __init__(
        self,
        directory: str | Path,
        name: str | None = None,
        slab_bytes: int = DEFAULT_SLAB_BYTES,
    ) -> None:
        if slab_bytes < 4096:
            raise ValueError("slab_bytes must be >= 4096")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._slab_bytes = slab_bytes
        manifest_path = self._directory / MANIFEST_NAME
        if manifest_path.exists():
            manifest = read_manifest(self._directory)
            if name is not None:
                manifest["name"] = name
        else:
            manifest = _empty_manifest(name or self._directory.name)
        self._sources: dict[str, int] = {
            str(key): int(value)
            for key, value in manifest.get("sources", {}).items()
        }
        self._name = str(manifest["name"])
        self._kinds = {
            kind: _KindState(kind, manifest["kinds"][kind])
            for kind in (NODE_KIND, EDGE_KIND)
        }
        self._uncommitted = 0
        self._closed = False
        self._recover()
        self._load_id_sets()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Truncate every column file back to the durable manifest state."""
        for kind, state in self._kinds.items():
            for column in _INT_COLUMNS[kind]:
                self._truncate(
                    _column_path(self._directory, kind, column),
                    state.rows * 8,
                )
            self._truncate(
                _heap_path(self._directory, kind), state.props_bytes
            )

    def _truncate(self, path: Path, durable: int) -> None:
        """Cut one file to its durable byte length (create if absent)."""
        if not path.exists():
            if durable:
                raise SlabCorruptionError(
                    f"{path}: missing but manifest records {durable} bytes"
                )
            path.touch()
            return
        actual = path.stat().st_size
        if actual < durable:
            raise SlabCorruptionError(
                f"{path}: {actual} bytes on disk, manifest records {durable}"
            )
        if actual > durable:
            with path.open("r+b") as handle:
                handle.truncate(durable)

    def _load_id_sets(self) -> None:
        """Rebuild duplicate/endpoint validation sets from the id columns."""
        for kind, state in self._kinds.items():
            if state.rows:
                ids = numpy.fromfile(
                    _column_path(self._directory, kind, "ids"),
                    dtype=numpy.int64,
                    count=state.rows,
                )
                state.ids_seen = set(ids.tolist())

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def add_nodes(self, nodes: Sequence[Node]) -> list[tuple[int, str]]:
        """Append a chunk of nodes; returns ``(position, reason)`` rejects."""
        state = self._kinds[NODE_KIND]
        rejects: list[tuple[int, str]] = []
        buffers = state.buffers
        ids_buf = buffers["ids"]
        labels_buf = buffers["labels"]
        keys_buf = buffers["keys"]
        end_buf = buffers["propend"]
        heap = state.prop_buffer
        base = state.props_bytes
        before = len(heap)
        seen = state.ids_seen
        for position, node in enumerate(nodes):
            node_id = node.id
            if node_id in seen:
                rejects.append((position, f"duplicate node id {node_id}"))
                continue
            seen.add(node_id)
            ids_buf.append(node_id)
            labels_buf.append(state.intern_labels(node.labels))
            keys_buf.append(state.intern_keys(node.properties))
            heap += pickle.dumps(dict(node.properties), protocol=5)
            end_buf.append(base + len(heap))
        self._uncommitted += len(heap) - before
        self._maybe_flush()
        return rejects

    def add_edges(self, edges: Sequence[Edge]) -> list[tuple[int, str]]:
        """Append a chunk of edges; returns ``(position, reason)`` rejects.

        Endpoint validation matches :class:`~repro.graph.model.PropertyGraph`
        exactly (same reject messages), against every node committed or
        buffered so far -- nodes must precede the edges that use them,
        which both the JSONL layout and the CSV loader guarantee.
        """
        state = self._kinds[EDGE_KIND]
        node_ids = self._kinds[NODE_KIND].ids_seen
        rejects: list[tuple[int, str]] = []
        buffers = state.buffers
        ids_buf = buffers["ids"]
        src_buf = buffers["src"]
        tgt_buf = buffers["tgt"]
        labels_buf = buffers["labels"]
        keys_buf = buffers["keys"]
        end_buf = buffers["propend"]
        heap = state.prop_buffer
        base = state.props_bytes
        before = len(heap)
        seen = state.ids_seen
        for position, edge in enumerate(edges):
            edge_id = edge.id
            if edge_id in seen:
                rejects.append((position, f"duplicate edge id {edge_id}"))
                continue
            if edge.source not in node_ids:
                rejects.append(
                    (position, f"edge {edge_id}: unknown source {edge.source}")
                )
                continue
            if edge.target not in node_ids:
                rejects.append(
                    (position, f"edge {edge_id}: unknown target {edge.target}")
                )
                continue
            seen.add(edge_id)
            ids_buf.append(edge_id)
            src_buf.append(edge.source)
            tgt_buf.append(edge.target)
            labels_buf.append(state.intern_labels(edge.labels))
            keys_buf.append(state.intern_keys(edge.properties))
            heap += pickle.dumps(dict(edge.properties), protocol=5)
            end_buf.append(base + len(heap))
        self._uncommitted += len(heap) - before
        self._maybe_flush()
        return rejects

    # ------------------------------------------------------------------
    # Flush / commit
    # ------------------------------------------------------------------
    @property
    def uncommitted_bytes(self) -> int:
        """Property-heap bytes appended since the last :meth:`commit`."""
        return self._uncommitted

    @property
    def name(self) -> str:
        """Graph name recorded in the manifest."""
        return self._name

    @property
    def directory(self) -> Path:
        """The slab directory."""
        return self._directory

    def counts(self) -> tuple[int, int]:
        """(nodes, edges) appended so far, including buffered rows."""
        node_state = self._kinds[NODE_KIND]
        edge_state = self._kinds[EDGE_KIND]
        return (
            node_state.rows + len(node_state.buffers["ids"]),
            edge_state.rows + len(edge_state.buffers["ids"]),
        )

    def source_progress(self, key: str) -> int:
        """Last committed progress marker for one ingest source (0 if new)."""
        return self._sources.get(key, 0)

    def _maybe_flush(self) -> None:
        """Flush buffered rows once enough property payload accumulates."""
        for state in self._kinds.values():
            if len(state.prop_buffer) >= self._slab_bytes:
                self._flush_kind(state)

    def _flush_kind(self, state: _KindState) -> None:
        """Append one kind's buffered rows to its column files."""
        added = len(state.buffers["ids"])
        if not added:
            return
        for column in _INT_COLUMNS[state.kind]:
            values = state.buffers[column]
            path = _column_path(self._directory, state.kind, column)
            with path.open("ab") as handle:
                handle.write(
                    numpy.asarray(values, dtype=numpy.int64).tobytes()
                )
                handle.flush()
                os.fsync(handle.fileno())
            values.clear()
        heap_path = _heap_path(self._directory, state.kind)
        with heap_path.open("ab") as handle:
            # memoryview avoids duplicating the whole pending heap just
            # to write it -- the buffer can be many megabytes.
            handle.write(memoryview(state.prop_buffer))
            handle.flush()
            os.fsync(handle.fileno())
        state.props_bytes += len(state.prop_buffer)
        state.prop_buffer.clear()
        state.rows += added

    def commit(self, sources: Mapping[str, int] | None = None) -> None:
        """Flush all buffers and atomically publish the new durable state.

        Args:
            sources: Optional per-source progress markers to merge into
                the manifest (``key -> last fully processed line``); a
                resumed ingest reads them back via
                :meth:`source_progress`.
        """
        for state in self._kinds.values():
            self._flush_kind(state)
        if sources:
            for key, value in sources.items():
                self._sources[str(key)] = int(value)
        manifest = {
            "version": SLAB_VERSION,
            "name": self._name,
            "kinds": {
                kind: state.manifest_entry()
                for kind, state in self._kinds.items()
            },
            "sources": dict(self._sources),
        }
        _write_manifest(self._directory, manifest)
        self._uncommitted = 0

    def reset(self) -> None:
        """Discard all rows and start the directory over (fresh manifest)."""
        for kind in (NODE_KIND, EDGE_KIND):
            for column in _INT_COLUMNS[kind]:
                _column_path(self._directory, kind, column).unlink(
                    missing_ok=True
                )
            _heap_path(self._directory, kind).unlink(missing_ok=True)
        manifest = _empty_manifest(self._name)
        _write_manifest(self._directory, manifest)
        self._sources = {}
        self._kinds = {
            kind: _KindState(kind, manifest["kinds"][kind])
            for kind in (NODE_KIND, EDGE_KIND)
        }
        self._uncommitted = 0
        self._recover()

    def close(self) -> None:
        """Drop buffered (uncommitted) rows without publishing them."""
        self._closed = True

    def __enter__(self) -> "SlabWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.commit()
        self.close()


class _KindView:
    """Reader-side mmap view of one kind's columns."""

    __slots__ = (
        "rows", "label_sets", "key_orders", "_columns", "_heap",
        "_handles",
    )

    def __init__(
        self, directory: Path, kind: str, entry: Mapping[str, Any]
    ) -> None:
        self.rows = int(entry["rows"])
        self.label_sets: tuple[frozenset[str], ...] = tuple(
            frozenset(labels) for labels in entry["label_sets"]
        )
        self.key_orders: tuple[tuple[str, ...], ...] = tuple(
            tuple(order) for order in entry["key_orders"]
        )
        self._handles: list[tuple[Any, mmap.mmap]] = []
        self._columns: dict[str, numpy.ndarray] = {}
        props_bytes = int(entry["props_bytes"])
        for column in _INT_COLUMNS[kind]:
            path = _column_path(directory, kind, column)
            self._columns[column] = self._map_array(path, self.rows)
        self._heap = self._map_bytes(_heap_path(directory, kind), props_bytes)

    def _map_array(self, path: Path, rows: int) -> numpy.ndarray:
        """Memory-map one int64 column, logically truncated to ``rows``."""
        if rows == 0:
            return numpy.empty(0, dtype=numpy.int64)
        mapped = self._map(path, rows * 8)
        return numpy.frombuffer(mapped, dtype=numpy.int64, count=rows)

    def _map_bytes(self, path: Path, length: int) -> "mmap.mmap | bytes":
        """Memory-map the property heap (empty heap maps to ``b""``)."""
        if length == 0:
            return b""
        return self._map(path, length)

    def _map(self, path: Path, length: int) -> mmap.mmap:
        """Open + mmap one file read-only, tracking the handle pair."""
        handle = path.open("rb")
        try:
            if os.fstat(handle.fileno()).st_size < length:
                raise SlabCorruptionError(
                    f"{path}: shorter than the manifest's {length} bytes"
                )
            mapped = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except BaseException:
            handle.close()
            raise
        self._handles.append((handle, mapped))
        return mapped

    def column(self, name: str) -> numpy.ndarray:
        """One int64 column as a read-only array."""
        return self._columns[name]

    def properties_at(self, row: int) -> dict[str, Any]:
        """Unpickle one row's property dict from the heap."""
        ends = self._columns["propend"]
        start = int(ends[row - 1]) if row else 0
        payload = bytes(self._heap[start : int(ends[row])])
        result: dict[str, Any] = pickle.loads(payload)
        return result

    def close(self) -> None:
        """Release every mmap and file handle."""
        self._columns = {}
        self._heap = b""
        for handle, mapped in self._handles:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover - exported view alive
                pass
            handle.close()
        self._handles = []


class SlabReader:
    """Read-only mmap view of a slab directory at its last commit.

    Every column is exposed as a numpy array over the mapped bytes,
    logically truncated to the manifest's durable row counts, so rows
    appended (but not committed) after the reader opened are invisible.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        manifest = read_manifest(self._directory)
        self._name = str(manifest["name"])
        self._sources: dict[str, int] = {
            str(key): int(value)
            for key, value in manifest.get("sources", {}).items()
        }
        self._kinds = {
            kind: _KindView(self._directory, kind, manifest["kinds"][kind])
            for kind in (NODE_KIND, EDGE_KIND)
        }
        self._fingerprint = ":".join(
            f"{kind}={manifest['kinds'][kind]['rows']}"
            f"/{manifest['kinds'][kind]['props_bytes']}"
            for kind in (NODE_KIND, EDGE_KIND)
        )

    @property
    def name(self) -> str:
        """Graph name recorded in the manifest."""
        return self._name

    @property
    def fingerprint(self) -> str:
        """Compact marker of the durable state this reader is pinned to."""
        return self._fingerprint

    @property
    def directory(self) -> Path:
        """The slab directory."""
        return self._directory

    @property
    def node_count(self) -> int:
        """Durable node rows."""
        return self._kinds[NODE_KIND].rows

    @property
    def edge_count(self) -> int:
        """Durable edge rows."""
        return self._kinds[EDGE_KIND].rows

    @property
    def node_ids(self) -> numpy.ndarray:
        """Node ids in insertion order."""
        return self._kinds[NODE_KIND].column("ids")

    @property
    def node_label_ids(self) -> numpy.ndarray:
        """Per-node dense label-set ids (into :attr:`node_label_sets`)."""
        return self._kinds[NODE_KIND].column("labels")

    @property
    def node_keyset_ids(self) -> numpy.ndarray:
        """Per-node dense key-set ids (into :attr:`node_key_orders`)."""
        return self._kinds[NODE_KIND].column("keys")

    @property
    def node_label_sets(self) -> tuple[frozenset[str], ...]:
        """Interned node label sets in first-seen order."""
        return self._kinds[NODE_KIND].label_sets

    @property
    def node_key_orders(self) -> tuple[tuple[str, ...], ...]:
        """Interned node property-key orders in first-seen order."""
        return self._kinds[NODE_KIND].key_orders

    @property
    def edge_ids(self) -> numpy.ndarray:
        """Edge ids in insertion order."""
        return self._kinds[EDGE_KIND].column("ids")

    @property
    def edge_sources(self) -> numpy.ndarray:
        """Edge source node ids in insertion order."""
        return self._kinds[EDGE_KIND].column("src")

    @property
    def edge_targets(self) -> numpy.ndarray:
        """Edge target node ids in insertion order."""
        return self._kinds[EDGE_KIND].column("tgt")

    @property
    def edge_label_ids(self) -> numpy.ndarray:
        """Per-edge dense label-set ids (into :attr:`edge_label_sets`)."""
        return self._kinds[EDGE_KIND].column("labels")

    @property
    def edge_keyset_ids(self) -> numpy.ndarray:
        """Per-edge dense key-set ids (into :attr:`edge_key_orders`)."""
        return self._kinds[EDGE_KIND].column("keys")

    @property
    def edge_label_sets(self) -> tuple[frozenset[str], ...]:
        """Interned edge label sets in first-seen order."""
        return self._kinds[EDGE_KIND].label_sets

    @property
    def edge_key_orders(self) -> tuple[tuple[str, ...], ...]:
        """Interned edge property-key orders in first-seen order."""
        return self._kinds[EDGE_KIND].key_orders

    def source_progress(self, key: str) -> int:
        """Committed ingest progress marker for one source (0 if unseen)."""
        return self._sources.get(key, 0)

    def node_properties_at(self, row: int) -> dict[str, Any]:
        """One node row's property dict, original key order preserved."""
        return self._kinds[NODE_KIND].properties_at(row)

    def edge_properties_at(self, row: int) -> dict[str, Any]:
        """One edge row's property dict, original key order preserved."""
        return self._kinds[EDGE_KIND].properties_at(row)

    def node_at(self, row: int) -> Node:
        """Materialize the node stored at ``row``."""
        view = self._kinds[NODE_KIND]
        return Node(
            id=int(view.column("ids")[row]),
            labels=view.label_sets[int(view.column("labels")[row])],
            properties=view.properties_at(row),
        )

    def edge_at(self, row: int) -> Edge:
        """Materialize the edge stored at ``row``."""
        view = self._kinds[EDGE_KIND]
        return Edge(
            id=int(view.column("ids")[row]),
            source=int(view.column("src")[row]),
            target=int(view.column("tgt")[row]),
            labels=view.label_sets[int(view.column("labels")[row])],
            properties=view.properties_at(row),
        )

    def iter_nodes(self) -> Iterator[Node]:
        """Stream every node in insertion order."""
        for row in range(self.node_count):
            yield self.node_at(row)

    def iter_edges(self) -> Iterator[Edge]:
        """Stream every edge in insertion order."""
        for row in range(self.edge_count):
            yield self.edge_at(row)

    def close(self) -> None:
        """Release every mmap held by this reader."""
        for view in self._kinds.values():
            view.close()

    def __enter__(self) -> "SlabReader":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
