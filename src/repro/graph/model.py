"""Core property graph data model (paper Definition 3.1).

A property graph is a tuple ``G = (V, E, rho, lambda, pi)`` where ``V`` and
``E`` are disjoint finite sets of nodes and edges, ``rho`` maps each edge to
an ordered pair of nodes, ``lambda`` assigns label sets to nodes and edges,
and ``pi`` assigns key-value properties to nodes and edges.

Nodes and edges are lightweight immutable records.  Label sets are stored as
``frozenset`` so that they can be used directly as dictionary keys (the
clustering and merging steps group elements by label set constantly).
Properties are plain ``dict`` objects mapping property keys to values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping


def _normalize_labels(labels: Iterable[str] | None) -> frozenset[str]:
    """Return a canonical frozenset of labels, treating ``None`` as empty."""
    if labels is None:
        return frozenset()
    return frozenset(str(label) for label in labels)


def canonical_label(labels: Iterable[str]) -> str:
    """Canonical single-token name for a label set.

    The paper sorts multi-label sets alphabetically and concatenates them so
    that a multi-labeled element behaves like a single unique label (section
    4.1).  The empty set maps to the empty string, which downstream code
    interprets as "unlabeled".
    """
    return "&".join(sorted(labels))


@dataclass(frozen=True, slots=True)
class Node:
    """A property graph node: identity, label set, and properties.

    Attributes:
        id: Unique node identifier within its graph.
        labels: Possibly-empty frozenset of string labels.
        properties: Mapping of property key to value.  Values may be any
            JSON-serializable Python object; datatype inference interprets
            them later.
    """

    id: int
    labels: frozenset[str] = field(default_factory=frozenset)
    properties: Mapping[str, Any] = field(default_factory=dict)

    @property
    def property_keys(self) -> frozenset[str]:
        """The set of property keys present on this node."""
        return frozenset(self.properties)

    @property
    def is_labeled(self) -> bool:
        """True when the node carries at least one label."""
        return bool(self.labels)

    def label_token(self) -> str:
        """Canonical concatenated label token (empty string if unlabeled)."""
        return canonical_label(self.labels)

    def with_labels(self, labels: Iterable[str]) -> "Node":
        """Return a copy of this node with a replaced label set."""
        return Node(self.id, _normalize_labels(labels), dict(self.properties))

    def without_properties(self, keys: Iterable[str]) -> "Node":
        """Return a copy of this node with the given property keys removed."""
        drop = set(keys)
        kept = {k: v for k, v in self.properties.items() if k not in drop}
        return Node(self.id, self.labels, kept)


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed property graph edge with labels and properties.

    Attributes:
        id: Unique edge identifier within its graph.
        source: Source node id.
        target: Target node id.
        labels: Possibly-empty frozenset of string labels (edge type names).
        properties: Mapping of property key to value.
    """

    id: int
    source: int
    target: int
    labels: frozenset[str] = field(default_factory=frozenset)
    properties: Mapping[str, Any] = field(default_factory=dict)

    @property
    def property_keys(self) -> frozenset[str]:
        """The set of property keys present on this edge."""
        return frozenset(self.properties)

    @property
    def is_labeled(self) -> bool:
        """True when the edge carries at least one label."""
        return bool(self.labels)

    def label_token(self) -> str:
        """Canonical concatenated label token (empty string if unlabeled)."""
        return canonical_label(self.labels)

    def with_labels(self, labels: Iterable[str]) -> "Edge":
        """Return a copy of this edge with a replaced label set."""
        return Edge(
            self.id, self.source, self.target,
            _normalize_labels(labels), dict(self.properties),
        )

    def without_properties(self, keys: Iterable[str]) -> "Edge":
        """Return a copy of this edge with the given property keys removed."""
        drop = set(keys)
        kept = {k: v for k, v in self.properties.items() if k not in drop}
        return Edge(self.id, self.source, self.target, self.labels, kept)


class PropertyGraph:
    """An in-memory directed multigraph with labeled, attributed elements.

    Implements Definition 3.1.  Node and edge ids are caller-assigned
    integers; the graph enforces uniqueness and referential integrity (an
    edge may only reference existing nodes).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._edges: dict[int, Edge] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert a node; raises ``ValueError`` on a duplicate id."""
        if node.id in self._nodes:
            raise ValueError(f"duplicate node id {node.id}")
        self._nodes[node.id] = node
        self._out.setdefault(node.id, [])
        self._in.setdefault(node.id, [])

    def add_edge(self, edge: Edge) -> None:
        """Insert an edge; both endpoints must already exist."""
        if edge.id in self._edges:
            raise ValueError(f"duplicate edge id {edge.id}")
        if edge.source not in self._nodes:
            raise ValueError(f"edge {edge.id}: unknown source {edge.source}")
        if edge.target not in self._nodes:
            raise ValueError(f"edge {edge.id}: unknown target {edge.target}")
        self._edges[edge.id] = edge
        self._out[edge.source].append(edge.id)
        self._in[edge.target].append(edge.id)

    def add_nodes(self, nodes: Iterable[Node]) -> list[tuple[int, str]]:
        """Bulk node insert: collects rejects instead of raising.

        The chunked ingest path of :mod:`repro.graph.io` hands whole
        chunks to the graph in one call -- one method dispatch and one
        locals-bound loop per chunk instead of a ``try``/``except``
        round-trip per record.  Returns ``(position, reason)`` pairs for
        records that violate integrity (same reasons as
        :meth:`add_node` raises); accepted records are inserted in
        order.
        """
        rejects: list[tuple[int, str]] = []
        nodes_map = self._nodes
        out_map = self._out
        in_map = self._in
        for position, node in enumerate(nodes):
            node_id = node.id
            if node_id in nodes_map:
                rejects.append((position, f"duplicate node id {node_id}"))
                continue
            nodes_map[node_id] = node
            out_map[node_id] = []
            in_map[node_id] = []
        return rejects

    def add_edges(self, edges: Iterable[Edge]) -> list[tuple[int, str]]:
        """Bulk edge insert: collects rejects instead of raising.

        Counterpart of :meth:`add_nodes` for edges; integrity checks
        (duplicate id, unknown endpoints) match :meth:`add_edge`.
        """
        rejects: list[tuple[int, str]] = []
        nodes_map = self._nodes
        edges_map = self._edges
        out_map = self._out
        in_map = self._in
        for position, edge in enumerate(edges):
            edge_id = edge.id
            if edge_id in edges_map:
                rejects.append((position, f"duplicate edge id {edge_id}"))
                continue
            if edge.source not in nodes_map:
                rejects.append(
                    (position, f"edge {edge_id}: unknown source {edge.source}")
                )
                continue
            if edge.target not in nodes_map:
                rejects.append(
                    (position, f"edge {edge_id}: unknown target {edge.target}")
                )
                continue
            edges_map[edge_id] = edge
            out_map[edge.source].append(edge_id)
            in_map[edge.target].append(edge_id)
        return rejects

    def remove_edge(self, edge_id: int) -> Edge:
        """Delete an edge; returns the removed record."""
        edge = self._edges.pop(edge_id)
        self._out[edge.source].remove(edge_id)
        self._in[edge.target].remove(edge_id)
        return edge

    def remove_node(self, node_id: int) -> Node:
        """Delete a node and every incident edge; returns the node."""
        node = self._nodes[node_id]
        for edge_id in list(self._out.get(node_id, ())):
            self.remove_edge(edge_id)
        for edge_id in list(self._in.get(node_id, ())):
            self.remove_edge(edge_id)
        del self._nodes[node_id]
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)
        return node

    def replace_node(self, node: Node) -> None:
        """Replace an existing node in place (id must exist)."""
        if node.id not in self._nodes:
            raise KeyError(node.id)
        self._nodes[node.id] = node

    def replace_edge(self, edge: Edge) -> None:
        """Replace an existing edge in place (id and endpoints must match)."""
        old = self._edges.get(edge.id)
        if old is None:
            raise KeyError(edge.id)
        if (old.source, old.target) != (edge.source, edge.target):
            raise ValueError("replace_edge cannot change endpoints")
        self._edges[edge.id] = edge

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """Fetch one node by id (raises ``KeyError`` if absent)."""
        return self._nodes[node_id]

    def edge(self, edge_id: int) -> Edge:
        """Fetch one edge by id (raises ``KeyError`` if absent)."""
        return self._edges[edge_id]

    def has_node(self, node_id: int) -> bool:
        """True when the node id exists in this graph."""
        return node_id in self._nodes

    def has_edge(self, edge_id: int) -> bool:
        """True when the edge id exists in this graph."""
        return edge_id in self._edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in insertion order."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in insertion order."""
        return iter(self._edges.values())

    def out_edges(self, node_id: int) -> list[Edge]:
        """Edges whose source is ``node_id``."""
        return [self._edges[eid] for eid in self._out.get(node_id, [])]

    def in_edges(self, node_id: int) -> list[Edge]:
        """Edges whose target is ``node_id``."""
        return [self._edges[eid] for eid in self._in.get(node_id, [])]

    def endpoints(self, edge_id: int) -> tuple[Node, Node]:
        """The (source, target) node pair of an edge -- the rho function."""
        edge = self._edges[edge_id]
        return self._nodes[edge.source], self._nodes[edge.target]

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges in the graph."""
        return len(self._edges)

    def node_property_keys(self) -> frozenset[str]:
        """Union of property keys over all nodes (the global set K_n)."""
        keys: set[str] = set()
        for node in self._nodes.values():
            keys.update(node.properties)
        return frozenset(keys)

    def edge_property_keys(self) -> frozenset[str]:
        """Union of property keys over all edges (the global set K_e)."""
        keys: set[str] = set()
        for edge in self._edges.values():
            keys.update(edge.properties)
        return frozenset(keys)

    def node_labels(self) -> frozenset[str]:
        """Union of individual labels over all nodes."""
        labels: set[str] = set()
        for node in self._nodes.values():
            labels.update(node.labels)
        return frozenset(labels)

    def edge_labels(self) -> frozenset[str]:
        """Union of individual labels over all edges."""
        labels: set[str] = set()
        for edge in self._edges.values():
            labels.update(edge.labels)
        return frozenset(labels)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def subgraph(self, node_ids: Iterable[int], name: str | None = None) -> "PropertyGraph":
        """Induced subgraph on the given node ids (edges with both ends kept)."""
        keep = set(node_ids)
        sub = PropertyGraph(name or f"{self.name}-sub")
        for nid in keep:
            if nid in self._nodes:
                sub.add_node(self._nodes[nid])
        for edge in self._edges.values():
            if edge.source in keep and edge.target in keep:
                sub.add_edge(edge)
        return sub

    def copy(self, name: str | None = None) -> "PropertyGraph":
        """Shallow structural copy of the graph."""
        dup = PropertyGraph(name or self.name)
        for node in self._nodes.values():
            dup.add_node(node)
        for edge in self._edges.values():
            dup.add_edge(edge)
        return dup

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PropertyGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
