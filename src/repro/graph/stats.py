"""Graph statistics in the shape of the paper's Table 2.

For a dataset the paper reports: node count, edge count, number of node
types, number of edge types, number of distinct node labels, distinct edge
labels, and the counts of distinct node and edge *patterns* (Defs 3.5/3.6).
Type counts require ground truth, so :func:`compute_statistics` accepts the
optional type assignments that the synthetic generators produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import PropertyGraph
from repro.graph.patterns import extract_patterns


@dataclass(frozen=True, slots=True)
class GraphStatistics:
    """One row of Table 2."""

    name: str
    nodes: int
    edges: int
    node_types: int
    edge_types: int
    node_labels: int
    edge_labels: int
    node_patterns: int
    edge_patterns: int

    def as_row(self) -> list[str]:
        """Render as a list of strings for tabular reports."""
        return [
            self.name,
            f"{self.nodes:,}",
            f"{self.edges:,}",
            str(self.node_types),
            str(self.edge_types),
            str(self.node_labels),
            str(self.edge_labels),
            str(self.node_patterns),
            str(self.edge_patterns),
        ]


def compute_statistics(
    graph: PropertyGraph,
    node_types: dict[int, str] | None = None,
    edge_types: dict[int, str] | None = None,
) -> GraphStatistics:
    """Compute the Table 2 statistics row for a graph.

    Args:
        graph: The graph to summarize.
        node_types: Optional ground-truth map node id -> type name.
        edge_types: Optional ground-truth map edge id -> type name.

    When ground truth is absent the type counts fall back to the number of
    distinct label sets, which is what an unlabeled observer could report.
    """
    node_patterns, edge_patterns = extract_patterns(graph)
    if node_types is not None:
        n_node_types = len(set(node_types.values()))
    else:
        n_node_types = len({node.labels for node in graph.nodes()})
    if edge_types is not None:
        n_edge_types = len(set(edge_types.values()))
    else:
        n_edge_types = len({edge.labels for edge in graph.edges()})
    return GraphStatistics(
        name=graph.name,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        node_types=n_node_types,
        edge_types=n_edge_types,
        node_labels=len(graph.node_labels()),
        edge_labels=len(graph.edge_labels()),
        node_patterns=len(node_patterns),
        edge_patterns=len(edge_patterns),
    )
