"""Fluent construction helper for property graphs.

The generators and tests build thousands of nodes and edges; the builder
hands out sequential ids and validates inputs so that call sites stay
readable.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.model import Edge, Node, PropertyGraph


class GraphBuilder:
    """Accumulates nodes and edges and produces a :class:`PropertyGraph`.

    Example:
        >>> builder = GraphBuilder("demo")
        >>> alice = builder.node(["Person"], {"name": "Alice"})
        >>> bob = builder.node(["Person"], {"name": "Bob"})
        >>> _ = builder.edge(alice, bob, ["KNOWS"], {"since": 2020})
        >>> graph = builder.build()
        >>> graph.num_nodes, graph.num_edges
        (2, 1)
    """

    def __init__(self, name: str = "graph") -> None:
        self._graph = PropertyGraph(name)
        self._next_node_id = 0
        self._next_edge_id = 0

    def node(
        self,
        labels: Iterable[str] | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> int:
        """Add a node and return its id."""
        node = Node(
            id=self._next_node_id,
            labels=frozenset(labels or ()),
            properties=dict(properties or {}),
        )
        self._graph.add_node(node)
        self._next_node_id += 1
        return node.id

    def edge(
        self,
        source: int,
        target: int,
        labels: Iterable[str] | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> int:
        """Add an edge between existing nodes and return its id."""
        edge = Edge(
            id=self._next_edge_id,
            source=source,
            target=target,
            labels=frozenset(labels or ()),
            properties=dict(properties or {}),
        )
        self._graph.add_edge(edge)
        self._next_edge_id += 1
        return edge.id

    def build(self) -> PropertyGraph:
        """Return the constructed graph (builder may keep being used)."""
        return self._graph
