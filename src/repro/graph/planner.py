"""Schema-aware query planning over property graphs.

The paper motivates schema discovery with query optimization: once type
statistics exist, a query engine can pick evaluation orders by estimated
selectivity instead of scanning blindly.  This module implements that for
the triple-pattern subset of :mod:`repro.graph.query`:

* :func:`estimate_pattern` -- cardinality estimates for a
  ``(source label, edge label, target label)`` pattern from the discovered
  schema's instance counts and degree statistics (no data access);
* :func:`plan_pattern` -- chooses between three physical strategies
  (scan edges by label; start from source type and expand; start from
  target type and expand backwards) by estimated cost;
* :func:`execute_plan` -- runs the chosen strategy with the traversal
  primitives and returns the matching triples.

The planner only needs a :class:`~repro.schema.model.SchemaGraph` whose
types still carry instance counts -- exactly what discovery produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import PropertyGraph
from repro.graph.query import Triple, match_pattern
from repro.schema.model import EdgeType, SchemaGraph


@dataclass(frozen=True, slots=True)
class PatternEstimate:
    """Cardinality estimates for one triple pattern."""

    matching_edge_instances: int
    source_instances: int
    target_instances: int

    @property
    def selectivity_order(self) -> str:
        """The cheapest starting point by estimated size."""
        cheapest = min(
            ("edges", self.matching_edge_instances),
            ("source", self.source_instances),
            ("target", self.target_instances),
            key=lambda pair: pair[1],
        )
        return cheapest[0]


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """A chosen physical strategy plus its estimates."""

    strategy: str  # "edge-scan" | "expand-from-source" | "expand-from-target"
    estimate: PatternEstimate
    source_label: str | None
    edge_label: str | None
    target_label: str | None


def _matching_edge_types(
    schema: SchemaGraph,
    source_label: str | None,
    edge_label: str | None,
    target_label: str | None,
) -> list[EdgeType]:
    matched = []
    for edge_type in schema.edge_types.values():
        if edge_label is not None and edge_label not in edge_type.labels:
            continue
        if (
            source_label is not None
            and edge_type.source_labels
            and source_label not in edge_type.source_labels
        ):
            continue
        if (
            target_label is not None
            and edge_type.target_labels
            and target_label not in edge_type.target_labels
        ):
            continue
        matched.append(edge_type)
    return matched


def _label_population(schema: SchemaGraph, label: str | None) -> int:
    """Instances across node types carrying the label (all when None)."""
    total = 0
    for node_type in schema.node_types.values():
        if label is None or label in node_type.labels:
            total += node_type.instance_count
    return total


def estimate_pattern(
    schema: SchemaGraph,
    source_label: str | None = None,
    edge_label: str | None = None,
    target_label: str | None = None,
) -> PatternEstimate:
    """Schema-only cardinality estimates for a triple pattern."""
    edge_types = _matching_edge_types(
        schema, source_label, edge_label, target_label
    )
    return PatternEstimate(
        matching_edge_instances=sum(t.instance_count for t in edge_types),
        source_instances=_label_population(schema, source_label),
        target_instances=_label_population(schema, target_label),
    )


def plan_pattern(
    schema: SchemaGraph,
    source_label: str | None = None,
    edge_label: str | None = None,
    target_label: str | None = None,
) -> QueryPlan:
    """Choose the cheapest strategy for a triple pattern.

    Cost model: an edge scan touches every matching-label edge once; an
    expansion touches the anchor type's instances plus the edges actually
    leaving/entering them (bounded by the matching edge estimate).  With
    schema statistics these are directly comparable.
    """
    estimate = estimate_pattern(
        schema, source_label, edge_label, target_label
    )
    anchor = estimate.selectivity_order
    if anchor == "source" and source_label is not None:
        strategy = "expand-from-source"
    elif anchor == "target" and target_label is not None:
        strategy = "expand-from-target"
    else:
        strategy = "edge-scan"
    return QueryPlan(
        strategy=strategy,
        estimate=estimate,
        source_label=source_label,
        edge_label=edge_label,
        target_label=target_label,
    )


def execute_plan(plan: QueryPlan, graph: PropertyGraph) -> list[Triple]:
    """Run a plan; all strategies return the same triples."""
    if plan.strategy == "expand-from-source":
        return _expand(plan, graph, from_source=True)
    if plan.strategy == "expand-from-target":
        return _expand(plan, graph, from_source=False)
    return match_pattern(
        graph, plan.source_label, plan.edge_label, plan.target_label
    )


def _expand(
    plan: QueryPlan, graph: PropertyGraph, from_source: bool
) -> list[Triple]:
    anchor_label = plan.source_label if from_source else plan.target_label
    matches: list[Triple] = []
    for node in graph.nodes():
        if anchor_label is not None and anchor_label not in node.labels:
            continue
        edges = (
            graph.out_edges(node.id) if from_source else graph.in_edges(node.id)
        )
        for edge in edges:
            if (
                plan.edge_label is not None
                and plan.edge_label not in edge.labels
            ):
                continue
            source, target = graph.endpoints(edge.id)
            if (
                plan.source_label is not None
                and plan.source_label not in source.labels
            ):
                continue
            if (
                plan.target_label is not None
                and plan.target_label not in target.labels
            ):
                continue
            matches.append(Triple(source, edge, target))
    return matches
