"""Offline scrub and repair for slab directories.

The integrity layer in :mod:`repro.graph.slab` *detects* corruption at
read time; this module is the operator's tool for dealing with it out
of band:

* :func:`scrub_slab_directory` walks one directory and produces a
  :class:`ScrubReport` -- a per-file verdict (``ok`` / ``checksum`` /
  ``truncated`` / ``missing`` / ``unverified``) against the manifest's
  recorded CRC-32 checksums, plus the manifest's own verdict.  Scrubbing
  never writes; it is safe on a live directory between commits.
* :func:`repair_slab_directory` restores a damaged directory to its
  newest *fully verified* state: it falls back to ``manifest.json.bak``
  when the live manifest is unreadable, then walks the manifest's
  generation history (current state first, then newest to oldest)
  until every file prefix verifies, and physically truncates files and
  interner lists back to that generation.  Because slab files and
  interners are append-only, truncation exactly reconstructs the old
  state and the stored prefix checksums prove it -- a subsequent
  resumed ingest continues from the restored ``sources`` markers and
  produces byte-identical slabs.

Both entry points are surfaced on the command line as
``pghive verify-store`` and ``pghive repair``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.graph.slab import (
    MANIFEST_BACKUP_NAME,
    MANIFEST_NAME,
    SLAB_VERSION,
    EDGE_KIND,
    NODE_KIND,
    SlabCorruptionError,
    checksum_file_prefix,
    manifest_file_lengths,
    parse_manifest_file,
    _write_manifest,
)

__all__ = [
    "FileVerdict",
    "RepairReport",
    "ScrubReport",
    "repair_slab_directory",
    "scrub_slab_directory",
]


@dataclass(frozen=True)
class FileVerdict:
    """Scrub outcome for one data file.

    Attributes:
        file: File name relative to the slab directory.
        expected_bytes: Durable length the manifest commits to.
        status: ``"ok"``, ``"checksum"``, ``"truncated"``, ``"missing"``
            or ``"unverified"`` (no stored checksum -- a pre-integrity
            directory).
        detail: Human-readable elaboration for non-``ok`` statuses.
    """

    file: str
    expected_bytes: int
    status: str
    detail: str = ""

    def describe(self) -> str:
        """One ``file: status`` report line."""
        base = f"{self.file}: {self.status} ({self.expected_bytes} bytes)"
        return f"{base} -- {self.detail}" if self.detail else base


@dataclass(frozen=True)
class ScrubReport:
    """Full verdict for one slab directory.

    Attributes:
        directory: The scrubbed directory.
        manifest_status: ``"ok"``, ``"corrupt"`` (live manifest
            unreadable but the backup parsed; verdicts below are against
            the backup) or ``"unreadable"`` (neither document parsed;
            no per-file verdicts are possible).
        manifest_detail: Elaboration for non-``ok`` manifest statuses.
        generations: How many rollback generations the manifest retains.
        verdicts: Per-file verdicts, sorted by file name.
    """

    directory: str
    manifest_status: str
    manifest_detail: str
    generations: int
    verdicts: tuple[FileVerdict, ...]

    @property
    def clean(self) -> bool:
        """True when the manifest and every verifiable file check out."""
        return self.manifest_status == "ok" and all(
            verdict.status in ("ok", "unverified")
            for verdict in self.verdicts
        )

    def describe(self) -> str:
        """Multi-line operator report."""
        lines = [
            f"{self.directory}: manifest {self.manifest_status}"
            + (f" -- {self.manifest_detail}" if self.manifest_detail else "")
            + f" ({self.generations} rollback generations)"
        ]
        lines.extend(
            "  " + verdict.describe() for verdict in self.verdicts
        )
        lines.append("verdict: " + ("clean" if self.clean else "corrupt"))
        return "\n".join(lines)


@dataclass(frozen=True)
class RepairReport:
    """Outcome of :func:`repair_slab_directory`.

    Attributes:
        directory: The repaired directory.
        repaired: True when the directory was left in a fully verified,
            discoverable state (including "nothing to do").
        restored: Which state won -- ``"current"``, ``"generation -N"``
            or ``""`` when repair failed.
        actions: Ordered log of everything the repair did or rejected.
        detail: Failure description when ``repaired`` is False.
    """

    directory: str
    repaired: bool
    restored: str = ""
    actions: tuple[str, ...] = ()
    detail: str = ""

    def describe(self) -> str:
        """Multi-line operator report."""
        lines = [f"{self.directory}: repair"]
        lines.extend("  " + action for action in self.actions)
        if self.repaired:
            lines.append(f"repaired: restored {self.restored}")
        else:
            lines.append(f"not repaired: {self.detail}")
        return "\n".join(lines)


def _current_candidate(manifest: Mapping[str, Any]) -> dict[str, Any]:
    """The manifest's own durable state in generation-record form."""
    return {
        "kinds": {
            kind: {
                "rows": int(manifest["kinds"][kind]["rows"]),
                "props_bytes": int(manifest["kinds"][kind]["props_bytes"]),
                "label_sets": len(manifest["kinds"][kind]["label_sets"]),
                "key_orders": len(manifest["kinds"][kind]["key_orders"]),
            }
            for kind in (NODE_KIND, EDGE_KIND)
        },
        "checksums": manifest.get("checksums", {}),
        "sources": manifest.get("sources", {}),
    }


def _verify_candidate(
    directory: Path, candidate: Mapping[str, Any]
) -> str | None:
    """``None`` when every file prefix verifies, else a failure reason."""
    checksums = candidate.get("checksums") or {}
    for file_name, length in sorted(
        manifest_file_lengths(candidate).items()
    ):
        stored = checksums.get(file_name)
        try:
            actual = checksum_file_prefix(directory / file_name, length)
        except SlabCorruptionError as exc:
            return str(exc)
        if stored is not None and actual != int(stored):
            return (
                f"{file_name}: checksum mismatch over {length} bytes "
                f"(stored {int(stored)}, computed {actual})"
            )
    return None


def _load_any_manifest(
    directory: Path,
) -> tuple[dict[str, Any] | None, bool, str]:
    """Load the live manifest, falling back to the backup.

    Returns ``(manifest, from_backup, detail)`` where ``manifest`` is
    ``None`` when neither document parses; ``detail`` describes the
    live-manifest failure (and the backup failure, when both are bad).

    Raises:
        FileNotFoundError: Neither a manifest nor a backup exists --
            this is not a slab directory.
    """
    live = directory / MANIFEST_NAME
    backup = directory / MANIFEST_BACKUP_NAME
    if not live.exists() and not backup.exists():
        raise FileNotFoundError(f"{live}: not a slab directory")
    try:
        return parse_manifest_file(live), False, ""
    except (FileNotFoundError, SlabCorruptionError) as exc:
        detail = str(exc)
    if backup.exists():
        try:
            return parse_manifest_file(backup), True, detail
        except SlabCorruptionError as exc:
            detail = f"{detail}; backup also corrupt: {exc}"
    else:
        detail = f"{detail}; no backup manifest"
    return None, False, detail


def scrub_slab_directory(directory: str | Path) -> ScrubReport:
    """Verify one slab directory without modifying it.

    Raises:
        FileNotFoundError: The directory holds no manifest (and no
            backup) -- it is not a slab directory.
    """
    root = Path(directory)
    manifest, from_backup, detail = _load_any_manifest(root)
    if manifest is None:
        return ScrubReport(
            directory=str(root),
            manifest_status="unreadable",
            manifest_detail=detail,
            generations=0,
            verdicts=(),
        )
    checksums = manifest.get("checksums") or {}
    verdicts: list[FileVerdict] = []
    for file_name, length in sorted(
        manifest_file_lengths(manifest).items()
    ):
        stored = checksums.get(file_name)
        try:
            actual = checksum_file_prefix(root / file_name, length)
        except SlabCorruptionError as exc:
            verdicts.append(FileVerdict(
                file=file_name,
                expected_bytes=length,
                status=exc.kind,
                detail=str(exc),
            ))
            continue
        if stored is None:
            verdicts.append(FileVerdict(
                file=file_name,
                expected_bytes=length,
                status="unverified",
                detail="no stored checksum (pre-integrity directory)",
            ))
        elif actual != int(stored):
            verdicts.append(FileVerdict(
                file=file_name,
                expected_bytes=length,
                status="checksum",
                detail=f"stored {int(stored)}, computed {actual}",
            ))
        else:
            verdicts.append(FileVerdict(
                file=file_name, expected_bytes=length, status="ok"
            ))
    return ScrubReport(
        directory=str(root),
        manifest_status="corrupt" if from_backup else "ok",
        manifest_detail=detail,
        generations=len(manifest.get("generations", [])),
        verdicts=tuple(verdicts),
    )


def repair_slab_directory(directory: str | Path) -> RepairReport:
    """Restore a slab directory to its newest fully verified state.

    Raises:
        FileNotFoundError: The directory holds no manifest (and no
            backup) -- it is not a slab directory.
    """
    root = Path(directory)
    actions: list[str] = []
    manifest, from_backup, detail = _load_any_manifest(root)
    if manifest is None:
        return RepairReport(
            directory=str(root),
            repaired=False,
            actions=tuple(actions),
            detail=f"no parseable manifest: {detail}",
        )
    if from_backup:
        actions.append(
            f"live manifest rejected ({detail}); "
            f"using {MANIFEST_BACKUP_NAME}"
        )
    generations = [
        dict(generation)
        for generation in manifest.get("generations", [])
    ]
    candidates: list[tuple[str, int, dict[str, Any]]] = [
        ("current", len(generations), _current_candidate(manifest))
    ]
    for offset in range(len(generations) - 1, -1, -1):
        age = len(generations) - offset
        candidates.append(
            (f"generation -{age}", offset, generations[offset])
        )
    chosen: tuple[str, int, dict[str, Any]] | None = None
    for label, keep, candidate in candidates:
        failure = _verify_candidate(root, candidate)
        if failure is None:
            chosen = (label, keep, candidate)
            break
        actions.append(f"rejected {label}: {failure}")
    if chosen is None:
        return RepairReport(
            directory=str(root),
            repaired=False,
            actions=tuple(actions),
            detail="no fully verified generation to roll back to",
        )
    label, keep, candidate = chosen
    truncated = False
    for file_name, length in sorted(
        manifest_file_lengths(candidate).items()
    ):
        path = root / file_name
        if not path.exists():
            # Only reachable for zero-length files (anything longer
            # would have failed verification above).
            path.touch()
            continue
        if path.stat().st_size > length:
            with path.open("r+b") as handle:
                handle.truncate(length)
            actions.append(f"truncated {file_name} to {length} bytes")
            truncated = True
    if from_backup or truncated or label != "current":
        new_manifest: dict[str, Any] = {
            "version": SLAB_VERSION,
            "name": str(manifest.get("name", root.name)),
            "kinds": {
                kind: {
                    "rows": int(candidate["kinds"][kind]["rows"]),
                    "props_bytes": int(
                        candidate["kinds"][kind]["props_bytes"]
                    ),
                    "label_sets": manifest["kinds"][kind]["label_sets"][
                        : int(candidate["kinds"][kind]["label_sets"])
                    ],
                    "key_orders": manifest["kinds"][kind]["key_orders"][
                        : int(candidate["kinds"][kind]["key_orders"])
                    ],
                }
                for kind in (NODE_KIND, EDGE_KIND)
            },
            "sources": {
                str(key): int(value)
                for key, value in candidate.get("sources", {}).items()
            },
            "checksums": {
                str(key): int(value)
                for key, value in (candidate.get("checksums") or {}).items()
            },
            "generations": generations[:keep],
        }
        _write_manifest(root, new_manifest)
        actions.append(f"rewrote manifest at {label}")
    for stray in (MANIFEST_NAME + ".tmp", MANIFEST_BACKUP_NAME + ".tmp"):
        stray_path = root / stray
        if stray_path.exists():
            stray_path.unlink()
            actions.append(f"removed stray {stray}")
    return RepairReport(
        directory=str(root),
        repaired=True,
        restored=label,
        actions=tuple(actions),
    )
