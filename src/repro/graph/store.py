"""In-memory graph store standing in for the Neo4j backend.

The original PG-HIVE loads nodes and edges from Neo4j "using a single query
to ensure similar structure" and streams the data in batches for the
incremental mode.  :class:`GraphStore` reproduces exactly that contract:

* ``scan_nodes()`` / ``scan_edges()`` stream every element,
* ``batches(batch_size)`` yields subgraph streams for incremental runs,
* degree aggregation queries back the cardinality inference of section 4.4,
* ``sample_nodes`` / ``sample_property_values`` support the adaptive
  parameterization and sampled datatype inference.

All randomness is seeded so experiments are reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterable, Iterator, Sequence

import numpy

from repro.graph.model import Edge, Node, PropertyGraph


@dataclass(frozen=True)
class ShardPlan:
    """Self-contained recipe for one shard of a node-partitioned scan.

    A plan is tiny (four scalars) and picklable, so a pool of workers can
    each receive a plan and call :meth:`GraphStore.materialize_shard`
    independently -- against a fork-inherited store or any store wrapping
    the same graph -- and obtain exactly the batch that
    :meth:`GraphStore.batches` would have yielded at ``index``.
    """

    index: int
    num_shards: int
    seed: int = 0
    shuffle: bool = True


class _Partition:
    """Materialized node/edge partition shared by all shards of one plan."""

    __slots__ = ("nodes_by_shard", "edges_by_shard", "labels_by_id")

    def __init__(
        self,
        nodes_by_shard: list[list[Node]],
        edges_by_shard: dict[int, list[Edge]],
        labels_by_id: dict[int, frozenset[str]],
    ) -> None:
        self.nodes_by_shard = nodes_by_shard
        self.edges_by_shard = edges_by_shard
        self.labels_by_id = labels_by_id


class _ArrayPartition:
    """Id-array partition installed by the parallel driver.

    Holds only the per-shard id arrays produced by
    :meth:`GraphStore.partition_tables` and the pooled edge bucketing;
    object materialization is deferred to :meth:`GraphStore._make_batch`,
    which runs in whichever process consumes the shard -- typically a
    pool worker -- so installing a partition costs O(num_shards) in the
    parent instead of an O(nodes + edges) object rebuild.
    """

    __slots__ = ("nodes_by_shard_ids", "edges_by_shard_ids")

    def __init__(
        self,
        nodes_by_shard_ids: list[numpy.ndarray],
        edges_by_shard_ids: list[numpy.ndarray],
    ) -> None:
        self.nodes_by_shard_ids = nodes_by_shard_ids
        self.edges_by_shard_ids = edges_by_shard_ids


class BaseGraphStore(ABC):
    """The store contract every discovery mode runs against.

    Two backends implement it: :class:`GraphStore` (the historical
    in-memory facade over a :class:`PropertyGraph`) and
    :class:`repro.graph.diskstore.DiskGraphStore` (memory-mapped column
    slabs for graphs bigger than RAM).  The algorithmic layers --
    vectorization, clustering, the parallel driver, post-processing --
    depend only on this interface, and the contract is *byte-identity*:
    for the same logical graph both backends must partition, shuffle,
    sample and materialize exactly the same elements in exactly the same
    order, so discovery output never depends on where the bytes live.

    Everything deterministic about sharding lives here: the partition
    semantics (insertion-ordered ids, ``random.Random(seed).shuffle``,
    round-robin assignment, edges following their source node) are part
    of the interface, not an implementation detail.
    """

    # ------------------------------------------------------------------
    # Identity and scans
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def name(self) -> str:
        """Name of the stored graph."""

    @abstractmethod
    def scan_nodes(self) -> Iterator[Node]:
        """Stream all nodes in insertion order."""

    @abstractmethod
    def scan_edges(self) -> Iterator[Edge]:
        """Stream all edges in insertion order."""

    @abstractmethod
    def count_nodes(self) -> int:
        """Total number of nodes."""

    @abstractmethod
    def count_edges(self) -> int:
        """Total number of edges."""

    @abstractmethod
    def node(self, node_id: int) -> Node:
        """Point lookup of a node (``KeyError`` when absent)."""

    @abstractmethod
    def edge(self, edge_id: int) -> Edge:
        """Point lookup of an edge (``KeyError`` when absent)."""

    def endpoints(self, edge: Edge) -> tuple[Node, Node]:
        """Source and target node of an edge."""
        return self.node(edge.source), self.node(edge.target)

    # ------------------------------------------------------------------
    # Sharded scans
    # ------------------------------------------------------------------
    def batches(
        self,
        num_batches: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> Iterator["GraphBatch"]:
        """Split the graph into ``num_batches`` node-partitioned batches.

        Mirrors the paper's evaluation setup ("we randomly separate the
        graph into 10 batches").  Nodes are partitioned; an edge is
        assigned to the batch of its source node, and the batch record
        carries the endpoint label information an edge needs for
        vectorization even when the other endpoint lives in an earlier
        or later batch.
        """
        for plan in self.plan_shards(num_batches, seed, shuffle):
            yield self.materialize_shard(plan)

    @abstractmethod
    def plan_shards(
        self,
        num_shards: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> list[ShardPlan]:
        """Plans for materializing each batch of a sharded scan on demand."""

    @abstractmethod
    def materialize_shard(self, plan: ShardPlan) -> "GraphBatch":
        """Build the single batch described by ``plan``."""

    @abstractmethod
    def partition_tables(
        self, num_shards: int, seed: int = 0, shuffle: bool = True
    ) -> tuple[list[numpy.ndarray], numpy.ndarray, numpy.ndarray]:
        """Parent-side half of the parallel partition pass."""

    @abstractmethod
    def bucket_edge_range(
        self,
        start: int,
        stop: int,
        sorted_ids: numpy.ndarray,
        shard_of_sorted: numpy.ndarray,
        num_shards: int,
    ) -> list[numpy.ndarray]:
        """Bucket the edges at positions ``[start, stop)`` by shard."""

    @abstractmethod
    def materialize_index_shard(
        self,
        index: int,
        node_ids: numpy.ndarray,
        edge_ids: numpy.ndarray,
    ) -> "GraphBatch":
        """Build a batch from explicit id arrays (parallel plan mode)."""

    @abstractmethod
    def install_partition(
        self,
        num_shards: int,
        seed: int,
        shuffle: bool,
        nodes_by_shard_ids: Sequence[numpy.ndarray],
        edges_by_shard_ids: Sequence[numpy.ndarray],
    ) -> None:
        """Install an externally computed partition into the cache."""

    # ------------------------------------------------------------------
    # Aggregations and sampling
    # ------------------------------------------------------------------
    @abstractmethod
    def degree_extremes(self, edge_ids: Iterable[int]) -> tuple[int, int]:
        """Max out-degree and max in-degree over a set of edges."""

    @abstractmethod
    def sample_nodes(self, size: int, seed: int = 0) -> list[Node]:
        """Uniform random sample of at most ``size`` nodes."""

    def journal_fingerprint(self) -> dict[str, str] | None:
        """Durable-state marker for checkpoint/journal context.

        ``None`` for ephemeral in-memory stores; persistent backends
        return something that changes whenever the stored graph does, so
        a resumed run can refuse a journal written against different
        data.
        """
        return None

    def sample_property_values(
        self,
        elements: Sequence[Node] | Sequence[Edge],
        key: str,
        fraction: float,
        minimum: int,
        seed: int = 0,
    ) -> list[Any]:
        """Sample values of one property key over a set of elements.

        Implements the paper's sampled datatype inference: take
        ``fraction`` of the available values but at least ``minimum``
        (or all of them when fewer exist).
        """
        values = [
            element.properties[key]
            for element in elements
            if key in element.properties
        ]
        target = max(minimum, int(round(fraction * len(values))))
        if target >= len(values):
            return values
        return random.Random(seed).sample(values, target)


class GraphStore(BaseGraphStore):
    """Query facade over a :class:`PropertyGraph`.

    The algorithmic layers (vectorization, clustering, post-processing)
    depend only on the :class:`BaseGraphStore` contract, never on the
    concrete graph, so a real database driver could be swapped in by
    implementing the same methods.
    """

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph = graph
        self._partition_cache: tuple[
            tuple[int, int, bool], _Partition | _ArrayPartition
        ] | None = None

    @property
    def graph(self) -> PropertyGraph:
        """The wrapped graph."""
        return self._graph

    @property
    def name(self) -> str:
        """Name of the wrapped graph."""
        return self._graph.name

    # ------------------------------------------------------------------
    # Streaming scans (the "single query" of section 4.1)
    # ------------------------------------------------------------------
    def scan_nodes(self) -> Iterator[Node]:
        """Stream all nodes."""
        return self._graph.nodes()

    def scan_edges(self) -> Iterator[Edge]:
        """Stream all edges."""
        return self._graph.edges()

    def count_nodes(self) -> int:
        """Total number of nodes."""
        return self._graph.num_nodes

    def count_edges(self) -> int:
        """Total number of edges."""
        return self._graph.num_edges

    def node(self, node_id: int) -> Node:
        """Point lookup of a node."""
        return self._graph.node(node_id)

    def edge(self, edge_id: int) -> Edge:
        """Point lookup of an edge."""
        return self._graph.edge(edge_id)

    def endpoints(self, edge: Edge) -> tuple[Node, Node]:
        """Source and target node of an edge."""
        return self._graph.endpoints(edge.id)

    # ------------------------------------------------------------------
    # Batch streaming for the incremental mode (section 4.6)
    # ------------------------------------------------------------------
    def batches(
        self,
        num_batches: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> Iterator["GraphBatch"]:
        """Split the graph into ``num_batches`` node-partitioned batches.

        See :meth:`BaseGraphStore.batches`; this override materializes
        straight from the cached partition.
        """
        partition = self._partition(num_batches, seed, shuffle)
        for batch_index in range(num_batches):
            yield self._make_batch(partition, batch_index)

    def plan_shards(
        self,
        num_shards: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> list[ShardPlan]:
        """Plans for materializing each batch of a sharded scan on demand.

        ``materialize_shard(plan_shards(n)[k])`` is exactly the ``k``-th
        batch of ``batches(n)``; shards can therefore be built in any
        order, concurrently, and in separate processes.  Calling this in
        the parent also warms the partition cache, so forked workers
        inherit the assignment instead of recomputing it.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._partition(num_shards, seed, shuffle)
        return [
            ShardPlan(index, num_shards, seed, shuffle)
            for index in range(num_shards)
        ]

    def materialize_shard(self, plan: ShardPlan) -> "GraphBatch":
        """Build the single batch described by ``plan``."""
        if not 0 <= plan.index < plan.num_shards:
            raise ValueError(
                f"shard index {plan.index} out of range for "
                f"{plan.num_shards} shards"
            )
        partition = self._partition(plan.num_shards, plan.seed, plan.shuffle)
        return self._make_batch(partition, plan.index)

    def _partition(
        self, num_shards: int, seed: int, shuffle: bool
    ) -> _Partition | _ArrayPartition:
        """Assign nodes and edges to shards (cached for the last plan)."""
        if num_shards < 1:
            raise ValueError("num_batches must be >= 1")
        key = (num_shards, seed, shuffle)
        cached = self._partition_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        node_ids = [node.id for node in self._graph.nodes()]
        if shuffle:
            random.Random(seed).shuffle(node_ids)
        assignment: dict[int, int] = {}
        for index, node_id in enumerate(node_ids):
            assignment[node_id] = index % num_shards
        edges_by_shard: dict[int, list[Edge]] = defaultdict(list)
        for edge in self._graph.edges():
            edges_by_shard[assignment[edge.source]].append(edge)
        nodes_by_shard: list[list[Node]] = [[] for _ in range(num_shards)]
        labels_by_id: dict[int, frozenset[str]] = {}
        for nid in node_ids:
            node = self._graph.node(nid)
            nodes_by_shard[assignment[nid]].append(node)
            labels_by_id[nid] = node.labels
        partition = _Partition(nodes_by_shard, dict(edges_by_shard),
                               labels_by_id)
        self._partition_cache = (key, partition)
        return partition

    # ------------------------------------------------------------------
    # Array-level partitioning (parallel plan_shards)
    # ------------------------------------------------------------------
    def partition_tables(
        self, num_shards: int, seed: int = 0, shuffle: bool = True
    ) -> tuple[list[numpy.ndarray], numpy.ndarray, numpy.ndarray]:
        """Parent-side half of the parallel partition pass.

        Reproduces the node half of :meth:`_partition` exactly -- same
        ``random.Random(seed).shuffle`` over the same insertion-ordered
        id list -- but as arrays: returns ``(nodes_by_shard, sorted_ids,
        shard_of_sorted)`` where ``nodes_by_shard[s]`` is the shard's
        node ids in batch order and ``shard_of_sorted[k]`` is the shard
        of the node id ``sorted_ids[k]``.  The lookup table lets workers
        bucket *edge* slices by source shard with
        :meth:`bucket_edge_range` (``searchsorted`` instead of a dict),
        which is the half worth parallelizing: this method is O(nodes)
        with one Python-level shuffle, the edge pass is O(edges) of
        attribute access.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        node_ids = [node.id for node in self._graph.nodes()]
        if shuffle:
            random.Random(seed).shuffle(node_ids)
        shuffled = numpy.asarray(node_ids, dtype=numpy.int64)
        if shuffled.size == 0:
            empty = numpy.empty(0, dtype=numpy.int64)
            return [empty.copy() for _ in range(num_shards)], empty, empty
        order = numpy.argsort(shuffled, kind="stable")
        sorted_ids = shuffled[order]
        shard_of_sorted = (order % num_shards).astype(numpy.int64)
        nodes_by_shard = [
            shuffled[shard::num_shards].copy() for shard in range(num_shards)
        ]
        return nodes_by_shard, sorted_ids, shard_of_sorted

    def bucket_edge_range(
        self,
        start: int,
        stop: int,
        sorted_ids: numpy.ndarray,
        shard_of_sorted: numpy.ndarray,
        num_shards: int,
    ) -> list[numpy.ndarray]:
        """Bucket the edges at positions ``[start, stop)`` by shard.

        The worker-side half of the parallel partition: scans one slice
        of the insertion-ordered edge sequence (the only O(edges) Python
        loop), then assigns each edge to its source node's shard via the
        ``searchsorted`` lookup table and splits the slice with a stable
        argsort.  Concatenating every worker's bucket ``s`` in slice
        order reproduces ``_partition``'s ``edges_by_shard[s]`` ordering
        exactly, because the stable sort preserves in-slice edge order.
        """
        count = max(stop - start, 0)
        edge_ids = numpy.empty(count, dtype=numpy.int64)
        sources = numpy.empty(count, dtype=numpy.int64)
        position = 0
        for edge in islice(self._graph.edges(), start, stop):
            edge_ids[position] = edge.id
            sources[position] = edge.source
            position += 1
        if position != count:
            raise ValueError(
                f"edge range [{start}, {stop}) exceeds the graph's "
                f"{start + position} edges"
            )
        lookup = numpy.searchsorted(sorted_ids, sources)
        shards = shard_of_sorted[lookup]
        order = numpy.argsort(shards, kind="stable")
        sorted_shards = shards[order]
        sorted_edge_ids = edge_ids[order]
        bounds = numpy.searchsorted(
            sorted_shards, numpy.arange(num_shards + 1)
        )
        return [
            sorted_edge_ids[bounds[shard] : bounds[shard + 1]].copy()
            for shard in range(num_shards)
        ]

    def materialize_index_shard(
        self,
        index: int,
        node_ids: numpy.ndarray,
        edge_ids: numpy.ndarray,
    ) -> "GraphBatch":
        """Build a batch from explicit id arrays (parallel plan mode).

        Given the per-shard arrays produced by :meth:`partition_tables`
        + :meth:`bucket_edge_range`, yields a batch byte-identical to
        ``materialize_shard`` for the same shard -- the id arrays encode
        the same elements in the same order, and the endpoint-label map
        is built with the identical first-seen-in-edge-order walk.
        """
        graph = self._graph
        nodes = [graph.node(int(node_id)) for node_id in node_ids]
        edges = [graph.edge(int(edge_id)) for edge_id in edge_ids]
        endpoint_labels: dict[int, frozenset[str]] = {}
        for edge in edges:
            for nid in (edge.source, edge.target):
                if nid not in endpoint_labels:
                    endpoint_labels[nid] = graph.node(nid).labels
        return GraphBatch(index, nodes, edges, endpoint_labels)

    def install_partition(
        self,
        num_shards: int,
        seed: int,
        shuffle: bool,
        nodes_by_shard_ids: Sequence[numpy.ndarray],
        edges_by_shard_ids: Sequence[numpy.ndarray],
    ) -> None:
        """Install an externally computed partition into the cache.

        Takes the array form produced by :meth:`partition_tables` plus a
        per-shard concatenation of :meth:`bucket_edge_range` buckets and
        rebuilds the object-level :class:`_Partition` that
        :meth:`materialize_shard` / :meth:`batches` consume.  The id
        arrays encode the same elements in the same order as
        :meth:`_partition` would assign, so every batch materialized
        from an installed partition is byte-identical to the single-pass
        one; the parallel driver uses this to compute the edge bucketing
        on the worker pool and still hand workers plain
        :class:`ShardPlan` scalars.

        The arrays are cached as-is (:class:`_ArrayPartition`), keeping
        the install itself O(num_shards): object materialization runs in
        whichever process consumes a shard, so under a pool it happens
        in the workers, off the driver's critical path.
        """
        self._partition_cache = (
            (num_shards, seed, shuffle),
            _ArrayPartition(
                list(nodes_by_shard_ids), list(edges_by_shard_ids)
            ),
        )

    def _make_batch(
        self, partition: _Partition | _ArrayPartition, batch_index: int
    ) -> "GraphBatch":
        if isinstance(partition, _ArrayPartition):
            return self.materialize_index_shard(
                batch_index,
                partition.nodes_by_shard_ids[batch_index],
                partition.edges_by_shard_ids[batch_index],
            )
        edges = partition.edges_by_shard.get(batch_index, [])
        # Endpoints are looked up once per distinct node id (an edge
        # list mentions the same hub nodes over and over).
        labels_by_id = partition.labels_by_id
        endpoint_labels: dict[int, frozenset[str]] = {}
        for edge in edges:
            for nid in (edge.source, edge.target):
                if nid not in endpoint_labels:
                    endpoint_labels[nid] = labels_by_id[nid]
        return GraphBatch(
            batch_index, partition.nodes_by_shard[batch_index], edges,
            endpoint_labels,
        )

    # ------------------------------------------------------------------
    # Aggregations used by post-processing
    # ------------------------------------------------------------------
    def degree_extremes(self, edge_ids: Iterable[int]) -> tuple[int, int]:
        """Max out-degree and max in-degree over a set of edges.

        For an edge type rho this computes ``max_out(rho)`` (the largest
        number of the given edges leaving any single source node) and
        ``max_in(rho)`` (the largest number arriving at any single target).
        """
        out_degree: dict[int, int] = defaultdict(int)
        in_degree: dict[int, int] = defaultdict(int)
        for edge_id in edge_ids:
            edge = self._graph.edge(edge_id)
            out_degree[edge.source] += 1
            in_degree[edge.target] += 1
        max_out = max(out_degree.values(), default=0)
        max_in = max(in_degree.values(), default=0)
        return max_out, max_in

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_nodes(self, size: int, seed: int = 0) -> list[Node]:
        """Uniform random sample of at most ``size`` nodes."""
        nodes = list(self._graph.nodes())
        if size >= len(nodes):
            return nodes
        return random.Random(seed).sample(nodes, size)


class GraphBatch:
    """One increment of streamed data: nodes, edges, and endpoint labels.

    ``endpoint_labels`` maps the node ids referenced by this batch's edges to
    their label sets, because edge vectorization (section 4.1) embeds the
    source and target labels and an endpoint may not belong to this batch.
    """

    def __init__(
        self,
        index: int,
        nodes: Sequence[Node],
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> None:
        self.index = index
        self.nodes = list(nodes)
        self.edges = list(edges)
        self.endpoint_labels = dict(endpoint_labels)

    @property
    def size(self) -> int:
        """Total number of elements (nodes plus edges) in the batch."""
        return len(self.nodes) + len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GraphBatch(index={self.index}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )
