"""In-memory graph store standing in for the Neo4j backend.

The original PG-HIVE loads nodes and edges from Neo4j "using a single query
to ensure similar structure" and streams the data in batches for the
incremental mode.  :class:`GraphStore` reproduces exactly that contract:

* ``scan_nodes()`` / ``scan_edges()`` stream every element,
* ``batches(batch_size)`` yields subgraph streams for incremental runs,
* degree aggregation queries back the cardinality inference of section 4.4,
* ``sample_nodes`` / ``sample_property_values`` support the adaptive
  parameterization and sampled datatype inference.

All randomness is seeded so experiments are reproducible.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.graph.model import Edge, Node, PropertyGraph


@dataclass(frozen=True)
class ShardPlan:
    """Self-contained recipe for one shard of a node-partitioned scan.

    A plan is tiny (four scalars) and picklable, so a pool of workers can
    each receive a plan and call :meth:`GraphStore.materialize_shard`
    independently -- against a fork-inherited store or any store wrapping
    the same graph -- and obtain exactly the batch that
    :meth:`GraphStore.batches` would have yielded at ``index``.
    """

    index: int
    num_shards: int
    seed: int = 0
    shuffle: bool = True


class _Partition:
    """Materialized node/edge partition shared by all shards of one plan."""

    __slots__ = ("nodes_by_shard", "edges_by_shard", "labels_by_id")

    def __init__(
        self,
        nodes_by_shard: list[list[Node]],
        edges_by_shard: dict[int, list[Edge]],
        labels_by_id: dict[int, frozenset[str]],
    ) -> None:
        self.nodes_by_shard = nodes_by_shard
        self.edges_by_shard = edges_by_shard
        self.labels_by_id = labels_by_id


class GraphStore:
    """Query facade over a :class:`PropertyGraph`.

    The algorithmic layers (vectorization, clustering, post-processing)
    depend only on this class, never on the concrete graph, so a real
    database driver could be swapped in by implementing the same methods.
    """

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph = graph
        self._partition_cache: tuple[
            tuple[int, int, bool], _Partition
        ] | None = None

    @property
    def graph(self) -> PropertyGraph:
        """The wrapped graph."""
        return self._graph

    # ------------------------------------------------------------------
    # Streaming scans (the "single query" of section 4.1)
    # ------------------------------------------------------------------
    def scan_nodes(self) -> Iterator[Node]:
        """Stream all nodes."""
        return self._graph.nodes()

    def scan_edges(self) -> Iterator[Edge]:
        """Stream all edges."""
        return self._graph.edges()

    def count_nodes(self) -> int:
        """Total number of nodes."""
        return self._graph.num_nodes

    def count_edges(self) -> int:
        """Total number of edges."""
        return self._graph.num_edges

    def node(self, node_id: int) -> Node:
        """Point lookup of a node."""
        return self._graph.node(node_id)

    def endpoints(self, edge: Edge) -> tuple[Node, Node]:
        """Source and target node of an edge."""
        return self._graph.endpoints(edge.id)

    # ------------------------------------------------------------------
    # Batch streaming for the incremental mode (section 4.6)
    # ------------------------------------------------------------------
    def batches(
        self,
        num_batches: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> Iterator["GraphBatch"]:
        """Split the graph into ``num_batches`` node-partitioned batches.

        Mirrors the paper's evaluation setup ("we randomly separate the graph
        into 10 batches").  Nodes are partitioned; an edge is assigned to the
        batch of its source node, and the batch record carries the endpoint
        label information an edge needs for vectorization even when the other
        endpoint lives in an earlier or later batch.
        """
        partition = self._partition(num_batches, seed, shuffle)
        for batch_index in range(num_batches):
            yield self._make_batch(partition, batch_index)

    def plan_shards(
        self,
        num_shards: int,
        seed: int = 0,
        shuffle: bool = True,
    ) -> list[ShardPlan]:
        """Plans for materializing each batch of a sharded scan on demand.

        ``materialize_shard(plan_shards(n)[k])`` is exactly the ``k``-th
        batch of ``batches(n)``; shards can therefore be built in any
        order, concurrently, and in separate processes.  Calling this in
        the parent also warms the partition cache, so forked workers
        inherit the assignment instead of recomputing it.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._partition(num_shards, seed, shuffle)
        return [
            ShardPlan(index, num_shards, seed, shuffle)
            for index in range(num_shards)
        ]

    def materialize_shard(self, plan: ShardPlan) -> "GraphBatch":
        """Build the single batch described by ``plan``."""
        if not 0 <= plan.index < plan.num_shards:
            raise ValueError(
                f"shard index {plan.index} out of range for "
                f"{plan.num_shards} shards"
            )
        partition = self._partition(plan.num_shards, plan.seed, plan.shuffle)
        return self._make_batch(partition, plan.index)

    def _partition(
        self, num_shards: int, seed: int, shuffle: bool
    ) -> _Partition:
        """Assign nodes and edges to shards (cached for the last plan)."""
        if num_shards < 1:
            raise ValueError("num_batches must be >= 1")
        key = (num_shards, seed, shuffle)
        cached = self._partition_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        node_ids = [node.id for node in self._graph.nodes()]
        if shuffle:
            random.Random(seed).shuffle(node_ids)
        assignment: dict[int, int] = {}
        for index, node_id in enumerate(node_ids):
            assignment[node_id] = index % num_shards
        edges_by_shard: dict[int, list[Edge]] = defaultdict(list)
        for edge in self._graph.edges():
            edges_by_shard[assignment[edge.source]].append(edge)
        nodes_by_shard: list[list[Node]] = [[] for _ in range(num_shards)]
        labels_by_id: dict[int, frozenset[str]] = {}
        for nid in node_ids:
            node = self._graph.node(nid)
            nodes_by_shard[assignment[nid]].append(node)
            labels_by_id[nid] = node.labels
        partition = _Partition(nodes_by_shard, dict(edges_by_shard),
                               labels_by_id)
        self._partition_cache = (key, partition)
        return partition

    def _make_batch(
        self, partition: _Partition, batch_index: int
    ) -> "GraphBatch":
        edges = partition.edges_by_shard.get(batch_index, [])
        # Endpoints are looked up once per distinct node id (an edge
        # list mentions the same hub nodes over and over).
        labels_by_id = partition.labels_by_id
        endpoint_labels: dict[int, frozenset[str]] = {}
        for edge in edges:
            for nid in (edge.source, edge.target):
                if nid not in endpoint_labels:
                    endpoint_labels[nid] = labels_by_id[nid]
        return GraphBatch(
            batch_index, partition.nodes_by_shard[batch_index], edges,
            endpoint_labels,
        )

    # ------------------------------------------------------------------
    # Aggregations used by post-processing
    # ------------------------------------------------------------------
    def degree_extremes(self, edge_ids: Iterable[int]) -> tuple[int, int]:
        """Max out-degree and max in-degree over a set of edges.

        For an edge type rho this computes ``max_out(rho)`` (the largest
        number of the given edges leaving any single source node) and
        ``max_in(rho)`` (the largest number arriving at any single target).
        """
        out_degree: dict[int, int] = defaultdict(int)
        in_degree: dict[int, int] = defaultdict(int)
        for edge_id in edge_ids:
            edge = self._graph.edge(edge_id)
            out_degree[edge.source] += 1
            in_degree[edge.target] += 1
        max_out = max(out_degree.values(), default=0)
        max_in = max(in_degree.values(), default=0)
        return max_out, max_in

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_nodes(self, size: int, seed: int = 0) -> list[Node]:
        """Uniform random sample of at most ``size`` nodes."""
        nodes = list(self._graph.nodes())
        if size >= len(nodes):
            return nodes
        return random.Random(seed).sample(nodes, size)

    def sample_property_values(
        self,
        elements: Sequence[Node] | Sequence[Edge],
        key: str,
        fraction: float,
        minimum: int,
        seed: int = 0,
    ) -> list[Any]:
        """Sample values of one property key over a set of elements.

        Implements the paper's sampled datatype inference: take ``fraction``
        of the available values but at least ``minimum`` (or all of them when
        fewer exist).
        """
        values = [
            element.properties[key]
            for element in elements
            if key in element.properties
        ]
        target = max(minimum, int(round(fraction * len(values))))
        if target >= len(values):
            return values
        return random.Random(seed).sample(values, target)


class GraphBatch:
    """One increment of streamed data: nodes, edges, and endpoint labels.

    ``endpoint_labels`` maps the node ids referenced by this batch's edges to
    their label sets, because edge vectorization (section 4.1) embeds the
    source and target labels and an endpoint may not belong to this batch.
    """

    def __init__(
        self,
        index: int,
        nodes: Sequence[Node],
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> None:
        self.index = index
        self.nodes = list(nodes)
        self.edges = list(edges)
        self.endpoint_labels = dict(endpoint_labels)

    @property
    def size(self) -> int:
        """Total number of elements (nodes plus edges) in the batch."""
        return len(self.nodes) + len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GraphBatch(index={self.index}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )
