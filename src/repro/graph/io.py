"""Graph serialization: JSON-lines and Neo4j-style CSV.

JSONL is the native interchange format (one record per line, explicit
``kind`` discriminator).  The CSV flavour mirrors the ``neo4j-admin import``
layout used by several of the paper's dataset distributions: a node file
with ``id``/``labels`` columns and an edge file with ``start``/``end``/
``type`` columns, property columns alongside.

Real dumps are dirty -- truncated lines, duplicate ids, dangling edge
endpoints -- so every loader takes an ``on_error`` policy:

* ``"raise"`` (default): the first malformed record raises
  :class:`ValueError` with ``path:line`` context, matching the strict
  historical behaviour;
* ``"skip"``: malformed records are dropped and loading continues (an
  optional :class:`IngestReport` still records what was dropped);
* ``"collect"``: like ``"skip"``, but a caller-supplied
  :class:`IngestReport` is mandatory so no rejection is ever silently
  lost -- each :class:`IngestError` carries the file path, 1-based line
  number and a human-readable reason.

A record rejected under ``skip``/``collect`` never partially mutates the
graph: parsing and validation happen before insertion, and the model's
own integrity errors (duplicate ids, unknown endpoints) are caught and
converted into :class:`IngestError` entries.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.graph.model import Edge, Node, PropertyGraph

_ON_ERROR_POLICIES = ("raise", "skip", "collect")


@dataclass
class IngestError:
    """One rejected input record.

    Attributes:
        path: File the record came from.
        line: 1-based physical line number within that file.
        reason: Human-readable cause of the rejection.
    """

    path: str
    line: int
    reason: str

    def describe(self) -> str:
        """``path:line: reason`` -- the compiler-style one-liner."""
        return f"{self.path}:{self.line}: {self.reason}"


@dataclass
class IngestReport:
    """Outcome of a lenient (``skip``/``collect``) graph load.

    Attributes:
        errors: Every rejected record, in file order.
        nodes_loaded: Nodes successfully added to the graph.
        edges_loaded: Edges successfully added to the graph.
    """

    errors: list[IngestError] = field(default_factory=list)
    nodes_loaded: int = 0
    edges_loaded: int = 0

    @property
    def ok(self) -> bool:
        """True when no record was rejected."""
        return not self.errors

    def describe(self) -> str:
        """Multi-line summary: counts first, then one line per error."""
        lines = [
            f"loaded {self.nodes_loaded} nodes, {self.edges_loaded} edges; "
            f"rejected {len(self.errors)} records"
        ]
        lines.extend(error.describe() for error in self.errors)
        return "\n".join(lines)


class _ErrorPolicy:
    """Shared rejection handling for the loaders."""

    def __init__(
        self,
        path: str | Path,
        on_error: str,
        report: IngestReport | None,
    ) -> None:
        if on_error not in _ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR_POLICIES}, "
                f"got {on_error!r}"
            )
        if on_error == "collect" and report is None:
            raise ValueError(
                "on_error='collect' requires an IngestReport to collect into"
            )
        self.path = Path(path)
        self.on_error = on_error
        self.report = report

    def reject(self, line: int, reason: str) -> None:
        """Record one bad record; raise when the policy is strict."""
        if self.report is not None:
            self.report.errors.append(
                IngestError(str(self.path), line, reason)
            )
        if self.on_error == "raise":
            raise ValueError(f"{self.path}:{line}: {reason}")


def save_graph_jsonl(graph: PropertyGraph, path: str | Path) -> None:
    """Write a graph as JSON lines (nodes first, then edges)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for node in graph.nodes():
            record = {
                "kind": "node",
                "id": node.id,
                "labels": sorted(node.labels),
                "properties": dict(node.properties),
            }
            handle.write(json.dumps(record, default=str) + "\n")
        for edge in graph.edges():
            record = {
                "kind": "edge",
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "labels": sorted(edge.labels),
                "properties": dict(edge.properties),
            }
            handle.write(json.dumps(record, default=str) + "\n")


def _record_int(
    record: dict[str, Any],
    key: str,
    kind: str,
    policy: _ErrorPolicy,
    line_number: int,
) -> int | None:
    """Fetch an integer field, rejecting missing/non-integer values."""
    if key not in record:
        policy.reject(line_number, f"{kind} record missing {key!r}")
        return None
    value = record[key]
    try:
        return int(value)
    except (TypeError, ValueError):
        policy.reject(
            line_number, f"non-integer {kind} {key} {value!r}"
        )
        return None


def load_graph_jsonl(
    path: str | Path,
    name: str | None = None,
    on_error: str = "raise",
    report: IngestReport | None = None,
) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph_jsonl`.

    Args:
        path: JSONL file to read.
        name: Graph name (defaults to the file stem).
        on_error: ``"raise"`` | ``"skip"`` | ``"collect"`` (see module
            docstring).
        report: Sink for :class:`IngestError` records and load counts;
            required when ``on_error="collect"``.

    Raises:
        ValueError: A malformed record under ``on_error="raise"`` (the
            message carries ``path:line``), or an invalid policy.
        FileNotFoundError: The file does not exist.
    """
    path = Path(path)
    policy = _ErrorPolicy(path, on_error, report)
    graph = PropertyGraph(name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                policy.reject(line_number, f"invalid JSON: {exc.msg}")
                continue
            if not isinstance(record, dict):
                policy.reject(line_number, "record is not a JSON object")
                continue
            kind = record.get("kind")
            if kind == "node":
                node_id = _record_int(
                    record, "id", "node", policy, line_number
                )
                if node_id is None:
                    continue
                try:
                    node = Node(
                        id=node_id,
                        labels=frozenset(record.get("labels", ())),
                        properties=dict(record.get("properties", {})),
                    )
                except (TypeError, ValueError):
                    policy.reject(line_number, "malformed node record")
                    continue
                try:
                    graph.add_node(node)
                except ValueError as exc:
                    policy.reject(line_number, str(exc))
                    continue
                if report is not None:
                    report.nodes_loaded += 1
            elif kind == "edge":
                fields = [
                    _record_int(record, key, "edge", policy, line_number)
                    for key in ("id", "source", "target")
                ]
                if any(value is None for value in fields):
                    continue
                edge_id, source, target = fields
                try:
                    edge = Edge(
                        id=edge_id,
                        source=source,
                        target=target,
                        labels=frozenset(record.get("labels", ())),
                        properties=dict(record.get("properties", {})),
                    )
                except (TypeError, ValueError):
                    policy.reject(line_number, "malformed edge record")
                    continue
                try:
                    graph.add_edge(edge)
                except ValueError as exc:
                    policy.reject(line_number, str(exc))
                    continue
                if report is not None:
                    report.edges_loaded += 1
            else:
                policy.reject(
                    line_number, f"unknown record kind {kind!r}"
                )
    return graph


def save_graph_csv(graph: PropertyGraph, nodes_path: str | Path,
                   edges_path: str | Path) -> None:
    """Write a graph as a node CSV and an edge CSV (Neo4j import layout).

    Property values are JSON-encoded so they round-trip with their types.
    Labels are ``;``-joined in a single column, as in Neo4j's bulk format.
    """
    node_keys = sorted(graph.node_property_keys())
    edge_keys = sorted(graph.edge_property_keys())
    with Path(nodes_path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "labels", *node_keys])
        for node in graph.nodes():
            row: list[str] = [str(node.id), ";".join(sorted(node.labels))]
            for key in node_keys:
                row.append(_encode_cell(node.properties.get(key)))
            writer.writerow(row)
    with Path(edges_path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "start", "end", "type", *edge_keys])
        for edge in graph.edges():
            row = [
                str(edge.id), str(edge.source), str(edge.target),
                ";".join(sorted(edge.labels)),
            ]
            for key in edge_keys:
                row.append(_encode_cell(edge.properties.get(key)))
            writer.writerow(row)


def _row_ints(
    row: list[str],
    count: int,
    kind: str,
    policy: _ErrorPolicy,
    line_number: int,
) -> list[int] | None:
    """Parse the leading ``count`` id cells of a CSV row as integers."""
    if len(row) <= count:
        policy.reject(line_number, f"truncated {kind} row")
        return None
    values: list[int] = []
    for cell in row[:count]:
        try:
            values.append(int(cell))
        except ValueError:
            policy.reject(
                line_number, f"non-integer {kind} id cell {cell!r}"
            )
            return None
    return values


def load_graph_csv(
    nodes_path: str | Path,
    edges_path: str | Path,
    name: str = "graph",
    on_error: str = "raise",
    report: IngestReport | None = None,
) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph_csv`.

    Accepts the same ``on_error`` / ``report`` policy as
    :func:`load_graph_jsonl`; rejected rows are reported against the
    file they came from (node or edge CSV) with their physical line
    number.
    """
    graph = PropertyGraph(name)
    node_policy = _ErrorPolicy(nodes_path, on_error, report)
    with Path(nodes_path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        keys = header[2:]
        for row in reader:
            line_number = reader.line_num
            if not row:
                continue
            ids = _row_ints(row, 1, "node", node_policy, line_number)
            if ids is None:
                continue
            labels = frozenset(part for part in row[1].split(";") if part)
            try:
                properties = _decode_cells(keys, row[2:])
            except json.JSONDecodeError as exc:
                node_policy.reject(
                    line_number, f"invalid JSON property cell: {exc.msg}"
                )
                continue
            try:
                graph.add_node(Node(ids[0], labels, properties))
            except ValueError as exc:
                node_policy.reject(line_number, str(exc))
                continue
            if report is not None:
                report.nodes_loaded += 1
    edge_policy = _ErrorPolicy(edges_path, on_error, report)
    with Path(edges_path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        keys = header[4:]
        for row in reader:
            line_number = reader.line_num
            if not row:
                continue
            ids = _row_ints(row, 3, "edge", edge_policy, line_number)
            if ids is None:
                continue
            labels = frozenset(part for part in row[3].split(";") if part)
            try:
                properties = _decode_cells(keys, row[4:])
            except json.JSONDecodeError as exc:
                edge_policy.reject(
                    line_number, f"invalid JSON property cell: {exc.msg}"
                )
                continue
            try:
                graph.add_edge(Edge(
                    ids[0], ids[1], ids[2], labels, properties,
                ))
            except ValueError as exc:
                edge_policy.reject(line_number, str(exc))
                continue
            if report is not None:
                report.edges_loaded += 1
    return graph


def load_graph_apoc_jsonl(
    path: str | Path,
    name: str | None = None,
    on_error: str = "raise",
    report: IngestReport | None = None,
) -> PropertyGraph:
    """Read a Neo4j ``apoc.export.json`` JSONL dump.

    APOC emits one JSON object per line with ``"type": "node"`` records
    (``id``, ``labels``, ``properties``) followed by
    ``"type": "relationship"`` records whose ``start``/``end`` are nested
    node references and whose relationship type is the ``label`` field.
    Node ids in the dump are strings; they are remapped to dense ints.

    Accepts the same ``on_error`` / ``report`` policy as
    :func:`load_graph_jsonl`.
    """
    path = Path(path)
    policy = _ErrorPolicy(path, on_error, report)
    graph = PropertyGraph(name or path.stem)
    node_ids: dict[str, int] = {}
    next_edge_id = 0
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                policy.reject(line_number, f"invalid JSON: {exc.msg}")
                continue
            if not isinstance(record, dict):
                policy.reject(line_number, "record is not a JSON object")
                continue
            kind = record.get("type")
            if kind == "node":
                if "id" not in record:
                    policy.reject(line_number, "node record missing 'id'")
                    continue
                raw_id = str(record["id"])
                node_id = node_ids.setdefault(raw_id, len(node_ids))
                try:
                    graph.add_node(Node(
                        id=node_id,
                        labels=frozenset(record.get("labels", ())),
                        properties=dict(record.get("properties", {})),
                    ))
                except (TypeError, ValueError) as exc:
                    policy.reject(line_number, str(exc))
                    continue
                if report is not None:
                    report.nodes_loaded += 1
            elif kind == "relationship":
                try:
                    source = node_ids[str(record["start"]["id"])]
                    target = node_ids[str(record["end"]["id"])]
                except (KeyError, TypeError):
                    policy.reject(
                        line_number,
                        "relationship references an unknown node",
                    )
                    continue
                label = record.get("label")
                try:
                    graph.add_edge(Edge(
                        id=next_edge_id,
                        source=source,
                        target=target,
                        labels=frozenset([label] if label else ()),
                        properties=dict(record.get("properties", {})),
                    ))
                except (TypeError, ValueError) as exc:
                    policy.reject(line_number, str(exc))
                    continue
                next_edge_id += 1
                if report is not None:
                    report.edges_loaded += 1
            else:
                policy.reject(
                    line_number, f"unknown APOC record type {kind!r}"
                )
    return graph


def _encode_cell(value: Any) -> str:
    """JSON-encode one CSV cell; absent properties become empty cells."""
    if value is None:
        return ""
    return json.dumps(value, default=str)


def _decode_cells(keys: list[str], cells: list[str]) -> dict[str, Any]:
    """Inverse of :func:`_encode_cell` over a property row."""
    properties: dict[str, Any] = {}
    for key, cell in zip(keys, cells):
        if cell == "":
            continue
        properties[key] = json.loads(cell)
    return properties
