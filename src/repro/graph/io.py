"""Graph serialization: JSON-lines and Neo4j-style CSV.

JSONL is the native interchange format (one record per line, explicit
``kind`` discriminator).  The CSV flavour mirrors the ``neo4j-admin import``
layout used by several of the paper's dataset distributions: a node file
with ``id``/``labels`` columns and an edge file with ``start``/``end``/
``type`` columns, property columns alongside.

Real dumps are dirty -- truncated lines, duplicate ids, dangling edge
endpoints -- so every loader takes an ``on_error`` policy:

* ``"raise"`` (default): the first malformed record raises
  :class:`ValueError` with ``path:line`` context, matching the strict
  historical behaviour;
* ``"skip"``: malformed records are dropped and loading continues (an
  optional :class:`IngestReport` still records what was dropped);
* ``"collect"``: like ``"skip"``, but a caller-supplied
  :class:`IngestReport` is mandatory so no rejection is ever silently
  lost -- each :class:`IngestError` carries the file path, 1-based line
  number and a human-readable reason.

A record rejected under ``skip``/``collect`` never partially mutates the
graph: parsing and validation happen before insertion, and the model's
own integrity errors (duplicate ids, unknown endpoints) are caught and
converted into :class:`IngestError` entries.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Protocol, Sequence

from repro.graph.model import Edge, Node, PropertyGraph

_ON_ERROR_POLICIES = ("raise", "skip", "collect")

#: Rows buffered before a chunk is handed to the sink in one call.
DEFAULT_CHUNK_ROWS = 2048

#: Approximate payload bytes buffered before a chunk flushes early.
#: Rows with fat properties (documents, blobs) would otherwise pin
#: ``DEFAULT_CHUNK_ROWS`` of them in memory at once, defeating the disk
#: backend's bounded-memory ingest; the byte cap keeps peak chunk size
#: independent of row width while small rows still batch by count.
DEFAULT_CHUNK_BYTES = 2 << 20


class GraphSink(Protocol):
    """Chunk-oriented insertion target of the streaming loaders.

    :class:`~repro.graph.model.PropertyGraph` satisfies this protocol
    directly (bulk :meth:`add_nodes` / :meth:`add_edges`), as does the
    disk backend's slab ingest sink -- the loaders never know whether
    rows land in RAM or on disk.  Each call inserts the accepted rows
    in order and returns ``(position, reason)`` pairs for rejected
    ones.
    """

    def add_nodes(self, nodes: Sequence[Node]) -> list[tuple[int, str]]:
        """Insert a node chunk; return per-position rejects."""
        ...

    def add_edges(self, edges: Sequence[Edge]) -> list[tuple[int, str]]:
        """Insert an edge chunk; return per-position rejects."""
        ...


@dataclass
class IngestError:
    """One rejected input record.

    Attributes:
        path: File the record came from.
        line: 1-based physical line number within that file.
        reason: Human-readable cause of the rejection.
    """

    path: str
    line: int
    reason: str

    def describe(self) -> str:
        """``path:line: reason`` -- the compiler-style one-liner."""
        return f"{self.path}:{self.line}: {self.reason}"


@dataclass
class IngestReport:
    """Outcome of a lenient (``skip``/``collect``) graph load.

    Attributes:
        errors: Every rejected record, in file order.
        nodes_loaded: Nodes successfully added to the graph.
        edges_loaded: Edges successfully added to the graph.
    """

    errors: list[IngestError] = field(default_factory=list)
    nodes_loaded: int = 0
    edges_loaded: int = 0

    @property
    def ok(self) -> bool:
        """True when no record was rejected."""
        return not self.errors

    def describe(self) -> str:
        """Multi-line summary: counts first, then one line per error."""
        lines = [
            f"loaded {self.nodes_loaded} nodes, {self.edges_loaded} edges; "
            f"rejected {len(self.errors)} records"
        ]
        lines.extend(error.describe() for error in self.errors)
        return "\n".join(lines)


class _ErrorPolicy:
    """Shared rejection handling for the loaders."""

    def __init__(
        self,
        path: str | Path,
        on_error: str,
        report: IngestReport | None,
    ) -> None:
        if on_error not in _ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR_POLICIES}, "
                f"got {on_error!r}"
            )
        if on_error == "collect" and report is None:
            raise ValueError(
                "on_error='collect' requires an IngestReport to collect into"
            )
        self.path = Path(path)
        self.on_error = on_error
        self.report = report
        #: Invoked before any reject is recorded.  The chunked ingest
        #: path points this at its flush so buffered earlier rows land
        #: (and report *their* rejects) first -- keeping error order and
        #: raise-mode behaviour identical to per-record insertion.  The
        #: hook may re-enter ``reject``; flushes clear their buffers
        #: before reporting, so re-entry is a no-op.
        self.flush_hook: Callable[[], None] | None = None

    def reject(self, line: int, reason: str) -> None:
        """Record one bad record; raise when the policy is strict."""
        if self.flush_hook is not None:
            self.flush_hook()
        if self.report is not None:
            self.report.errors.append(
                IngestError(str(self.path), line, reason)
            )
        if self.on_error == "raise":
            raise ValueError(f"{self.path}:{line}: {reason}")


class _ChunkedInserter:
    """Buffers parsed elements and hands kind-homogeneous chunks to a sink.

    The per-record ``graph.add_node`` / ``try``/``except`` round-trip
    of the original loaders dominated ingest time; this batches rows
    into ``chunk_rows``-sized chunks and lets the sink validate in one
    locals-bound loop.  A chunk flushes when full and whenever the
    record kind flips (nodes vs. edges), so insertion order -- and
    therefore integrity validation -- still follows file order exactly.
    Insert-time rejects are reported against the buffered line numbers;
    under ``on_error="raise"`` the first reject raises only once its
    chunk flushes, with the same message the per-record path produced.
    """

    def __init__(
        self,
        sink: GraphSink,
        policy: _ErrorPolicy,
        report: IngestReport | None,
        chunk_rows: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        self._sink = sink
        self._policy = policy
        self._report = report
        self._chunk_rows = chunk_rows
        self._chunk_bytes = chunk_bytes
        self._weight = 0
        self._lines: list[int] = []
        self._nodes: list[Node] = []
        self._edges: list[Edge] = []
        policy.flush_hook = self.flush

    def push_node(self, line_number: int, node: Node, weight: int = 0) -> bool:
        """Buffer one node; returns True when this filled a chunk.

        ``weight`` is the row's approximate payload size (the loaders
        pass the raw record length); a chunk flushes early once the
        accumulated weight reaches the byte cap.
        """
        if self._edges:
            self.flush()
        self._lines.append(line_number)
        self._nodes.append(node)
        self._weight += weight
        if (
            len(self._lines) >= self._chunk_rows
            or self._weight >= self._chunk_bytes
        ):
            self.flush()
            return True
        return False

    def push_edge(self, line_number: int, edge: Edge, weight: int = 0) -> bool:
        """Buffer one edge; returns True when this filled a chunk."""
        if self._nodes:
            self.flush()
        self._lines.append(line_number)
        self._edges.append(edge)
        self._weight += weight
        if (
            len(self._lines) >= self._chunk_rows
            or self._weight >= self._chunk_bytes
        ):
            self.flush()
            return True
        return False

    def flush(self) -> None:
        """Hand the buffered chunk to the sink and report its rejects."""
        lines = self._lines
        if not lines:
            return
        if self._nodes:
            chunk: Sequence[Node] | Sequence[Edge] = self._nodes
            rejects = self._sink.add_nodes(self._nodes)
            self._nodes = []
        else:
            chunk = self._edges
            rejects = self._sink.add_edges(self._edges)
            self._edges = []
        self._lines = []
        self._weight = 0
        if self._report is not None:
            loaded = len(chunk) - len(rejects)
            if isinstance(chunk[0], Node):
                self._report.nodes_loaded += loaded
            else:
                self._report.edges_loaded += loaded
        for position, reason in rejects:
            self._policy.reject(lines[position], reason)


def save_graph_jsonl(graph: PropertyGraph, path: str | Path) -> None:
    """Write a graph as JSON lines (nodes first, then edges)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for node in graph.nodes():
            record = {
                "kind": "node",
                "id": node.id,
                "labels": sorted(node.labels),
                "properties": dict(node.properties),
            }
            handle.write(json.dumps(record, default=str) + "\n")
        for edge in graph.edges():
            record = {
                "kind": "edge",
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "labels": sorted(edge.labels),
                "properties": dict(edge.properties),
            }
            handle.write(json.dumps(record, default=str) + "\n")


def _record_int(
    record: dict[str, Any],
    key: str,
    kind: str,
    policy: _ErrorPolicy,
    line_number: int,
) -> int | None:
    """Fetch an integer field, rejecting missing/non-integer values."""
    if key not in record:
        policy.reject(line_number, f"{kind} record missing {key!r}")
        return None
    value = record[key]
    try:
        return int(value)
    except (TypeError, ValueError):
        policy.reject(
            line_number, f"non-integer {kind} {key} {value!r}"
        )
        return None


def stream_graph_jsonl(
    path: str | Path,
    sink: GraphSink,
    on_error: str = "raise",
    report: IngestReport | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    start_line: int = 0,
    on_progress: Callable[[int], None] | None = None,
) -> int:
    """Stream a JSONL graph file into a :class:`GraphSink` in chunks.

    The workhorse behind :func:`load_graph_jsonl` and the disk
    backend's out-of-core ingest: rows are parsed one line at a time,
    buffered into ``chunk_rows``-sized chunks, and handed to the sink
    in file order -- peak memory is one chunk, never the file.

    Args:
        path: JSONL file to read.
        sink: Insertion target (a :class:`PropertyGraph` or a slab
            ingest sink).
        on_error: ``"raise"`` | ``"skip"`` | ``"collect"`` (see module
            docstring).
        report: Sink for :class:`IngestError` records and load counts.
        chunk_rows: Rows buffered per sink call.
        start_line: Skip (without parsing) all lines up to and
            including this 1-based number -- how a resumed ingest fast
            forwards to its last committed position.
        on_progress: Called with the last fully processed line number
            after each full-chunk flush; everything up to that line has
            reached the sink, which is the disk backend's commit hook.

    Returns:
        The last 1-based line number processed (``start_line`` for an
        empty or fully skipped file).

    Raises:
        ValueError: A malformed record under ``on_error="raise"`` (the
            message carries ``path:line``), or an invalid policy.
        FileNotFoundError: The file does not exist.
    """
    path = Path(path)
    policy = _ErrorPolicy(path, on_error, report)
    inserter = _ChunkedInserter(sink, policy, report, chunk_rows)
    last_line = start_line
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if line_number <= start_line:
                continue
            last_line = line_number
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                policy.reject(line_number, f"invalid JSON: {exc.msg}")
                continue
            if not isinstance(record, dict):
                policy.reject(line_number, "record is not a JSON object")
                continue
            kind = record.get("kind")
            flushed = False
            if kind == "node":
                node_id = _record_int(
                    record, "id", "node", policy, line_number
                )
                if node_id is None:
                    continue
                try:
                    node = Node(
                        id=node_id,
                        labels=frozenset(record.get("labels", ())),
                        properties=dict(record.get("properties", {})),
                    )
                except (TypeError, ValueError):
                    policy.reject(line_number, "malformed node record")
                    continue
                flushed = inserter.push_node(line_number, node, len(line))
            elif kind == "edge":
                fields = [
                    _record_int(record, key, "edge", policy, line_number)
                    for key in ("id", "source", "target")
                ]
                if any(value is None for value in fields):
                    continue
                edge_id, source, target = fields
                try:
                    edge = Edge(
                        id=edge_id,
                        source=source,
                        target=target,
                        labels=frozenset(record.get("labels", ())),
                        properties=dict(record.get("properties", {})),
                    )
                except (TypeError, ValueError):
                    policy.reject(line_number, "malformed edge record")
                    continue
                flushed = inserter.push_edge(line_number, edge, len(line))
            else:
                policy.reject(
                    line_number, f"unknown record kind {kind!r}"
                )
            if flushed and on_progress is not None:
                on_progress(line_number)
    inserter.flush()
    return last_line


def load_graph_jsonl(
    path: str | Path,
    name: str | None = None,
    on_error: str = "raise",
    report: IngestReport | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph_jsonl`.

    Args:
        path: JSONL file to read.
        name: Graph name (defaults to the file stem).
        on_error: ``"raise"`` | ``"skip"`` | ``"collect"`` (see module
            docstring).
        report: Sink for :class:`IngestError` records and load counts;
            required when ``on_error="collect"``.
        chunk_rows: Rows handed to the graph per bulk insert.

    Raises:
        ValueError: A malformed record under ``on_error="raise"`` (the
            message carries ``path:line``), or an invalid policy.
        FileNotFoundError: The file does not exist.
    """
    path = Path(path)
    graph = PropertyGraph(name or path.stem)
    stream_graph_jsonl(
        path, graph, on_error=on_error, report=report,
        chunk_rows=chunk_rows,
    )
    return graph


def save_graph_csv(graph: PropertyGraph, nodes_path: str | Path,
                   edges_path: str | Path) -> None:
    """Write a graph as a node CSV and an edge CSV (Neo4j import layout).

    Property values are JSON-encoded so they round-trip with their types.
    Labels are ``;``-joined in a single column, as in Neo4j's bulk format.
    """
    node_keys = sorted(graph.node_property_keys())
    edge_keys = sorted(graph.edge_property_keys())
    with Path(nodes_path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "labels", *node_keys])
        for node in graph.nodes():
            row: list[str] = [str(node.id), ";".join(sorted(node.labels))]
            for key in node_keys:
                row.append(_encode_cell(node.properties.get(key)))
            writer.writerow(row)
    with Path(edges_path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "start", "end", "type", *edge_keys])
        for edge in graph.edges():
            row = [
                str(edge.id), str(edge.source), str(edge.target),
                ";".join(sorted(edge.labels)),
            ]
            for key in edge_keys:
                row.append(_encode_cell(edge.properties.get(key)))
            writer.writerow(row)


def _row_ints(
    row: list[str],
    count: int,
    kind: str,
    policy: _ErrorPolicy,
    line_number: int,
) -> list[int] | None:
    """Parse the leading ``count`` id cells of a CSV row as integers."""
    if len(row) <= count:
        policy.reject(line_number, f"truncated {kind} row")
        return None
    values: list[int] = []
    for cell in row[:count]:
        try:
            values.append(int(cell))
        except ValueError:
            policy.reject(
                line_number, f"non-integer {kind} id cell {cell!r}"
            )
            return None
    return values


def load_graph_csv(
    nodes_path: str | Path,
    edges_path: str | Path,
    name: str = "graph",
    on_error: str = "raise",
    report: IngestReport | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph_csv`.

    Accepts the same ``on_error`` / ``report`` policy as
    :func:`load_graph_jsonl`; rejected rows are reported against the
    file they came from (node or edge CSV) with their physical line
    number.
    """
    graph = PropertyGraph(name)
    node_policy = _ErrorPolicy(nodes_path, on_error, report)
    node_inserter = _ChunkedInserter(graph, node_policy, report, chunk_rows)
    with Path(nodes_path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        keys = header[2:]
        for row in reader:
            line_number = reader.line_num
            if not row:
                continue
            ids = _row_ints(row, 1, "node", node_policy, line_number)
            if ids is None:
                continue
            labels = frozenset(part for part in row[1].split(";") if part)
            try:
                properties = _decode_cells(keys, row[2:])
            except json.JSONDecodeError as exc:
                node_policy.reject(
                    line_number, f"invalid JSON property cell: {exc.msg}"
                )
                continue
            node_inserter.push_node(
                line_number, Node(ids[0], labels, properties)
            )
    node_inserter.flush()
    edge_policy = _ErrorPolicy(edges_path, on_error, report)
    edge_inserter = _ChunkedInserter(graph, edge_policy, report, chunk_rows)
    with Path(edges_path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        keys = header[4:]
        for row in reader:
            line_number = reader.line_num
            if not row:
                continue
            ids = _row_ints(row, 3, "edge", edge_policy, line_number)
            if ids is None:
                continue
            labels = frozenset(part for part in row[3].split(";") if part)
            try:
                properties = _decode_cells(keys, row[4:])
            except json.JSONDecodeError as exc:
                edge_policy.reject(
                    line_number, f"invalid JSON property cell: {exc.msg}"
                )
                continue
            edge_inserter.push_edge(line_number, Edge(
                ids[0], ids[1], ids[2], labels, properties,
            ))
    edge_inserter.flush()
    return graph


def load_graph_apoc_jsonl(
    path: str | Path,
    name: str | None = None,
    on_error: str = "raise",
    report: IngestReport | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> PropertyGraph:
    """Read a Neo4j ``apoc.export.json`` JSONL dump.

    APOC emits one JSON object per line with ``"type": "node"`` records
    (``id``, ``labels``, ``properties``) followed by
    ``"type": "relationship"`` records whose ``start``/``end`` are nested
    node references and whose relationship type is the ``label`` field.
    Node ids in the dump are strings; they are remapped to dense ints.
    Edge ids are dense too, and a rejected relationship does not consume
    one -- the next accepted relationship takes its id, exactly as when
    rows were inserted one at a time.

    Accepts the same ``on_error`` / ``report`` policy as
    :func:`load_graph_jsonl`.
    """
    path = Path(path)
    policy = _ErrorPolicy(path, on_error, report)
    graph = PropertyGraph(name or path.stem)
    node_ids: dict[str, int] = {}
    next_edge_id = 0
    node_lines: list[int] = []
    node_buffer: list[Node] = []
    rel_lines: list[int] = []
    rel_buffer: list[tuple[int, int, frozenset[str], dict[str, Any]]] = []

    def flush_nodes() -> None:
        if not node_buffer:
            return
        lines = node_lines[:]
        chunk = node_buffer[:]
        node_lines.clear()
        node_buffer.clear()
        rejects = graph.add_nodes(chunk)
        if report is not None:
            report.nodes_loaded += len(chunk) - len(rejects)
        for position, reason in rejects:
            policy.reject(lines[position], reason)

    def flush_relationships() -> None:
        # Relationships validate against the graph, so every node that
        # preceded them in the file must land first.
        nonlocal next_edge_id
        flush_nodes()
        if not rel_buffer:
            return
        lines = rel_lines[:]
        pending = rel_buffer[:]
        rel_lines.clear()
        rel_buffer.clear()
        edges: list[Edge] = []
        edge_lines: list[int] = []
        for line_number, parts in zip(lines, pending):
            source, target, labels, properties = parts
            # Pre-validate endpoints so a rejected relationship never
            # consumes an edge id (messages match PropertyGraph.add_edge).
            if not graph.has_node(source):
                policy.reject(
                    line_number,
                    f"edge {next_edge_id}: unknown source {source}",
                )
                continue
            if not graph.has_node(target):
                policy.reject(
                    line_number,
                    f"edge {next_edge_id}: unknown target {target}",
                )
                continue
            edges.append(Edge(
                id=next_edge_id,
                source=source,
                target=target,
                labels=labels,
                properties=properties,
            ))
            edge_lines.append(line_number)
            next_edge_id += 1
        rejects = graph.add_edges(edges)
        if report is not None:
            report.edges_loaded += len(edges) - len(rejects)
        for position, reason in rejects:
            policy.reject(edge_lines[position], reason)

    policy.flush_hook = flush_relationships
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                policy.reject(line_number, f"invalid JSON: {exc.msg}")
                continue
            if not isinstance(record, dict):
                policy.reject(line_number, "record is not a JSON object")
                continue
            kind = record.get("type")
            if kind == "node":
                if "id" not in record:
                    policy.reject(line_number, "node record missing 'id'")
                    continue
                raw_id = str(record["id"])
                node_id = node_ids.setdefault(raw_id, len(node_ids))
                try:
                    node = Node(
                        id=node_id,
                        labels=frozenset(record.get("labels", ())),
                        properties=dict(record.get("properties", {})),
                    )
                except (TypeError, ValueError) as exc:
                    policy.reject(line_number, str(exc))
                    continue
                if rel_buffer:
                    flush_relationships()
                node_lines.append(line_number)
                node_buffer.append(node)
                if len(node_buffer) >= chunk_rows:
                    flush_nodes()
            elif kind == "relationship":
                try:
                    source = node_ids[str(record["start"]["id"])]
                    target = node_ids[str(record["end"]["id"])]
                except (KeyError, TypeError):
                    policy.reject(
                        line_number,
                        "relationship references an unknown node",
                    )
                    continue
                label = record.get("label")
                try:
                    labels = frozenset([label] if label else ())
                    properties = dict(record.get("properties", {}))
                except (TypeError, ValueError) as exc:
                    policy.reject(line_number, str(exc))
                    continue
                rel_lines.append(line_number)
                rel_buffer.append((source, target, labels, properties))
                if len(rel_buffer) >= chunk_rows:
                    flush_relationships()
            else:
                policy.reject(
                    line_number, f"unknown APOC record type {kind!r}"
                )
    flush_relationships()
    return graph


def _encode_cell(value: Any) -> str:
    """JSON-encode one CSV cell; absent properties become empty cells."""
    if value is None:
        return ""
    return json.dumps(value, default=str)


def _decode_cells(keys: list[str], cells: list[str]) -> dict[str, Any]:
    """Inverse of :func:`_encode_cell` over a property row."""
    properties: dict[str, Any] = {}
    for key, cell in zip(keys, cells):
        if cell == "":
            continue
        properties[key] = json.loads(cell)
    return properties
