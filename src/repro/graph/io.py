"""Graph serialization: JSON-lines and Neo4j-style CSV.

JSONL is the native interchange format (one record per line, explicit
``kind`` discriminator).  The CSV flavour mirrors the ``neo4j-admin import``
layout used by several of the paper's dataset distributions: a node file
with ``id``/``labels`` columns and an edge file with ``start``/``end``/
``type`` columns, property columns alongside.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.graph.model import Edge, Node, PropertyGraph


def save_graph_jsonl(graph: PropertyGraph, path: str | Path) -> None:
    """Write a graph as JSON lines (nodes first, then edges)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for node in graph.nodes():
            record = {
                "kind": "node",
                "id": node.id,
                "labels": sorted(node.labels),
                "properties": dict(node.properties),
            }
            handle.write(json.dumps(record, default=str) + "\n")
        for edge in graph.edges():
            record = {
                "kind": "edge",
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "labels": sorted(edge.labels),
                "properties": dict(edge.properties),
            }
            handle.write(json.dumps(record, default=str) + "\n")


def load_graph_jsonl(path: str | Path, name: str | None = None) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph_jsonl`."""
    path = Path(path)
    graph = PropertyGraph(name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "node":
                graph.add_node(Node(
                    id=int(record["id"]),
                    labels=frozenset(record.get("labels", ())),
                    properties=dict(record.get("properties", {})),
                ))
            elif kind == "edge":
                graph.add_edge(Edge(
                    id=int(record["id"]),
                    source=int(record["source"]),
                    target=int(record["target"]),
                    labels=frozenset(record.get("labels", ())),
                    properties=dict(record.get("properties", {})),
                ))
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record kind {kind!r}"
                )
    return graph


def save_graph_csv(graph: PropertyGraph, nodes_path: str | Path,
                   edges_path: str | Path) -> None:
    """Write a graph as a node CSV and an edge CSV (Neo4j import layout).

    Property values are JSON-encoded so they round-trip with their types.
    Labels are ``;``-joined in a single column, as in Neo4j's bulk format.
    """
    node_keys = sorted(graph.node_property_keys())
    edge_keys = sorted(graph.edge_property_keys())
    with Path(nodes_path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "labels", *node_keys])
        for node in graph.nodes():
            row: list[str] = [str(node.id), ";".join(sorted(node.labels))]
            for key in node_keys:
                row.append(_encode_cell(node.properties.get(key)))
            writer.writerow(row)
    with Path(edges_path).open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "start", "end", "type", *edge_keys])
        for edge in graph.edges():
            row = [
                str(edge.id), str(edge.source), str(edge.target),
                ";".join(sorted(edge.labels)),
            ]
            for key in edge_keys:
                row.append(_encode_cell(edge.properties.get(key)))
            writer.writerow(row)


def load_graph_csv(nodes_path: str | Path, edges_path: str | Path,
                   name: str = "graph") -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph_csv`."""
    graph = PropertyGraph(name)
    with Path(nodes_path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        keys = header[2:]
        for row in reader:
            labels = frozenset(part for part in row[1].split(";") if part)
            properties = _decode_cells(keys, row[2:])
            graph.add_node(Node(int(row[0]), labels, properties))
    with Path(edges_path).open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        keys = header[4:]
        for row in reader:
            labels = frozenset(part for part in row[3].split(";") if part)
            properties = _decode_cells(keys, row[4:])
            graph.add_edge(Edge(
                int(row[0]), int(row[1]), int(row[2]), labels, properties,
            ))
    return graph


def load_graph_apoc_jsonl(
    path: str | Path, name: str | None = None
) -> PropertyGraph:
    """Read a Neo4j ``apoc.export.json`` JSONL dump.

    APOC emits one JSON object per line with ``"type": "node"`` records
    (``id``, ``labels``, ``properties``) followed by
    ``"type": "relationship"`` records whose ``start``/``end`` are nested
    node references and whose relationship type is the ``label`` field.
    Node ids in the dump are strings; they are remapped to dense ints.
    """
    path = Path(path)
    graph = PropertyGraph(name or path.stem)
    node_ids: dict[str, int] = {}
    next_edge_id = 0
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "node":
                raw_id = str(record["id"])
                node_id = node_ids.setdefault(raw_id, len(node_ids))
                graph.add_node(Node(
                    id=node_id,
                    labels=frozenset(record.get("labels", ())),
                    properties=dict(record.get("properties", {})),
                ))
            elif kind == "relationship":
                source = node_ids[str(record["start"]["id"])]
                target = node_ids[str(record["end"]["id"])]
                label = record.get("label")
                graph.add_edge(Edge(
                    id=next_edge_id,
                    source=source,
                    target=target,
                    labels=frozenset([label] if label else ()),
                    properties=dict(record.get("properties", {})),
                ))
                next_edge_id += 1
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown APOC record type {kind!r}"
                )
    return graph


def _encode_cell(value: Any) -> str:
    """JSON-encode one CSV cell; absent properties become empty cells."""
    if value is None:
        return ""
    return json.dumps(value, default=str)


def _decode_cells(keys: list[str], cells: list[str]) -> dict[str, Any]:
    """Inverse of :func:`_encode_cell` over a property row."""
    properties: dict[str, Any] = {}
    for key, cell in zip(keys, cells):
        if cell == "":
            continue
        properties[key] = json.loads(cell)
    return properties
