"""Property graph substrate.

This subpackage implements the property graph data model of the paper
(Definition 3.1): a directed multigraph whose nodes and edges carry label
sets and key-value properties.  It replaces the Neo4j storage layer used by
the original PG-HIVE implementation with two interchangeable backends
behind the :class:`BaseGraphStore` contract -- the in-memory
:class:`GraphStore` and the out-of-core :class:`DiskGraphStore`, whose
memory-mapped slab files let ingest and discovery run without ever holding
the graph in RAM.  Both stream the same batches of (labels, properties,
endpoints) records, byte-identically.
"""

from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.builder import GraphBuilder
from repro.graph.store import BaseGraphStore, GraphStore
from repro.graph.slab import SlabCorruptionError, SlabReader, SlabWriter
from repro.graph.scrub import (
    FileVerdict,
    RepairReport,
    ScrubReport,
    repair_slab_directory,
    scrub_slab_directory,
)
from repro.graph.diskstore import (
    DiskGraphStore,
    SlabIngestError,
    SlabIngestSink,
    ingest_jsonl_slabs,
    is_slab_directory,
    write_graph_to_slabs,
)
from repro.graph.patterns import (
    EdgePattern,
    NodePattern,
    edge_pattern_of,
    extract_patterns,
    node_pattern_of,
)
from repro.graph.stats import GraphStatistics, compute_statistics
from repro.graph.io import (
    GraphSink,
    IngestError,
    IngestReport,
    load_graph_apoc_jsonl,
    load_graph_csv,
    load_graph_jsonl,
    save_graph_csv,
    save_graph_jsonl,
    stream_graph_jsonl,
)
from repro.graph.query import Traversal, match_edges, match_nodes, match_pattern

# NOTE: repro.graph.planner is intentionally NOT imported here -- it layers
# on repro.schema (for statistics), and importing it at package level would
# create a cycle.  Import it explicitly: ``from repro.graph.planner import
# plan_pattern``.

__all__ = [
    "BaseGraphStore",
    "DiskGraphStore",
    "Edge",
    "EdgePattern",
    "FileVerdict",
    "GraphBuilder",
    "GraphSink",
    "GraphStatistics",
    "GraphStore",
    "IngestError",
    "IngestReport",
    "Node",
    "NodePattern",
    "PropertyGraph",
    "RepairReport",
    "ScrubReport",
    "SlabCorruptionError",
    "SlabIngestError",
    "SlabIngestSink",
    "SlabReader",
    "SlabWriter",
    "compute_statistics",
    "edge_pattern_of",
    "extract_patterns",
    "Traversal",
    "ingest_jsonl_slabs",
    "is_slab_directory",
    "load_graph_apoc_jsonl",
    "load_graph_csv",
    "load_graph_jsonl",
    "match_edges",
    "match_nodes",
    "match_pattern",
    "node_pattern_of",
    "repair_slab_directory",
    "save_graph_csv",
    "save_graph_jsonl",
    "scrub_slab_directory",
    "stream_graph_jsonl",
    "write_graph_to_slabs",
]
