"""Property graph substrate.

This subpackage implements the property graph data model of the paper
(Definition 3.1): a directed multigraph whose nodes and edges carry label
sets and key-value properties.  It replaces the Neo4j storage layer used by
the original PG-HIVE implementation with an in-memory :class:`GraphStore`
that exposes the same contract the algorithm needs -- streaming batches of
(labels, properties, endpoints) records.
"""

from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.graph.patterns import (
    EdgePattern,
    NodePattern,
    edge_pattern_of,
    extract_patterns,
    node_pattern_of,
)
from repro.graph.stats import GraphStatistics, compute_statistics
from repro.graph.io import (
    IngestError,
    IngestReport,
    load_graph_apoc_jsonl,
    load_graph_csv,
    load_graph_jsonl,
    save_graph_csv,
    save_graph_jsonl,
)
from repro.graph.query import Traversal, match_edges, match_nodes, match_pattern

# NOTE: repro.graph.planner is intentionally NOT imported here -- it layers
# on repro.schema (for statistics), and importing it at package level would
# create a cycle.  Import it explicitly: ``from repro.graph.planner import
# plan_pattern``.

__all__ = [
    "Edge",
    "EdgePattern",
    "GraphBuilder",
    "GraphStatistics",
    "GraphStore",
    "IngestError",
    "IngestReport",
    "Node",
    "NodePattern",
    "PropertyGraph",
    "compute_statistics",
    "edge_pattern_of",
    "extract_patterns",
    "Traversal",
    "load_graph_apoc_jsonl",
    "load_graph_csv",
    "load_graph_jsonl",
    "match_edges",
    "match_nodes",
    "match_pattern",
    "node_pattern_of",
    "save_graph_csv",
    "save_graph_jsonl",
]
