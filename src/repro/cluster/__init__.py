"""Clustering substrate.

Contains the generic clustering machinery that both PG-HIVE and the
baselines build on:

* :class:`GaussianMixture` -- diagonal-covariance GMM fitted with EM, with
  BIC-based model selection (:func:`select_components_bic`) and a divisive
  hierarchical wrapper (:class:`DivisiveGMM`).  This is the substrate the
  GMMSchema baseline [15] runs on.
* :func:`agglomerative_cluster` -- average-linkage agglomerative clustering
  with a distance threshold, used for small representative sets.
* Cluster quality metrics (purity, pairwise precision/recall/F1).
"""

from repro.cluster.gmm import (
    DivisiveGMM,
    GaussianMixture,
    select_components_bic,
)
from repro.cluster.hierarchical import agglomerative_cluster
from repro.cluster.quality import pairwise_f1, purity

__all__ = [
    "DivisiveGMM",
    "GaussianMixture",
    "agglomerative_cluster",
    "pairwise_f1",
    "purity",
    "select_components_bic",
]
