"""Cluster quality metrics.

These are internal diagnostics used by tests and ablations.  The paper's
headline metric (majority-based F1*) lives in :mod:`repro.evaluation.f1star`
because it needs type-level bookkeeping; the functions here operate directly
on assignment arrays.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable, Sequence

import numpy as np


def purity(assignment: Sequence[int], truth: Sequence[Hashable]) -> float:
    """Fraction of elements whose cluster's majority truth label matches.

    Equivalently the accuracy of predicting each element's class as its
    cluster majority.  Returns 1.0 for empty input (vacuously pure).
    """
    if len(assignment) != len(truth):
        raise ValueError("assignment and truth must align")
    if not len(assignment):
        return 1.0
    by_cluster: dict[int, Counter[Hashable]] = defaultdict(Counter)
    for cluster, label in zip(assignment, truth):
        by_cluster[int(cluster)][label] += 1
    correct = sum(counts.most_common(1)[0][1] for counts in by_cluster.values())
    return correct / len(assignment)


def pairwise_f1(
    assignment: Sequence[int], truth: Sequence[Hashable]
) -> tuple[float, float, float]:
    """Pairwise precision, recall and F1 of a clustering.

    A pair of elements is a true positive when they share both a cluster and
    a ground-truth class.  Computed from per-group counts rather than
    explicit pair enumeration, so it is O(n + g^2) not O(n^2).
    """
    if len(assignment) != len(truth):
        raise ValueError("assignment and truth must align")
    n = len(assignment)
    if n == 0:
        return 1.0, 1.0, 1.0
    cluster_sizes: Counter[int] = Counter()
    class_sizes: Counter[Hashable] = Counter()
    joint: Counter[tuple[int, Hashable]] = Counter()
    for cluster, label in zip(assignment, truth):
        cluster_sizes[int(cluster)] += 1
        class_sizes[label] += 1
        joint[(int(cluster), label)] += 1
    pairs_same_cluster = sum(_choose2(v) for v in cluster_sizes.values())
    pairs_same_class = sum(_choose2(v) for v in class_sizes.values())
    pairs_both = sum(_choose2(v) for v in joint.values())
    precision = pairs_both / pairs_same_cluster if pairs_same_cluster else 1.0
    recall = pairs_both / pairs_same_class if pairs_same_class else 1.0
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def cluster_size_histogram(assignment: Sequence[int]) -> dict[int, int]:
    """Map cluster size -> how many clusters have that size."""
    sizes = Counter(int(c) for c in assignment)
    histogram: Counter[int] = Counter(sizes.values())
    return dict(sorted(histogram.items()))


def num_clusters(assignment: Sequence[int] | np.ndarray) -> int:
    """Number of distinct cluster ids in an assignment."""
    return len({int(c) for c in assignment})


def _choose2(count: int) -> int:
    """Binomial coefficient C(count, 2)."""
    return count * (count - 1) // 2
