"""Gaussian Mixture Model with EM, BIC model selection, divisive wrapper.

The GMMSchema baseline [15] clusters node feature vectors with hierarchical
GMM clustering.  scikit-learn is not available in this environment, so this
module implements the required pieces from scratch in numpy:

* :class:`GaussianMixture` -- diagonal covariance, k-means++-style
  initialization, EM until log-likelihood convergence;
* :func:`select_components_bic` -- scan component counts and keep the model
  with the lowest Bayesian information criterion;
* :class:`DivisiveGMM` -- hierarchical top-down clustering: recursively
  split a cluster into two with a 2-component GMM while the split improves
  BIC, producing a tree of clusters whose leaves are the final assignment.

Diagonal covariances are the right model here: the feature vectors are
embeddings concatenated with binary property indicators, and GMMSchema's
documented failure mode (misclustering once noise widens the per-property
distributions) emerges naturally from this formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_MIN_VARIANCE = 1e-4
_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class GMMFitResult:
    """Outcome of one EM fit."""

    weights: np.ndarray
    means: np.ndarray
    variances: np.ndarray
    log_likelihood: float
    iterations: int
    converged: bool


class GaussianMixture:
    """Diagonal-covariance Gaussian mixture fitted with EM.

    Args:
        n_components: Number of mixture components ``k``.
        max_iter: EM iteration cap.
        tol: Convergence threshold on mean log-likelihood improvement.
        seed: RNG seed for initialization.
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 100,
        tol: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = int(seed)
        self._result: GMMFitResult | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "GaussianMixture":
        """Run EM on an (n, d) matrix; raises if n < n_components."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        if n < self.n_components:
            raise ValueError(
                f"need at least {self.n_components} points, got {n}"
            )
        means = self._init_means(data)
        means, variances, weights = self._kmeans_warmup(data, means)
        previous = -np.inf
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            log_resp, log_likelihood = self._e_step(data, weights, means, variances)
            weights, means, variances = self._m_step(data, log_resp)
            if abs(log_likelihood - previous) < self.tol * max(1.0, abs(previous)):
                converged = True
                previous = log_likelihood
                break
            previous = log_likelihood
        self._result = GMMFitResult(
            weights, means, variances, previous, iteration, converged
        )
        return self

    def _init_means(self, data: np.ndarray) -> np.ndarray:
        """k-means++-style seeding: spread initial means apart."""
        rng = np.random.default_rng(self.seed)
        n = data.shape[0]
        chosen = [int(rng.integers(n))]
        while len(chosen) < self.n_components:
            diffs = data[:, None, :] - data[chosen][None, :, :]
            d2 = np.square(diffs).sum(axis=2).min(axis=1)
            total = float(d2.sum())
            if total <= 0:
                chosen.append(int(rng.integers(n)))
                continue
            chosen.append(int(rng.choice(n, p=d2 / total)))
        return data[chosen].copy()

    def _kmeans_warmup(
        self, data: np.ndarray, means: np.ndarray, iterations: int = 5
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """A few Lloyd iterations to harden the initialization.

        Soft EM from wide spherical variances collapses nearby seeds (e.g.
        components that differ in a single scalar dimension); hard k-means
        assignment keeps them apart and yields per-component, per-dimension
        starting variances.
        """
        k = means.shape[0]
        assignment = np.zeros(data.shape[0], dtype=np.int64)
        for _ in range(iterations):
            d2 = (
                np.square(data).sum(axis=1)[:, None]
                - 2.0 * data @ means.T
                + np.square(means).sum(axis=1)[None, :]
            )
            assignment = np.argmin(d2, axis=1)
            for component in range(k):
                mask = assignment == component
                if mask.any():
                    means[component] = data[mask].mean(axis=0)
        variances = np.empty_like(means)
        weights = np.empty(k)
        for component in range(k):
            mask = assignment == component
            if mask.any():
                variances[component] = np.maximum(
                    data[mask].var(axis=0), _MIN_VARIANCE
                )
                weights[component] = mask.mean()
            else:
                variances[component] = np.maximum(
                    data.var(axis=0), _MIN_VARIANCE
                )
                weights[component] = 1.0 / data.shape[0]
        weights = weights / weights.sum()
        return means, variances, weights

    def _e_step(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        means: np.ndarray,
        variances: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Log responsibilities and total mean log-likelihood."""
        log_prob = self._log_component_densities(data, means, variances)
        weighted = log_prob + np.log(weights)[None, :]
        norm = _logsumexp(weighted, axis=1)
        log_resp = weighted - norm[:, None]
        return log_resp, float(norm.mean())

    @staticmethod
    def _m_step(
        data: np.ndarray, log_resp: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Re-estimate weights, means and diagonal variances."""
        resp = np.exp(log_resp)
        counts = resp.sum(axis=0) + 1e-12
        weights = counts / counts.sum()
        means = (resp.T @ data) / counts[:, None]
        second_moment = (resp.T @ np.square(data)) / counts[:, None]
        variances = np.maximum(second_moment - np.square(means), _MIN_VARIANCE)
        return weights, means, variances

    @staticmethod
    def _log_component_densities(
        data: np.ndarray, means: np.ndarray, variances: np.ndarray
    ) -> np.ndarray:
        """(n, k) matrix of per-component log densities."""
        n, d = data.shape
        k = means.shape[0]
        out = np.empty((n, k))
        for component in range(k):
            diff = data - means[component]
            var = variances[component]
            out[:, component] = -0.5 * (
                d * _LOG_2PI
                + np.log(var).sum()
                + (np.square(diff) / var).sum(axis=1)
            )
        return out

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, data: np.ndarray) -> np.ndarray:
        """Hard component assignment for each row."""
        result = self._require_fit()
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        log_prob = self._log_component_densities(
            data, result.means, result.variances
        )
        weighted = log_prob + np.log(result.weights)[None, :]
        return np.argmax(weighted, axis=1)

    def score(self, data: np.ndarray) -> float:
        """Mean log-likelihood of the data under the fitted model."""
        result = self._require_fit()
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        log_prob = self._log_component_densities(
            data, result.means, result.variances
        )
        weighted = log_prob + np.log(result.weights)[None, :]
        return float(_logsumexp(weighted, axis=1).mean())

    def bic(self, data: np.ndarray) -> float:
        """Bayesian information criterion (lower is better)."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        # weights (k-1) + means (k*d) + diagonal variances (k*d)
        n_params = (self.n_components - 1) + 2 * self.n_components * d
        return -2.0 * self.score(data) * n + n_params * float(np.log(max(n, 2)))

    @property
    def result(self) -> GMMFitResult:
        """The fit result (raises if not yet fitted)."""
        return self._require_fit()

    def _require_fit(self) -> GMMFitResult:
        if self._result is None:
            raise RuntimeError("GaussianMixture has not been fitted")
        return self._result


def select_components_bic(
    data: np.ndarray,
    k_min: int = 1,
    k_max: int = 10,
    seed: int = 0,
    max_iter: int = 100,
) -> tuple[GaussianMixture, list[float]]:
    """Fit GMMs for k in [k_min, k_max] and keep the lowest-BIC model.

    Returns:
        ``(best_model, bic_scores)`` where ``bic_scores[i]`` is the BIC of
        ``k = k_min + i`` (``inf`` for k values that could not be fitted).
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    best: GaussianMixture | None = None
    best_bic = np.inf
    scores: list[float] = []
    for k in range(k_min, k_max + 1):
        if k > data.shape[0]:
            scores.append(float("inf"))
            continue
        model = GaussianMixture(k, max_iter=max_iter, seed=seed + k).fit(data)
        bic = model.bic(data)
        scores.append(bic)
        if bic < best_bic:
            best, best_bic = model, bic
    if best is None:
        raise ValueError("no GMM could be fitted (empty data?)")
    return best, scores


class DivisiveGMM:
    """Hierarchical top-down GMM clustering.

    Starting from one cluster containing everything, repeatedly fit a
    2-component GMM to each leaf and keep the split when it lowers BIC
    relative to the unsplit model.  This reproduces the "hierarchical
    clustering based on Gaussian Mixture Models" of GMMSchema [15].

    Args:
        min_cluster_size: Leaves smaller than this are never split.
        max_depth: Recursion cap (protects against pathological data).
        seed: RNG seed.
    """

    def __init__(
        self,
        min_cluster_size: int = 4,
        max_depth: int = 12,
        seed: int = 0,
        max_iter: int = 60,
    ) -> None:
        self.min_cluster_size = int(min_cluster_size)
        self.max_depth = int(max_depth)
        self.seed = int(seed)
        self.max_iter = int(max_iter)
        self.num_em_fits = 0

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Cluster an (n, d) matrix; returns dense cluster ids."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n = data.shape[0]
        assignment = np.zeros(n, dtype=np.int64)
        if n == 0:
            return assignment
        self.num_em_fits = 0
        next_id = [1]
        self._split(data, np.arange(n), assignment, next_id, depth=0)
        return _dense_ids(assignment)

    def _split(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        assignment: np.ndarray,
        next_id: list[int],
        depth: int,
    ) -> None:
        """Recursively attempt to split one leaf."""
        if depth >= self.max_depth or indices.size < 2 * self.min_cluster_size:
            return
        subset = data[indices]
        if _is_degenerate(subset):
            return
        one = GaussianMixture(1, max_iter=self.max_iter, seed=self.seed).fit(subset)
        two = GaussianMixture(
            2, max_iter=self.max_iter, seed=self.seed + depth + 1
        ).fit(subset)
        self.num_em_fits += 2
        if two.bic(subset) >= one.bic(subset):
            return
        halves = two.predict(subset)
        left = indices[halves == 0]
        right = indices[halves == 1]
        if left.size < self.min_cluster_size or right.size < self.min_cluster_size:
            return
        new_cluster = next_id[0]
        next_id[0] += 1
        assignment[right] = new_cluster
        self._split(data, left, assignment, next_id, depth + 1)
        self._split(data, right, assignment, next_id, depth + 1)


def _is_degenerate(data: np.ndarray) -> bool:
    """True when all rows are (numerically) identical."""
    return bool(np.allclose(data, data[0], atol=1e-12))


def _dense_ids(assignment: np.ndarray) -> np.ndarray:
    """Renumber cluster ids densely in first-appearance order."""
    remap: dict[int, int] = {}
    out = np.empty_like(assignment)
    for index, value in enumerate(assignment.tolist()):
        out[index] = remap.setdefault(int(value), len(remap))
    return out


def _logsumexp(matrix: np.ndarray, axis: int) -> np.ndarray:
    """Stable log-sum-exp along an axis."""
    peak = matrix.max(axis=axis, keepdims=True)
    return (
        np.log(np.exp(matrix - peak).sum(axis=axis)) + peak.squeeze(axis)
    )
