"""Average-linkage agglomerative clustering with a distance threshold.

Used on small collections (cluster representatives, baseline merge steps)
where the quadratic cost is acceptable.  The implementation maintains an
explicit distance matrix and merges the closest pair until the minimum
pairwise distance exceeds the threshold.
"""

from __future__ import annotations

import numpy as np


def agglomerative_cluster(
    data: np.ndarray, threshold: float
) -> np.ndarray:
    """Cluster rows of an (n, d) matrix by average-linkage agglomeration.

    Args:
        data: Points to cluster.
        threshold: Stop merging once the closest pair of clusters is farther
            apart (Euclidean, average linkage) than this.

    Returns:
        Dense cluster ids aligned with the input rows.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    centroids: dict[int, np.ndarray] = {i: data[i].copy() for i in range(n)}
    active = set(range(n))
    while len(active) > 1:
        best_pair: tuple[int, int] | None = None
        best_distance = threshold
        items = sorted(active)
        for pos, a in enumerate(items):
            ca = centroids[a]
            for b in items[pos + 1:]:
                distance = float(np.linalg.norm(ca - centroids[b]))
                if distance <= best_distance:
                    best_pair = (a, b)
                    best_distance = distance
        if best_pair is None:
            break
        a, b = best_pair
        size_a, size_b = len(members[a]), len(members[b])
        centroids[a] = (
            centroids[a] * size_a + centroids[b] * size_b
        ) / (size_a + size_b)
        members[a].extend(members[b])
        del members[b], centroids[b]
        active.discard(b)
    assignment = np.empty(n, dtype=np.int64)
    for cluster_id, root in enumerate(sorted(active)):
        for index in members[root]:
            assignment[index] = cluster_id
    return assignment
