"""Rule model and registry for ``pghive-lint``.

Two rule shapes exist:

* :class:`FileRule` -- checks one parsed module at a time (an
  :class:`ast.Module` plus its source).  Most determinism and hygiene
  rules are file rules; they can restrict themselves to package
  subdirectories via :attr:`FileRule.dirs`.
* :class:`ProjectRule` -- checks the whole lint target at once, for
  cross-file surface invariants (config fields vs. CLI flags, env vars
  vs. docs, ``__init__`` re-exports).

Rules self-register through the :func:`register` decorator so the CLI,
the engine, and the docs generator all see one canonical rule list.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Type, TypeVar

from repro.analysis.findings import Finding, Severity

__all__ = [
    "FileRule",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]


@dataclass
class ModuleContext:
    """One parsed source module handed to file rules."""

    path: Path
    relpath: str  # posix, relative to the lint target root (e.g. "core/config.py")
    tree: ast.Module
    source: str

    @property
    def package_relpath(self) -> str:
        """Path relative to the ``repro`` package when linting the repo.

        When the lint target *is* the package (the normal case),
        ``relpath`` already is package-relative; fixture projects mirror
        the same layout, so the two coincide.
        """
        return self.relpath


@dataclass
class ProjectContext:
    """The whole lint target, for cross-file rules."""

    root: Path
    modules: list[ModuleContext] = field(default_factory=list)
    #: Scratch space shared by project rules within one engine run; the
    #: interprocedural rules park the call graph and effect summaries
    #: here so the whole-program analysis is built once, not per rule.
    cache: dict[str, object] = field(default_factory=dict)

    def module(self, suffix: str) -> ModuleContext | None:
        """The unique module whose relpath equals or ends with ``suffix``."""
        matches = [
            m for m in self.modules
            if m.relpath == suffix or m.relpath.endswith("/" + suffix)
        ]
        if not matches:
            return None
        # Prefer the shallowest match so "cli.py" finds the package-level
        # CLI, not some nested helper of the same name.
        return min(matches, key=lambda m: (m.relpath.count("/"), m.relpath))

    def doc_text(self, relative: str) -> str | None:
        """Read a docs file (e.g. ``docs/API.md``) near the lint root.

        Looks in the root itself, then up to three parents, so linting
        ``src/repro`` inside the repo finds the repo-level ``docs/``
        while fixture projects can keep theirs next to the sources.
        """
        base = self.root
        for _ in range(4):
            candidate = base / relative
            if candidate.is_file():
                return candidate.read_text(encoding="utf-8")
            if base.parent == base:
                break
            base = base.parent
        return None


class Rule:
    """Base class: one named invariant check."""

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""


class FileRule(Rule):
    """A rule that inspects one module at a time."""

    #: Restrict to these package-relative directory prefixes (posix, with
    #: trailing slash), or ``None`` for every module.
    dirs: tuple[str, ...] | None = None
    #: Package-relative module paths exempt from this rule.
    exempt: tuple[str, ...] = ()

    def applies_to(self, module: ModuleContext) -> bool:
        rel = module.package_relpath
        if rel in self.exempt:
            return False
        if self.dirs is None:
            return True
        return any(rel.startswith(prefix) for prefix in self.dirs)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that inspects the whole lint target at once."""

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        project: ProjectContext,
        message: str,
        *,
        path: Path | None = None,
        line: int = 1,
    ) -> Finding:
        return Finding(
            path=str(path if path is not None else project.root),
            line=line,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}

R = TypeVar("R", bound=Rule)


def register(cls: Type[R]) -> Type[R]:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by name (deterministic output)."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rule(name: str) -> Rule:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown rule {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
