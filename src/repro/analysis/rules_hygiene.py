"""Hygiene rules: hazards that undermine the other invariants sideways.

* ``bare-except`` -- ``except:`` swallows ``KeyboardInterrupt`` /
  ``SystemExit`` and hides the shard-failure classification the
  recovery runtime depends on; always catch a concrete type.
* ``mutable-default`` -- a mutable default argument is shared across
  calls *and across pool workers after fork*, a classic way for state
  to leak between shards.
* ``assert-ban`` -- ``assert`` disappears under ``python -O``; a
  load-bearing check in ``core/`` or ``schema/`` must be an explicit
  ``raise`` so optimized runs keep the same behaviour.
* ``missing-annotations`` -- the local enforcement arm of the
  ``mypy --strict`` CI gate: every function is fully annotated, so
  strict mode has something to check and the payload/pickle analysis
  has types to read.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import build_import_table, resolve_dotted
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import FileRule, ModuleContext, register


@register
class BareExceptRule(FileRule):
    name = "bare-except"
    description = "except: without an exception type is banned"
    rationale = (
        "a bare except swallows KeyboardInterrupt/SystemExit and "
        "misclassifies shard failures the recovery runtime needs to "
        "see; catch the concrete exception (or Exception, explicitly)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node,
                    "bare except:; name the exception type being handled",
                )


@register
class MutableDefaultRule(FileRule):
    name = "mutable-default"
    description = "mutable default arguments ([], {}, set()) are banned"
    rationale = (
        "a mutable default is evaluated once and shared by every call "
        "-- and by every fork-inherited worker -- so per-shard state "
        "leaks across shards; default to None and allocate inside"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_table(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, imports):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {name!r}; use "
                        f"None and allocate per call",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr, imports: dict[str, str]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            origin = resolve_dotted(node.func, imports)
            return origin in (
                "list", "dict", "set", "bytearray",
                "collections.defaultdict", "collections.Counter",
                "collections.deque", "collections.OrderedDict",
            )
        return False


@register
class AssertBanRule(FileRule):
    name = "assert-ban"
    description = (
        "assert statements in core/ and schema/ are banned (stripped "
        "under python -O)"
    )
    rationale = (
        "python -O removes assert statements, so a load-bearing check "
        "silently vanishes in optimized deployments; raise an explicit "
        "exception with a message instead"
    )
    dirs = ("core/", "schema/")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module, node,
                    "assert statement vanishes under python -O; raise "
                    "an explicit exception with a message",
                )


@register
class MissingAnnotationsRule(FileRule):
    name = "missing-annotations"
    severity = Severity.WARNING
    description = (
        "every function needs a return annotation and annotations on "
        "all parameters (self/cls excluded)"
    )
    rationale = (
        "the CI typing gate runs mypy --strict over src/repro; an "
        "unannotated def is invisible to it, and the payload "
        "pickle-safety analysis reads the same annotations"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.returns is None:
                yield self.finding(
                    module, node,
                    f"function {node.name!r} has no return annotation",
                )
            args = node.args
            positional = args.posonlyargs + args.args
            for index, arg in enumerate(positional):
                if index == 0 and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    yield self.finding(
                        module, arg,
                        f"parameter {arg.arg!r} of {node.name!r} has no "
                        f"annotation",
                    )
            for arg in args.kwonlyargs:
                if arg.annotation is None:
                    yield self.finding(
                        module, arg,
                        f"parameter {arg.arg!r} of {node.name!r} has no "
                        f"annotation",
                    )
            for arg in (args.vararg, args.kwarg):
                if arg is not None and arg.annotation is None:
                    yield self.finding(
                        module, arg,
                        f"parameter {arg.arg!r} of {node.name!r} has no "
                        f"annotation",
                    )
