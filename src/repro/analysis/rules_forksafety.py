"""Fork/pickle-safety rules for the parallel runtime.

The parallel driver (:mod:`repro.core.parallel`) promises that nothing
graph-sized and nothing unpicklable ever crosses the process-pool pipe:
workers receive tiny :class:`~repro.graph.store.ShardPlan` scalars or
compact :class:`~repro.core.columns.NodeColumns` /
:class:`~repro.core.columns.EdgeColumns` arrays and return per-shard
schemas.  Two rules keep that true statically:

* ``payload-pickle`` -- every type in :data:`POOL_PAYLOAD_TYPES` (the
  types annotated as crossing the pool boundary) must be a dataclass --
  or a plain class with fully annotated attributes -- whose fields are
  *transitively* primitives, containers of primitives, numpy arrays,
  enums, or other such payload-safe classes.  A ``GraphStore``, an open
  file, an executor or a lambda smuggled onto a payload field would
  either fail to pickle or drag the whole parent graph through the pipe.
* ``worker-closure`` -- functions submitted to a pool must be
  module-level (pickle-by-reference), never lambdas, nested closures or
  bound methods; and functions documented as workers (docstring starting
  with ``Worker:``) must not take parent-state parameters
  (``GraphStore``, ``PGHive``, executors) -- the sanctioned channel for
  fork-inherited state is the module-global ``_PARENT_STATE``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.astutil import (
    build_import_table,
    dotted_name,
    resolve_dotted,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    FileRule,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    register,
)

#: The types annotated as crossing the process-pool boundary.  Adding a
#: new payload type to the runtime means adding it here so its fields
#: stay statically pickle-checked.
POOL_PAYLOAD_TYPES = (
    "ShardPlan",
    "StreamShardPlan",
    "ColumnsHandle",
    "SlabRef",
    "ArrayRef",
    "AbsorptionEntry",
    "NodeColumns",
    "EdgeColumns",
    "ShardResult",
    "ShardFailure",
    "BatchReport",
    "SchemaGraph",
)

#: Annotation atoms always safe to pickle and fork-share.
SAFE_ATOMS = frozenset({
    "int", "float", "str", "bool", "bytes", "complex", "None",
    "NoneType",
})

#: Generic containers: safe when their parameters are (checked
#: recursively through the annotation's other names).
SAFE_CONTAINERS = frozenset({
    "list", "dict", "tuple", "set", "frozenset",
    "typing.Sequence", "typing.Mapping", "typing.MutableMapping",
    "typing.Optional", "typing.Union", "typing.Literal", "typing.Tuple",
    "typing.List", "typing.Dict", "typing.Set", "typing.FrozenSet",
    "collections.abc.Sequence", "collections.abc.Mapping",
    "Sequence", "Mapping", "MutableMapping", "Optional", "Union",
    "Literal",
})

#: Concrete non-dataclass types audited by hand as payload-safe.
#: collections.Counter pickles as a dict; numpy arrays use the buffer
#: protocol.
SAFE_CONCRETE = frozenset({
    "numpy.ndarray", "np.ndarray", "ndarray",
    "collections.Counter", "Counter",
})

#: Parameter annotations a worker function must never take: these are
#: parent-side state and would be pickled wholesale into the pipe.
PARENT_STATE_TYPES = frozenset({
    "GraphStore", "GraphStream", "PGHive", "ProcessPoolExecutor",
    "ThreadPoolExecutor", "Pool", "Executor",
})


@dataclass
class _ClassInfo:
    """AST facts about one class definition."""

    name: str
    module: ModuleContext
    lineno: int
    is_dataclass: bool
    is_enum: bool
    #: field name -> (annotation node or None, lineno)
    fields: dict[str, tuple[ast.expr | None, int]]


def _decorator_names(node: ast.ClassDef, imports: dict[str, str]) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        resolved = resolve_dotted(target, imports)
        if resolved:
            names.add(resolved)
    return names


def _base_names(node: ast.ClassDef, imports: dict[str, str]) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        resolved = resolve_dotted(base, imports)
        if resolved:
            names.add(resolved)
    return names


def _collect_classes(project: ProjectContext) -> dict[str, _ClassInfo]:
    """Index every class definition in the lint target by name.

    For dataclasses the fields are the class-body ``AnnAssign`` targets;
    for plain classes they are the annotated ``self.x: T = ...``
    assignments in ``__init__`` (falling back, for unannotated
    ``self.x = <param-or-constant>``, to the parameter annotation or the
    constant's type).
    """
    classes: dict[str, _ClassInfo] = {}
    for module in project.modules:
        imports = build_import_table(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorators = _decorator_names(node, imports)
            bases = _base_names(node, imports)
            is_dataclass = any(
                d in ("dataclasses.dataclass", "dataclass")
                for d in decorators
            )
            is_enum = any(
                b.startswith("enum.") or b in (
                    "Enum", "IntEnum", "StrEnum", "IntFlag", "Flag",
                )
                for b in bases
            )
            fields: dict[str, tuple[ast.expr | None, int]] = {}
            if is_dataclass:
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        fields[stmt.target.id] = (
                            stmt.annotation, stmt.lineno
                        )
            else:
                fields = _plain_class_fields(node)
            info = _ClassInfo(
                name=node.name,
                module=module,
                lineno=node.lineno,
                is_dataclass=is_dataclass,
                is_enum=is_enum,
                fields=fields,
            )
            # First definition wins; duplicate class names across modules
            # are rare and the payload types are unique in this tree.
            classes.setdefault(node.name, info)
    return classes


def _plain_class_fields(
    node: ast.ClassDef,
) -> dict[str, tuple[ast.expr | None, int]]:
    """Instance attributes assigned in ``__init__`` of a plain class."""
    fields: dict[str, tuple[ast.expr | None, int]] = {}
    init = next(
        (
            stmt for stmt in node.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
        ),
        None,
    )
    if init is None:
        return fields
    param_annotations = {
        arg.arg: arg.annotation
        for arg in init.args.args + init.args.kwonlyargs
        if arg.annotation is not None
    }
    for stmt in ast.walk(init):
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Attribute
        ) and isinstance(stmt.target.value, ast.Name) and \
                stmt.target.value.id == "self":
            fields[stmt.target.attr] = (stmt.annotation, stmt.lineno)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    annotation = _infer_assign_annotation(
                        stmt.value, param_annotations
                    )
                    fields.setdefault(
                        target.attr, (annotation, stmt.lineno)
                    )
    return fields


def _infer_assign_annotation(
    value: ast.expr, param_annotations: dict[str, ast.expr | None]
) -> ast.expr | None:
    """Annotation for ``self.x = value`` when it is a param or constant."""
    if isinstance(value, ast.Name) and value.id in param_annotations:
        return param_annotations[value.id]
    if isinstance(value, ast.Constant):
        type_name = type(value.value).__name__
        if type_name in ("int", "float", "str", "bool", "bytes"):
            return ast.Name(id=type_name, ctx=ast.Load())
        if value.value is None:
            return ast.Constant(value=None)
    return None


def _annotation_names(annotation: ast.expr) -> Iterator[tuple[str, str]]:
    """Every type reference in an annotation as (dotted, last segment).

    Handles subscripts, unions (both ``|`` and ``Union``), and string
    forward references (parsed recursively).  Attribute chains yield one
    dotted reference, never their inner pieces.
    """
    if isinstance(annotation, ast.Name):
        yield annotation.id, annotation.id
        return
    if isinstance(annotation, ast.Attribute):
        dotted = dotted_name(annotation)
        if dotted is not None:
            yield dotted, dotted.split(".")[-1]
            return
    if isinstance(annotation, ast.Constant):
        if isinstance(annotation.value, str):
            try:
                inner = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return
            yield from _annotation_names(inner)
        return
    for child in ast.iter_child_nodes(annotation):
        yield from _annotation_names(child)


@register
class PayloadPickleRule(ProjectRule):
    name = "payload-pickle"
    description = (
        "pool-boundary payload types must be dataclasses (or fully "
        "annotated plain classes) with transitively primitive/ndarray/"
        "enum/dataclass fields"
    )
    rationale = (
        "shard payloads are pickled into worker processes and back; a "
        "field holding a GraphStore, executor, file handle or lambda "
        "either fails to pickle or silently ships the whole parent "
        "graph through the pipe, destroying the plan-mode payload "
        "contract of repro.core.parallel"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        classes = _collect_classes(project)
        roots = [name for name in POOL_PAYLOAD_TYPES if name in classes]
        if not roots:
            return  # target tree has no payload types (e.g. fixtures)
        checked: set[str] = set()
        queue = list(roots)
        while queue:
            class_name = queue.pop(0)
            if class_name in checked:
                continue
            checked.add(class_name)
            info = classes[class_name]
            if info.is_enum:
                continue
            yield from self._check_fields(info, classes, queue)

    def _check_fields(
        self,
        info: _ClassInfo,
        classes: dict[str, _ClassInfo],
        queue: list[str],
    ) -> Iterator[Finding]:
        for field_name, (annotation, lineno) in sorted(info.fields.items()):
            if annotation is None:
                yield Finding(
                    path=str(info.module.path),
                    line=lineno,
                    rule=self.name,
                    message=(
                        f"{info.name}.{field_name} crosses the pool "
                        f"boundary but has no resolvable type annotation; "
                        f"annotate it so its pickle-safety is checkable"
                    ),
                    severity=self.severity,
                )
                continue
            seen: set[str] = set()
            for dotted, last in _annotation_names(annotation):
                if dotted in seen:
                    continue
                seen.add(dotted)
                if (
                    dotted in SAFE_ATOMS
                    or dotted in SAFE_CONTAINERS
                    or dotted in SAFE_CONCRETE
                    or last == "ndarray"
                ):
                    continue
                target = classes.get(last)
                if target is not None:
                    if target.is_enum:
                        continue
                    queue.append(last)
                    continue
                yield Finding(
                    path=str(info.module.path),
                    line=lineno,
                    rule=self.name,
                    message=(
                        f"{info.name}.{field_name} references "
                        f"{dotted!r}, which is not a known "
                        f"payload-safe type (primitive, container, "
                        f"ndarray, enum, or checked class); shard "
                        f"payloads must stay transitively picklable"
                    ),
                    severity=self.severity,
                )


@register
class WorkerClosureRule(FileRule):
    name = "worker-closure"
    description = (
        "pool.submit targets must be module-level functions, and "
        "worker functions must not take parent-state parameters"
    )
    rationale = (
        "a lambda, closure or bound method submitted to a process pool "
        "fails to pickle (or pickles its enclosing state wholesale), "
        "and a worker parameter typed GraphStore/PGHive would ship the "
        "parent graph through the pipe; fork-inherited state flows "
        "only through the sanctioned _PARENT_STATE module global"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        module_functions = {
            stmt.name
            for stmt in module.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested_functions = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name not in module_functions
        }
        imports = build_import_table(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr == "submit" and node.args:
                target = node.args[0]
                if isinstance(target, ast.Lambda):
                    yield self.finding(
                        module, target,
                        "lambda submitted to a pool cannot be pickled; "
                        "use a module-level function",
                    )
                elif isinstance(target, ast.Call) and resolve_dotted(
                    target.func, imports
                ) in ("functools.partial", "partial"):
                    yield self.finding(
                        module, target,
                        "functools.partial submitted to a pool may "
                        "capture unpicklable state; pass arguments "
                        "through submit() instead",
                    )
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    yield self.finding(
                        module, target,
                        "bound method submitted to a pool pickles the "
                        "whole instance; use a module-level function",
                    )
                elif isinstance(target, ast.Name) and \
                        target.id in nested_functions:
                    yield self.finding(
                        module, target,
                        f"nested function {target.id!r} submitted to a "
                        f"pool cannot be pickled by reference; move it "
                        f"to module level",
                    )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                docstring = ast.get_docstring(node)
                if docstring is None or not docstring.startswith("Worker:"):
                    continue
                for arg in (
                    node.args.args
                    + node.args.kwonlyargs
                    + node.args.posonlyargs
                ):
                    if arg.annotation is None:
                        continue
                    for _dotted, last in _annotation_names(arg.annotation):
                        if last in PARENT_STATE_TYPES:
                            yield self.finding(
                                module, arg,
                                f"worker function {node.name!r} takes a "
                                f"{last} parameter; parent state crosses "
                                f"only via fork inheritance "
                                f"(_PARENT_STATE), payloads stay "
                                f"plan/column-sized",
                            )
