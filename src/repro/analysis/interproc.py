"""Interprocedural effect summaries over the call graph.

Every function gets a summary in a join-semilattice:

* ``atoms`` -- the set of :class:`EffectAtom` sites transitively
  reachable from the function.  Kinds: ``clock`` (wall-clock reads),
  ``rng`` (unseeded randomness), ``env`` (environment reads), ``fs-read``
  / ``fs-write`` (filesystem), ``shm`` (mmap/SharedMemory/memmap
  construction), ``process`` (process control), ``sleep``,
  ``global-write`` (module-global mutation), ``dynamic-call`` (a call
  the graph could not resolve) and ``external`` (a call into a library
  outside the sanctioned allowlist);
* ``mutated_params`` -- indices of its own parameters it (transitively)
  mutates in place;
* ``raise_sites`` -- the exception types that can escape it, tracked as
  concrete ``raise`` sites and filtered through every enclosing
  ``try``/``except`` on the way up the call chain.

Propagation is a monotone worklist fixpoint: recompute a function's
summary from its intrinsic effects plus its callees' summaries; when it
grows, requeue its callers.  Joins are set unions, the lattice is
finite (atoms are source sites), so recursion and mutual recursion
converge without special casing.

Soundness caveats (documented in DESIGN.md): only *explicit* ``raise``
statements are tracked (a ``TypeError`` thrown by the runtime is
invisible); locals derived from parameters by iteration or subscripting
are not aliased back to the parameter, so mutating ``rows[0]`` after
``rows = list(shards)`` escapes the mutation tracking; dynamic calls
degrade to an explicit ``dynamic-call`` atom rather than silently
assuming purity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.astutil import resolve_dotted
from repro.analysis.callgraph import (
    UNKNOWN,
    CallGraph,
    CallSite,
    FunctionInfo,
    _base_name,
    _fold_getattr,
    _unquote_annotation,
    is_transparent_handler,
)
from repro.analysis.registry import ProjectContext

__all__ = [
    "EffectAtom",
    "EffectSummary",
    "ProjectAnalysis",
    "RaiseSite",
    "analyze_project",
    "exception_matches",
]


# ----------------------------------------------------------------------
# Lattice elements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EffectAtom:
    """One concrete effect site, carried verbatim up the call graph."""

    kind: str  # clock|rng|env|fs-read|fs-write|shm|process|sleep|...
    detail: str
    function: str  # function id the site lives in
    path: str
    line: int


@dataclass(frozen=True)
class RaiseSite:
    """One explicit ``raise`` of a (resolved) exception type."""

    exception: str  # builtin name or project class id
    function: str
    path: str
    line: int

    @property
    def display(self) -> str:
        return self.exception.rsplit(".", 1)[-1].rsplit(":", 1)[-1]


@dataclass
class EffectSummary:
    """Join-semilattice element: everything a call can transitively do."""

    atoms: set[EffectAtom] = field(default_factory=set)
    mutated_params: set[int] = field(default_factory=set)
    #: Free-variable names mutated (resolved at the enclosing function).
    mutated_free: set[str] = field(default_factory=set)
    raise_sites: set[RaiseSite] = field(default_factory=set)

    def key(self) -> tuple[int, int, int, int]:
        return (
            len(self.atoms),
            len(self.mutated_params),
            len(self.mutated_free),
            len(self.raise_sites),
        )


# ----------------------------------------------------------------------
# External-call classification
# ----------------------------------------------------------------------
#: Wall-clock reads (timestamps, not durations).
_CLOCK_ORIGINS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Unseeded randomness by fully qualified origin.
_RNG_ORIGINS = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.uniform", "random.gauss", "random.seed", "random.getrandbits",
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.randbelow",
})

#: Constructors that are deterministic only when given a seed argument.
_SEEDED_CTORS = frozenset({
    "random.Random", "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator",
})

_ENV_ORIGINS = frozenset({
    "os.environ", "os.environ.get", "os.environ.setdefault",
    "os.getenv", "os.environb", "os.environb.get",
})

_SHM_ORIGINS = frozenset({
    "mmap.mmap",
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
    "numpy.memmap",
})

_PROCESS_ORIGINS = frozenset({
    "os.kill", "os._exit", "os.abort", "os.fork", "os.execv", "os.system",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "multiprocessing.Process", "concurrent.futures.ProcessPoolExecutor",
    "signal.signal", "signal.raise_signal",
})

_SLEEP_ORIGINS = frozenset({"time.sleep"})

_FS_WRITE_ORIGINS = frozenset({
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.rmdir",
    "os.makedirs", "os.mkdir", "os.truncate", "os.link", "os.symlink",
    "os.fsync", "os.ftruncate", "os.chmod", "os.utime",
    "shutil.rmtree", "shutil.copy", "shutil.copy2", "shutil.copyfile",
    "shutil.copytree", "shutil.move",
    "tempfile.mkdtemp", "tempfile.mkstemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryDirectory",
})

_FS_READ_ORIGINS = frozenset({
    "os.listdir", "os.scandir", "os.stat", "os.lstat", "os.fstat",
    "os.walk",
    "os.path.exists", "os.path.isfile", "os.path.isdir",
    "os.path.getsize", "os.path.getmtime", "shutil.disk_usage",
})

#: pathlib-style attribute names that touch the filesystem even when the
#: receiver type is unknown (distinctive enough to avoid false matches).
_FS_WRITE_ATTRS = frozenset({
    "write_text", "write_bytes", "unlink", "mkdir", "rmdir", "touch",
    "hardlink_to", "symlink_to", "rename", "replace",
})
_FS_READ_ATTRS = frozenset({
    "read_text", "read_bytes", "iterdir", "glob", "rglob",
})

#: Library prefixes whose calls are vetted as deterministic, in-memory
#: and side-effect free for the invariants this engine proves.  A call
#: into anything external *not* covered here becomes an ``external``
#: atom, which the worker/merge rules ban -- growing this list is an
#: explicit, reviewable act.
SANCTIONED_EXTERNAL_PREFIXES: tuple[str, ...] = (
    "builtins.",
    "numpy.", "np.", "scipy.",
    "math.", "statistics.", "cmath.",
    "itertools.", "functools.", "operator.", "collections.",
    "heapq.", "bisect.", "array.", "struct.", "types.",
    "zlib.", "hashlib.", "hmac.", "base64.", "binascii.",
    "json.", "pickle.", "marshal.", "csv.",
    "re.", "string.", "textwrap.", "difflib.", "unicodedata.", "ast.",
    "tempfile.gettempdir",
    "enum.", "dataclasses.", "typing.", "abc.", "copy.", "numbers.",
    "contextlib.", "warnings.", "traceback.", "inspect.getsource",
    "logging.",
    "errno.", "stat.", "posixpath.", "ntpath.", "os.path.join",
    "os.path.basename", "os.path.dirname", "os.path.splitext",
    "os.path.abspath", "os.path.normpath",
    "os.getpid", "os.cpu_count", "os.fspath",
    "time.monotonic", "time.monotonic_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.process_time", "time.thread_time",
    "resource.getrusage", "resource.getpagesize",
    "sys.intern", "sys.getsizeof", "sys.exit", "sys.audit",
    "sys.exc_info", "sys.stdout", "sys.stderr", "sys.settrace",
    "sys.getrecursionlimit", "sys.setrecursionlimit",
    "multiprocessing.get_context", "multiprocessing.get_start_method",
    "multiprocessing.current_process", "multiprocessing.cpu_count",
    "pathlib.Path", "pathlib.PurePath", "pathlib.PurePosixPath",
    "argparse.", "uuid.UUID", "weakref.", "threading.local",
    "platform.python_version",
)

#: Builtins that are *not* pure and need dedicated classification.
_SPECIAL_BUILTINS = frozenset({
    "builtins.open", "builtins.input", "builtins.print",
    "builtins.eval", "builtins.exec", "builtins.__import__",
    "builtins.setattr", "builtins.delattr", "builtins.breakpoint",
})

#: Builtin exception hierarchy (child -> immediate parent) for matching
#: raised types against ``except`` clauses.
BUILTIN_EXCEPTION_BASES: Mapping[str, str | None] = {
    "BaseException": None,
    "Exception": "BaseException",
    "GeneratorExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "TimeoutError": "OSError",
    "ProcessLookupError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "UnicodeTranslateError": "UnicodeError",
    "Warning": "Exception",
}

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "add", "discard", "setdefault", "popitem",
    "appendleft", "extendleft", "popleft", "__setitem__", "__delitem__",
})


def exception_matches(
    raised: str, handler: str, graph: CallGraph
) -> bool:
    """Whether an ``except handler`` clause catches ``raised``.

    Both sides are builtin names or project class ids; the raised type's
    ancestry is climbed through project bases into the builtin table.
    """
    current: str | None = raised
    seen: set[str] = set()
    while current is not None and current not in seen:
        seen.add(current)
        if current == handler:
            return True
        # Builtin handler names also match a project class whose chain
        # passes through them (e.g. ``except RuntimeError`` catching
        # ``ShardRecoveryError``).
        if ":" in current:
            current = graph.exception_bases(current)
        else:
            current = BUILTIN_EXCEPTION_BASES.get(current)
    return False


# ----------------------------------------------------------------------
# Intrinsic effect extraction
# ----------------------------------------------------------------------
class _IntrinsicScanner:
    """Extracts a function's own effects (no callee contributions)."""

    def __init__(self, graph: CallGraph, function: FunctionInfo) -> None:
        self.graph = graph
        self.function = function
        self.imports = graph.imports[function.module.relpath]
        self.globals = graph.module_globals[function.module.relpath]
        self.summary = EffectSummary()
        self._declared_globals = self._declared_global_names()

    def _declared_global_names(self) -> frozenset[str]:
        out: set[str] = set()
        for node in ast.walk(self.function.node):
            if isinstance(node, ast.Global):
                out.update(node.names)
        return frozenset(out)

    def _atom(self, kind: str, detail: str, line: int) -> None:
        self.summary.atoms.add(
            EffectAtom(
                kind=kind,
                detail=detail,
                function=self.function.id,
                path=str(self.function.module.path),
                line=line,
            )
        )

    def _classify_name(self, name: str) -> str | None:
        """global | param | free | local for a base name."""
        function = self.function
        if name in function.params:
            return "param"
        if name in self._declared_globals:
            return "global"
        if name in function.local_names:
            return "local"
        if name in function.enclosing_locals:
            return "free"
        if name in self.globals or name in self.graph.module_symbols[
            function.module.relpath
        ]:
            return "global"
        if name in self.imports:
            return "global"  # imported module/object
        return None

    def _record_mutation(self, base: str, line: int, what: str) -> None:
        kind = self._classify_name(base)
        if kind == "param":
            index = self.function.param_index(base)
            if index is not None:
                self.summary.mutated_params.add(index)
        elif kind == "global":
            self._atom("global-write", f"{what} of module global {base!r}",
                       line)
        elif kind == "free":
            self.summary.mutated_free.add(base)

    def scan(self) -> EffectSummary:
        self._scan_body(self.function.node.body)
        self._scan_call_sites()
        return self.summary

    # -- statement-level effects --------------------------------------
    def _scan_body(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt, guards=())

    def _scan_stmt(
        self, stmt: ast.stmt, guards: tuple[frozenset[str], ...]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate nodes
        if isinstance(stmt, ast.Try):
            # Transparent handlers (cleanup-rethrow: ``except X: ...;
            # raise``) do not swallow the exception, so they neither
            # guard the try body nor widen the raise surface to X.
            handler_types = frozenset(
                name
                for handler in stmt.handlers
                if not is_transparent_handler(handler)
                for name in self._handler_names(handler)
            )
            for inner in stmt.body:
                self._scan_stmt(inner, (handler_types, *guards))
            for handler in stmt.handlers:
                caught = self._handler_names(handler)
                transparent = is_transparent_handler(handler)
                for inner in handler.body:
                    self._scan_handler_stmt(
                        inner, guards, caught, handler.name, transparent
                    )
            for inner in stmt.orelse:
                self._scan_stmt(inner, guards)
            for inner in stmt.finalbody:
                self._scan_stmt(inner, guards)
            return
        self._scan_simple(stmt, guards, caught=frozenset())
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child, guards)
            elif isinstance(child, (ast.ExceptHandler,)):
                for inner in child.body:
                    self._scan_stmt(inner, guards)

    def _scan_handler_stmt(
        self,
        stmt: ast.stmt,
        guards: tuple[frozenset[str], ...],
        caught: frozenset[str],
        capture: str | None = None,
        transparent: bool = False,
    ) -> None:
        if isinstance(stmt, ast.Try):
            self._scan_stmt(stmt, guards)
            return
        self._scan_simple(stmt, guards, caught, capture, transparent)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_handler_stmt(
                    child, guards, caught, capture, transparent
                )

    def _scan_simple(
        self,
        stmt: ast.stmt,
        guards: tuple[frozenset[str], ...],
        caught: frozenset[str],
        capture: str | None = None,
        transparent: bool = False,
    ) -> None:
        if isinstance(stmt, ast.Raise):
            self._scan_raise(stmt, guards, caught, capture, transparent)
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._scan_store_target(target, stmt.lineno)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = _base_name(target)
                    if base is not None:
                        self._record_mutation(
                            base, stmt.lineno, "deletion"
                        )

    def _scan_store_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_store_target(element, line)
            return
        if isinstance(target, ast.Name):
            if target.id in self._declared_globals:
                self._atom(
                    "global-write",
                    f"assignment to module global {target.id!r}",
                    line,
                )
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = _base_name(target)
            if base is not None:
                what = (
                    "item assignment"
                    if isinstance(target, ast.Subscript)
                    else "attribute assignment"
                )
                self._record_mutation(base, line, what)

    def _handler_names(self, handler: ast.ExceptHandler) -> frozenset[str]:
        if handler.type is None:
            return frozenset({"BaseException"})
        exprs = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        out: set[str] = set()
        for expr in exprs:
            name = self._exception_name(expr)
            if name is not None:
                out.add(name)
        return frozenset(out)

    def _exception_name(self, expr: ast.expr) -> str | None:
        origin = resolve_dotted(expr, self.imports)
        if origin is None:
            return None
        symbols = self.graph.module_symbols[self.function.module.relpath]
        local = symbols.get(origin)
        if local in self.graph.classes:
            return local
        resolved = self.graph.resolve_symbol(origin)
        if resolved in self.graph.classes:
            return resolved
        return origin.split(".")[-1]

    def _annotated_exception_type(self, name: str) -> str | None:
        """Exception class a parameter named ``name`` is annotated with."""
        arguments = self.function.node.args
        for arg in (
            *arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs
        ):
            if arg.arg != name or arg.annotation is None:
                continue
            annotation = _unquote_annotation(arg.annotation)
            resolved = self._exception_name(annotation)
            if resolved is None:
                return None
            base = self.graph.exception_bases(resolved)
            if base is not None or resolved in BUILTIN_EXCEPTION_BASES:
                return resolved
            return None
        return None

    def _scan_raise(
        self,
        stmt: ast.Raise,
        guards: tuple[frozenset[str], ...],
        caught: frozenset[str],
        capture: str | None = None,
        transparent: bool = False,
    ) -> None:
        names: set[str] = set()
        rethrows_capture = (
            isinstance(stmt.exc, ast.Name) and stmt.exc.id == capture
        )
        if stmt.exc is None or rethrows_capture:
            if transparent:
                # The guarded try body's raises already propagate past
                # this handler; emitting the handler's declared types
                # here would double-count (and widen) the surface.
                return
            names = set(caught)  # re-raise inside a handler
        else:
            exc = stmt.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name: str | None = None
            if isinstance(exc, ast.Name):
                # ``raise err`` where ``err`` is an annotated parameter
                # (e.g. a retry callback's ``exc: SlabCorruptionError``)
                # resolves to the annotation, not the variable name.
                name = self._annotated_exception_type(exc.id)
            if name is None:
                name = self._exception_name(exc)
            if name is not None:
                names = {name}
        for name in names:
            if self._caught_by(name, guards):
                continue
            self.summary.raise_sites.add(
                RaiseSite(
                    exception=name,
                    function=self.function.id,
                    path=str(self.function.module.path),
                    line=stmt.lineno,
                )
            )

    def _caught_by(
        self, name: str, guards: tuple[frozenset[str], ...]
    ) -> bool:
        return any(
            exception_matches(name, handler, self.graph)
            for level in guards
            for handler in level
        )

    # -- call-level effects -------------------------------------------
    def _scan_call_sites(self) -> None:
        for site in self.graph.call_sites.get(self.function.id, []):
            self._scan_site(site)

    def _scan_site(self, site: CallSite) -> None:
        call = site.node
        if site.targets == (UNKNOWN,):
            self._atom(
                "dynamic-call",
                f"call to statically unresolvable target "
                f"{ast.unparse(call.func)!r}",
                site.line,
            )
        for origin in site.externals:
            self._classify_external(origin, call, site.line)
        self._scan_receiver_mutation(site)

    def _scan_receiver_mutation(self, site: CallSite) -> None:
        func = _fold_getattr(site.node.func)
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MUTATOR_METHODS:
            return
        if site.targets and site.targets != (UNKNOWN,):
            return  # resolved to package methods; their summaries apply
        base = _base_name(func.value)
        if base is not None:
            self._record_mutation(
                base, site.line, f".{func.attr}() call"
            )

    def _classify_external(
        self, origin: str, call: ast.Call, line: int
    ) -> None:
        if origin in _CLOCK_ORIGINS:
            self._atom("clock", origin, line)
            return
        if origin in _RNG_ORIGINS:
            self._atom("rng", origin, line)
            return
        if origin in _SEEDED_CTORS:
            if _no_seed_argument(call):
                self._atom("rng", f"{origin} without a seed", line)
            return
        if origin in _ENV_ORIGINS or origin.startswith("os.environ"):
            self._atom("env", origin, line)
            return
        if origin in _SHM_ORIGINS:
            self._atom("shm", origin, line)
            return
        if origin in _PROCESS_ORIGINS:
            self._atom("process", origin, line)
            return
        if origin in _SLEEP_ORIGINS:
            self._atom("sleep", origin, line)
            return
        if origin in _FS_WRITE_ORIGINS:
            self._atom("fs-write", origin, line)
            return
        if origin in _FS_READ_ORIGINS:
            self._atom("fs-read", origin, line)
            return
        if origin == "builtins.open":
            self._atom(_open_kind(call), "open()", line)
            return
        if origin in ("builtins.print", "builtins.input"):
            self._atom(
                "fs-write" if origin.endswith("print") else "env",
                origin.split(".")[-1] + "()", line,
            )
            return
        if origin in (
            "builtins.eval", "builtins.exec", "builtins.__import__",
            "builtins.breakpoint",
        ):
            self._atom("dynamic-call", origin, line)
            return
        if origin in ("builtins.setattr", "builtins.delattr"):
            if call.args:
                base = _base_name(call.args[0])
                if base is not None:
                    self._record_mutation(base, line, f"{origin}()")
            return
        if origin.startswith("<attr>."):
            attr = origin.split(".", 1)[1]
            if attr in _FS_WRITE_ATTRS:
                self._atom("fs-write", f".{attr}()", line)
            elif attr in _FS_READ_ATTRS:
                self._atom("fs-read", f".{attr}()", line)
            # Other unresolved attribute calls: receiver came from our
            # own code or a vetted library; mutator-method handling and
            # by-name fallback already applied.
            return
        if origin.startswith("builtins."):
            return  # remaining builtins are pure
        for prefix in SANCTIONED_EXTERNAL_PREFIXES:
            if origin == prefix.rstrip(".") or origin.startswith(prefix):
                return
        self._atom("external", origin, line)


def _no_seed_argument(call: ast.Call) -> bool:
    if call.args:
        return False
    return not any(
        keyword.arg in ("seed", "x") for keyword in call.keywords
    )


def _open_kind(call: ast.Call) -> str:
    mode = "r"
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        if isinstance(call.args[1].value, str):
            mode = call.args[1].value
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            if isinstance(keyword.value.value, str):
                mode = keyword.value.value
    return "fs-write" if any(c in mode for c in "wax+") else "fs-read"


# ----------------------------------------------------------------------
# Fixpoint propagation
# ----------------------------------------------------------------------
class ProjectAnalysis:
    """Call graph + converged effect summaries for one lint target."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.intrinsic: dict[str, EffectSummary] = {}
        self.summaries: dict[str, EffectSummary] = {}
        self._callers: dict[str, set[str]] = {}
        self._run_fixpoint()

    # -- public helpers -----------------------------------------------
    def summary(self, function_id: str) -> EffectSummary:
        return self.summaries.get(function_id, EffectSummary())

    def function_exists(self, function_id: str) -> bool:
        return function_id in self.graph.functions

    def reachable_from(self, root: str) -> dict[str, str | None]:
        """BFS parent map (function -> caller) for witness chains."""
        parents: dict[str, str | None] = {root: None}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.graph.edges.get(current, ())):
                if callee == UNKNOWN or callee in parents:
                    continue
                if callee not in self.graph.functions:
                    continue
                parents[callee] = current
                queue.append(callee)
        return parents

    def witness_chain(
        self, parents: Mapping[str, str | None], target: str
    ) -> list[str]:
        """Root-to-target call chain reconstructed from a parent map."""
        chain: list[str] = []
        current: str | None = target
        while current is not None:
            chain.append(current)
            current = parents.get(current)
        chain.reverse()
        return chain

    def display_name(self, function_id: str) -> str:
        info = self.graph.functions.get(function_id)
        if info is None:
            return function_id
        return info.qualname

    def render_chain(
        self, parents: Mapping[str, str | None], target: str
    ) -> str:
        return " -> ".join(
            self.display_name(f)
            for f in self.witness_chain(parents, target)
        )

    # -- the fixpoint --------------------------------------------------
    def _run_fixpoint(self) -> None:
        graph = self.graph
        for function in graph.functions.values():
            self.intrinsic[function.id] = _IntrinsicScanner(
                graph, function
            ).scan()
        self._add_nested_edges()
        for caller, callees in graph.edges.items():
            for callee in callees:
                if callee != UNKNOWN:
                    self._callers.setdefault(callee, set()).add(caller)
        for fid in graph.functions:
            self.summaries[fid] = EffectSummary(
                atoms=set(self.intrinsic[fid].atoms),
                mutated_params=set(self.intrinsic[fid].mutated_params),
                mutated_free=set(self.intrinsic[fid].mutated_free),
                raise_sites=set(self.intrinsic[fid].raise_sites),
            )
        worklist = list(graph.functions)
        queued = set(worklist)
        while worklist:
            fid = worklist.pop()
            queued.discard(fid)
            if self._recompute(fid):
                for caller in self._callers.get(fid, ()):
                    if caller not in queued:
                        queued.add(caller)
                        worklist.append(caller)

    def _add_nested_edges(self) -> None:
        """Defining a nested function implies it may run: add an edge
        from the parent so closures contribute conservatively."""
        graph = self.graph
        for fid, info in graph.functions.items():
            marker = ".<locals>."
            if marker not in info.qualname:
                continue
            parent_qual = info.qualname.rsplit(marker, 1)[0]
            parent_id = f"{info.module.relpath}:{parent_qual}"
            if parent_id in graph.functions:
                graph.edges.setdefault(parent_id, set()).add(fid)
                graph.call_sites.setdefault(parent_id, []).append(
                    CallSite(
                        caller=parent_id,
                        targets=(fid,),
                        externals=(),
                        node=ast.Call(
                            func=ast.Name(id=info.node.name, ctx=ast.Load()),
                            args=[],
                            keywords=[],
                        ),
                        line=info.node.lineno,
                        bindings=(),
                        guards=(),
                    )
                )

    def _recompute(self, fid: str) -> bool:
        function = self.graph.functions[fid]
        base = self.intrinsic[fid]
        derived = EffectSummary(
            atoms=set(base.atoms),
            mutated_params=set(base.mutated_params),
            mutated_free=set(base.mutated_free),
            raise_sites=set(base.raise_sites),
        )
        for site in self.graph.call_sites.get(fid, []):
            for target in site.targets:
                if target == UNKNOWN:
                    continue
                callee_summary = self.summaries.get(target)
                if callee_summary is None:
                    continue
                derived.atoms |= callee_summary.atoms
                self._propagate_mutations(
                    function, site, target, callee_summary, derived
                )
                for raise_site in callee_summary.raise_sites:
                    if not self._site_catches(site, raise_site.exception):
                        derived.raise_sites.add(raise_site)
        changed = (
            derived.atoms != self.summaries[fid].atoms
            or derived.mutated_params != self.summaries[fid].mutated_params
            or derived.mutated_free != self.summaries[fid].mutated_free
            or derived.raise_sites != self.summaries[fid].raise_sites
        )
        if changed:
            self.summaries[fid] = derived
        return changed

    def _propagate_mutations(
        self,
        function: FunctionInfo,
        site: CallSite,
        target: str,
        callee_summary: EffectSummary,
        derived: EffectSummary,
    ) -> None:
        bindings = dict(site.bindings)
        mutated_names: set[str] = set()
        for index in callee_summary.mutated_params:
            name = bindings.get(index)
            if name is not None:
                mutated_names.add(name)
        # Nested functions mutating enclosing names surface by name.
        mutated_names |= callee_summary.mutated_free
        for name in mutated_names:
            index = function.param_index(name)
            if index is not None:
                derived.mutated_params.add(index)
                continue
            if name in function.local_names:
                continue
            if name in function.enclosing_locals:
                derived.mutated_free.add(name)
                continue
            module_globals = self.graph.module_globals[
                function.module.relpath
            ]
            if name in module_globals:
                derived.atoms.add(
                    EffectAtom(
                        kind="global-write",
                        detail=(
                            f"call mutates module global {name!r} "
                            f"(via {self.display_name(target)})"
                        ),
                        function=function.id,
                        path=str(function.module.path),
                        line=site.line,
                    )
                )

    def _site_catches(self, site: CallSite, exception: str) -> bool:
        return any(
            exception_matches(exception, handler, self.graph)
            for level in site.guards
            for handler in level
        )


def analyze_project(project: ProjectContext) -> ProjectAnalysis:
    """Build (or fetch the cached) analysis for a lint target."""
    from repro.analysis.callgraph import build_call_graph

    cached = project.cache.get("interproc")
    if isinstance(cached, ProjectAnalysis):
        return cached
    analysis = ProjectAnalysis(build_call_graph(project))
    project.cache["interproc"] = analysis
    return analysis
