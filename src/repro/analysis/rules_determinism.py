"""Determinism rules.

The repo's headline guarantee is that discovery output is a pure
function of (input graph, config, seed): parallel sharded runs are
byte-identical to sequential ones (``tests/test_parallel.py``) and
fault-recovered runs reproduce clean runs exactly
(``tests/test_recovery.py``).  Each rule here bans one way that
guarantee silently dies:

* ``wall-clock`` -- wall-clock reads outside the timing utility leak
  the current time into results;
* ``unseeded-rng`` -- an unseeded or process-global RNG decorrelates
  reruns and workers from the master seed;
* ``unsorted-iteration`` -- set iteration order depends on the
  per-process string hash seed (``PYTHONHASHSEED``), so materializing a
  ``set``/``frozenset`` into anything ordered without ``sorted()``
  produces run-dependent output;
* ``id-keyed-dict`` -- ``id()`` values differ between processes and
  runs, so keying on them breaks replay and cross-worker merging;
* ``env-read`` -- environment reads outside the two sanctioned modules
  (``core/config.py``, ``core/faults.py``) create config surface the
  seeded-replay machinery cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import (
    build_import_table,
    build_parent_map,
    resolve_dotted,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, ModuleContext, register

#: Wall-clock reads (monotonic/perf counters stay legal: they measure
#: durations and cannot leak absolute time into output).
WALL_CLOCK_ORIGINS = frozenset({
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Functions of the process-global ``random`` module RNG.
GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "betavariate", "expovariate", "getrandbits", "randbytes", "seed",
})

#: ``numpy.random`` attributes that are fine to touch; everything else on
#: that module is the unseeded legacy global generator.
NUMPY_RANDOM_SAFE = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "RandomState",
})

#: The dirs whose output feeds serialized schemas (issue scope).
OUTPUT_DIRS = ("core/", "lsh/", "schema/")


def _no_seed_argument(node: ast.Call) -> bool:
    """True when the call passes no seed (no args, or a lone ``None``)."""
    if node.keywords:
        return False
    if not node.args:
        return True
    return (
        len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value is None
    )


@register
class WallClockRule(FileRule):
    name = "wall-clock"
    description = (
        "time.time()/datetime.now()-style wall-clock reads are only "
        "allowed in util/timing.py"
    )
    rationale = (
        "wall-clock values leak the current time into results, so two "
        "runs of the same (graph, config, seed) stop being comparable; "
        "duration measurement goes through time.perf_counter/monotonic "
        "or repro.util.timing"
    )
    exempt = ("util/timing.py",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_table(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_dotted(node.func, imports)
            if origin in WALL_CLOCK_ORIGINS:
                yield self.finding(
                    module, node,
                    f"wall-clock read {origin}(); route timing through "
                    f"repro.util.timing (perf counters) instead",
                )


@register
class UnseededRngRule(FileRule):
    name = "unseeded-rng"
    description = (
        "every RNG must be constructed from an explicit seed; the "
        "process-global random/numpy.random generators are banned"
    )
    rationale = (
        "PGHiveConfig.seed is the single source of randomness; an "
        "unseeded or global RNG decorrelates workers and reruns from "
        "the master seed and breaks byte-identical parallel replay"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_table(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_dotted(node.func, imports)
            if origin is None:
                continue
            if origin == "random.Random" and _no_seed_argument(node):
                yield self.finding(
                    module, node,
                    "random.Random() without a seed; derive one from "
                    "PGHiveConfig.seed",
                )
            elif origin.startswith("random.") and \
                    origin.removeprefix("random.") in GLOBAL_RANDOM_FNS:
                yield self.finding(
                    module, node,
                    f"{origin}() uses the process-global RNG; use a "
                    f"seeded random.Random instance",
                )
            elif origin in ("numpy.random.default_rng",
                            "numpy.random.RandomState") and \
                    _no_seed_argument(node):
                yield self.finding(
                    module, node,
                    f"{origin}() without a seed; pass a seed derived "
                    f"from PGHiveConfig.seed",
                )
            elif origin.startswith("numpy.random.") and \
                    origin.removeprefix("numpy.random.") \
                    not in NUMPY_RANDOM_SAFE:
                yield self.finding(
                    module, node,
                    f"{origin}() drives numpy's legacy global RNG; use "
                    f"numpy.random.default_rng(seed)",
                )


class _SetTracker:
    """Per-module registry of names statically bound to set values."""

    def __init__(self, tree: ast.Module, imports: dict[str, str]) -> None:
        self.imports = imports
        self.set_names: set[str] = set()
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                targets = [node.target]
                value = node.value
                if self._is_set_annotation(node.annotation):
                    self._remember(node.target)
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            if value is not None and self.is_setlike(value):
                for target in targets:
                    self._remember(target)

    def _remember(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.set_names.add(target.id)

    def _is_set_annotation(self, annotation: ast.expr) -> bool:
        base = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        return resolve_dotted(base, self.imports) in (
            "set", "frozenset", "typing.Set", "typing.FrozenSet",
            "typing.AbstractSet",
        )

    def is_setlike(self, node: ast.expr) -> bool:
        """Whether an expression statically evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_setlike(node.left) or self.is_setlike(node.right)
        if isinstance(node, ast.Call):
            origin = resolve_dotted(node.func, self.imports)
            if origin in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference",
            ):
                return self.is_setlike(node.func.value) or any(
                    self.is_setlike(arg) for arg in node.args
                )
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "keys":
                # dict key views are insertion-ordered and deterministic
                # for deterministic insert sequences, but set-algebra on
                # them is not; treated as set-like only via the binops
                # above, never on their own.
                return False
        return False


@register
class UnsortedIterationRule(FileRule):
    name = "unsorted-iteration"
    description = (
        "materializing a set/frozenset into list/tuple/join/enumerate "
        "without sorted() produces hash-seed-dependent order"
    )
    rationale = (
        "set iteration order varies with PYTHONHASHSEED and across "
        "processes; any set that flows into serialized or merged output "
        "must pass through sorted() to keep parallel runs byte-identical "
        "to sequential ones (dict views are exempt: insertion order is "
        "deterministic when the inserts are)"
    )
    dirs = OUTPUT_DIRS

    _SINKS = ("list", "tuple", "enumerate")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_table(module.tree)
        tracker = _SetTracker(module.tree, imports)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_dotted(node.func, imports)
            if origin in self._SINKS and len(node.args) >= 1:
                if tracker.is_setlike(node.args[0]):
                    yield self.finding(
                        module, node,
                        f"{origin}() over a set has hash-seed-dependent "
                        f"order; wrap the argument in sorted()",
                    )
            elif isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "join" and node.args:
                arg = node.args[0]
                if tracker.is_setlike(arg) or (
                    isinstance(arg, ast.GeneratorExp)
                    and tracker.is_setlike(arg.generators[0].iter)
                ):
                    yield self.finding(
                        module, node,
                        "str.join over a set has hash-seed-dependent "
                        "order; wrap the iterable in sorted()",
                    )


@register
class IdKeyedDictRule(FileRule):
    name = "id-keyed-dict"
    description = "id() values must not be used as dict/set keys or indices"
    rationale = (
        "id() is an address: it differs between processes, reruns and "
        "even gc cycles, so id-keyed state cannot replay under the "
        "seeded determinism contract or merge across pool workers"
    )
    dirs = OUTPUT_DIRS

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parents = build_parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Subscript) and parent.slice is node:
                where = "as a subscript index"
            elif isinstance(parent, ast.Dict) and node in parent.keys:
                where = "as a dict key"
            elif isinstance(parent, ast.Set):
                where = "as a set element"
            elif isinstance(parent, ast.Call) and isinstance(
                parent.func, ast.Attribute
            ) and parent.func.attr in (
                "setdefault", "get", "pop", "add", "discard", "remove",
            ) and parent.args and parent.args[0] is node:
                where = f"as a .{parent.func.attr}() key"
            elif isinstance(parent, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops
            ):
                where = "in a membership test"
            else:
                continue
            yield self.finding(
                module, node,
                f"id() used {where}; key on a stable identifier "
                f"(element id, name, index) instead",
            )


@register
class EnvReadRule(FileRule):
    name = "env-read"
    description = (
        "os.environ/os.getenv reads are only allowed in core/config.py "
        "and core/faults.py"
    )
    rationale = (
        "environment reads scattered through the tree create config "
        "surface that checkpoints, shard replay and the docs cannot "
        "see; all env input funnels through the two sanctioned modules"
    )
    exempt = ("core/config.py", "core/faults.py")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_table(module.tree)
        parents = build_parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only look at the outermost link of an attribute chain so
            # `os.environ.get(...)` reports exactly once.
            if isinstance(parents.get(node), ast.Attribute):
                continue
            origin = resolve_dotted(node, imports)
            if origin is None:
                continue
            if origin == "os.getenv" or origin == "os.environb" or \
                    origin == "os.environ" or \
                    origin.startswith(("os.environ.", "os.environb.")):
                yield self.finding(
                    module, node,
                    f"{origin} read outside core/config.py and "
                    f"core/faults.py; plumb the value through PGHiveConfig",
                )
