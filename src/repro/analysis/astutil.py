"""Shared AST helpers for the lint rules.

The central abstraction is *dotted-origin resolution*: every module gets
an import table mapping local aliases to their fully qualified origin
(``np`` -> ``numpy``, ``datetime`` -> ``datetime.datetime`` after a
``from datetime import datetime``), and :func:`resolve_dotted` expands a
``Name``/``Attribute`` chain against it.  Rules then match canonical
dotted names (``time.time``, ``numpy.random.default_rng``) regardless of
how the module spelled the import.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "build_import_table",
    "build_parent_map",
    "call_positional_args",
    "dotted_name",
    "is_docstring",
    "iter_function_defs",
    "resolve_dotted",
    "string_constants",
]


def build_import_table(tree: ast.Module) -> dict[str, str]:
    """Map each imported local alias to its fully qualified origin."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else local
                table[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this tree
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def dotted_name(node: ast.AST) -> str | None:
    """The literal dotted text of a Name/Attribute chain, or ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def resolve_dotted(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Fully qualified dotted name of an expression, or ``None``.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when the module did ``import numpy as np``.  Unimported names
    resolve to themselves (builtins stay bare: ``id``, ``list``).
    """
    literal = dotted_name(node)
    if literal is None:
        return None
    head, _, rest = literal.partition(".")
    origin = imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def build_parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child -> parent links for context-sensitive checks."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Every function definition with whether it is a direct class method."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, True
    in_class = {
        child
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        for child in node.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node not in in_class:
                yield node, False


def call_positional_args(node: ast.Call) -> list[ast.expr]:
    return list(node.args)


def _docstring_nodes(tree: ast.Module) -> set[ast.Constant]:
    """The Constant nodes that are docstrings of the module/classes/defs."""
    out: set[ast.Constant] = set()
    scopes: list[ast.AST] = [tree]
    scopes.extend(
        node for node in ast.walk(tree)
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
    )
    for scope in scopes:
        body = getattr(scope, "body", [])
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            out.add(body[0].value)
    return out


def is_docstring(node: ast.Constant, tree: ast.Module) -> bool:
    return node in _docstring_nodes(tree)


def string_constants(
    tree: ast.Module, include_docstrings: bool = False
) -> Iterator[tuple[int, str]]:
    """Every string literal in the module as ``(line, text)`` pairs.

    Covers plain constants and the literal fragments of f-strings.
    Docstrings are excluded by default: rules about *operative*
    references (env vars, flag names) should not fire on prose.
    """
    docstrings = set() if include_docstrings else _docstring_nodes(tree)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node not in docstrings
        ):
            yield node.lineno, node.value
