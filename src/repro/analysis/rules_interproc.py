"""Whole-program rules proven over the interprocedural effect analysis.

These four rules are the static counterpart of the determinism property
tests: instead of sampling shard orders and worker counts, they walk
every function transitively reachable from the pool-worker entry points
and the merge fold and prove the declared effect contracts hold for all
of them.  Each finding carries the witness call chain from the root to
the offending site, so a violation three hops deep reads as a path, not
a mystery.

Sanctioning policy (all of it lives here, in one reviewable place):

* ``core/faults.py`` may sleep, kill the process and read its
  environment spec -- deterministic fault injection is the *product*,
  and its env read is already whitelisted by the file-level ``env-read``
  rule;
* ``core/config.py`` may read the environment (seeded overrides);
* shared-memory/mmap construction is sanctioned only inside the shard
  transport (``core/transport.py``), the slab store (``graph/slab.py``)
  and the memmapped column reader, where segments are created
  parent-side and re-attached by name in workers;
* filesystem reads are permitted for workers (they stream shards from
  disk stores) but banned in the merge fold, which must be a pure
  in-memory computation.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.interproc import (
    EffectAtom,
    ProjectAnalysis,
    analyze_project,
    exception_matches,
)
from repro.analysis.registry import ProjectContext, ProjectRule, register

__all__ = [
    "ExceptionSurfaceRule",
    "GlobalMutationRaceRule",
    "MergePurityRule",
    "WorkerReachabilityRule",
]

#: Pool-worker entry points: run inside forked children, must produce
#: byte-identical results for any worker count / chunk schedule.
WORKER_ROOTS: tuple[str, ...] = (
    "core/parallel.py:_discover_plan_chunk",
    "core/parallel.py:_discover_columns_chunk",
    "core/parallel.py:_discover_one",
    "core/parallel.py:_bucket_edges_task",
)

#: The merge fold: must be a pure in-memory computation so the pairwise
#: merge tree is byte-identical for any shard arrival order.
MERGE_ROOTS: tuple[str, ...] = (
    "schema/merge.py:merge_schemas",
    "schema/merge.py:merge_schema_tree",
    "schema/merge.py:_merge_stats",
    "core/parallel.py:combine_shard_results",
)

#: CLI entry point whose escaping exceptions define the tool's surface.
CLI_ROOT = "cli.py:main"

#: Modules whose env/sleep/process effects are the sanctioned fault and
#: configuration machinery (see module docstring).
_ENV_SANCTIONED_SUFFIXES = ("core/config.py", "core/faults.py")
_FAULT_SANCTIONED_SUFFIXES = ("core/faults.py",)

#: Modules allowed to construct shared-memory segments / memory maps:
#: the zero-copy transport and the out-of-core column stores.
_SHM_SANCTIONED_SUFFIXES = (
    "core/transport.py",
    "graph/slab.py",
    "graph/diskstore.py",
)

#: Exception types allowed to escape ``cli.main`` (process-exit control
#: flow, not error reporting).
_CLI_ALLOWED_ESCAPES = ("SystemExit", "KeyboardInterrupt")


def _atom_module(atom: EffectAtom) -> str:
    """Lint-root-relative module path of the atom's *origin* site."""
    return atom.function.split(":", 1)[0]


def _origin_sanctioned(atom: EffectAtom, suffixes: Sequence[str]) -> bool:
    module = _atom_module(atom)
    return any(
        module == suffix or module.endswith("/" + suffix)
        for suffix in suffixes
    )


def _existing_roots(
    analysis: ProjectAnalysis, roots: Sequence[str]
) -> list[str]:
    """Resolve root suffixes against the current lint target.

    Roots are named package-relative (``core/parallel.py:_discover_one``)
    but fixture projects nest them under their own package dir, so match
    by suffix on the module part.
    """
    out: list[str] = []
    for root in roots:
        module_suffix, function = root.split(":", 1)
        for fid in analysis.graph.functions:
            module, qualname = fid.split(":", 1)
            if qualname != function:
                continue
            if module == module_suffix or module.endswith(
                "/" + module_suffix
            ):
                out.append(fid)
                break
    return out


def _sorted_atoms(atoms: set[EffectAtom]) -> list[EffectAtom]:
    return sorted(
        atoms, key=lambda a: (a.path, a.line, a.kind, a.detail)
    )


class _InterprocRule(ProjectRule):
    """Shared plumbing: one analysis per project, witness chains."""

    def _analysis(self, project: ProjectContext) -> ProjectAnalysis:
        return analyze_project(project)

    def _chain_finding(
        self,
        project: ProjectContext,
        analysis: ProjectAnalysis,
        parents: dict[str, str | None],
        root: str,
        atom: EffectAtom,
        message: str,
    ) -> Finding:
        chain = analysis.witness_chain(parents, atom.function)
        trace = tuple(analysis.display_name(f) for f in chain)
        rendered = " -> ".join(trace) if trace else analysis.display_name(
            root
        )
        base = self.finding(
            project,
            f"{message} [via {rendered}]",
            line=atom.line,
        )
        return Finding(
            path=atom.path,
            line=atom.line,
            rule=base.rule,
            message=base.message,
            severity=base.severity,
            trace=trace,
        )


@register
class WorkerReachabilityRule(_InterprocRule):
    """Pool workers must not transitively reach nondeterminism."""

    name = "worker-reachability"
    description = (
        "functions reachable from pool-worker entry points are free of "
        "wall-clock reads, unseeded RNG, environment reads, dynamic "
        "dispatch, unvetted external calls, and shared-memory "
        "construction outside the sanctioned transport"
    )
    rationale = (
        "parallel discovery is byte-identical to serial only if every "
        "function a worker can reach is deterministic; one wall-clock "
        "read three calls deep silently breaks replay"
    )

    #: kind -> (sanctioned origin-module suffixes, human label)
    _POLICY: dict[str, tuple[tuple[str, ...], str]] = {
        "clock": ((), "wall-clock read"),
        "rng": ((), "unseeded RNG"),
        "env": (_ENV_SANCTIONED_SUFFIXES, "environment read"),
        "shm": (_SHM_SANCTIONED_SUFFIXES, "shared-memory construction"),
        "process": (_FAULT_SANCTIONED_SUFFIXES, "process control"),
        "sleep": (_FAULT_SANCTIONED_SUFFIXES, "sleep"),
        "dynamic-call": ((), "statically unresolvable call"),
        "external": ((), "unvetted external call"),
    }

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = self._analysis(project)
        for root in _existing_roots(analysis, WORKER_ROOTS):
            parents = analysis.reachable_from(root)
            summary = analysis.summary(root)
            root_name = analysis.display_name(root)
            for atom in _sorted_atoms(summary.atoms):
                policy = self._POLICY.get(atom.kind)
                if policy is None:
                    continue  # fs-read/fs-write/global-write: other rules
                sanctioned, label = policy
                if sanctioned and _origin_sanctioned(atom, sanctioned):
                    continue
                yield self._chain_finding(
                    project,
                    analysis,
                    parents,
                    root,
                    atom,
                    f"worker entry point {root_name!r} reaches {label} "
                    f"({atom.detail})",
                )


@register
class MergePurityRule(_InterprocRule):
    """The merge fold must be a pure in-memory computation."""

    name = "merge-purity"
    description = (
        "the merge_schemas/merge_schema_tree/combine_shard_results call "
        "tree performs no I/O, no global writes, no nondeterministic "
        "reads and never mutates the shared config"
    )
    rationale = (
        "order-independent folding (byte-identical output for any shard "
        "arrival order) is only provable if the fold depends on nothing "
        "but its operands; accumulator mutation is the documented fold "
        "contract, everything else is a purity breach"
    )

    _BANNED: dict[str, str] = {
        "clock": "wall-clock read",
        "rng": "unseeded RNG",
        "env": "environment read",
        "fs-read": "filesystem read",
        "fs-write": "filesystem write",
        "shm": "shared-memory construction",
        "process": "process control",
        "sleep": "sleep",
        "global-write": "module-global write",
        "dynamic-call": "statically unresolvable call",
        "external": "unvetted external call",
    }

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = self._analysis(project)
        for root in _existing_roots(analysis, MERGE_ROOTS):
            parents = analysis.reachable_from(root)
            summary = analysis.summary(root)
            root_name = analysis.display_name(root)
            for atom in _sorted_atoms(summary.atoms):
                label = self._BANNED.get(atom.kind)
                if label is None:
                    continue
                yield self._chain_finding(
                    project,
                    analysis,
                    parents,
                    root,
                    atom,
                    f"merge fold {root_name!r} reaches {label} "
                    f"({atom.detail})",
                )
            yield from self._config_mutations(
                project, analysis, root, parents
            )

    def _config_mutations(
        self,
        project: ProjectContext,
        analysis: ProjectAnalysis,
        root: str,
        parents: dict[str, str | None],
    ) -> Iterator[Finding]:
        """The shared config object must never be mutated by the fold.

        In-place mutation of the *schema* accumulators is the documented
        contract; mutation of a parameter whose name is ``config`` (the
        shared, cross-shard configuration) is a purity breach wherever
        it happens in the reachable set.
        """
        for fid in sorted(parents):
            info = analysis.graph.functions.get(fid)
            if info is None:
                continue
            summary = analysis.summary(fid)
            for index in sorted(summary.mutated_params):
                if index >= len(info.params):
                    continue
                if info.params[index] != "config":
                    continue
                chain = analysis.witness_chain(parents, fid)
                trace = tuple(analysis.display_name(f) for f in chain)
                yield Finding(
                    path=str(info.module.path),
                    line=info.node.lineno,
                    rule=self.name,
                    message=(
                        f"merge fold {analysis.display_name(root)!r} "
                        f"mutates the shared config parameter in "
                        f"{analysis.display_name(fid)!r} "
                        f"[via {' -> '.join(trace)}]"
                    ),
                    severity=self.severity,
                    trace=trace,
                )


@register
class GlobalMutationRaceRule(_InterprocRule):
    """Worker-reachable writes to module globals are cross-process races."""

    name = "global-mutation-race"
    description = (
        "no function reachable from a pool-worker entry point writes "
        "module-level mutable state"
    )
    rationale = (
        "workers run in forked children: a module-global write there "
        "mutates a private copy-on-write page, silently diverging from "
        "the parent -- state must travel through shard results, never "
        "through module globals"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = self._analysis(project)
        for root in _existing_roots(analysis, WORKER_ROOTS):
            parents = analysis.reachable_from(root)
            summary = analysis.summary(root)
            root_name = analysis.display_name(root)
            for atom in _sorted_atoms(summary.atoms):
                if atom.kind != "global-write":
                    continue
                yield self._chain_finding(
                    project,
                    analysis,
                    parents,
                    root,
                    atom,
                    f"worker entry point {root_name!r} reaches a "
                    f"module-global write ({atom.detail}); forked "
                    f"children never propagate it back",
                )


@register
class ExceptionSurfaceRule(_InterprocRule):
    """Every exception escaping the CLI must be structured and caught."""

    name = "exception-surface"
    description = (
        "the only exception types escaping cli.main are SystemExit and "
        "KeyboardInterrupt; every repro error is caught by the "
        "top-level handler and rendered as a structured message"
    )
    rationale = (
        "a raw traceback from a deep raise is an unversioned error "
        "surface: scripts cannot distinguish crash from usage error, "
        "and exit codes stop meaning anything"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = self._analysis(project)
        roots = _existing_roots(analysis, (CLI_ROOT,))
        for root in roots:
            parents = analysis.reachable_from(root)
            summary = analysis.summary(root)
            root_name = analysis.display_name(root)
            seen: set[str] = set()
            for site in sorted(
                summary.raise_sites,
                key=lambda s: (s.exception, s.path, s.line),
            ):
                if any(
                    exception_matches(
                        site.exception, allowed, analysis.graph
                    )
                    for allowed in _CLI_ALLOWED_ESCAPES
                ):
                    continue
                if site.exception in seen:
                    continue  # one finding per escaping type
                seen.add(site.exception)
                chain = analysis.witness_chain(parents, site.function)
                trace = tuple(analysis.display_name(f) for f in chain)
                yield Finding(
                    path=site.path,
                    line=site.line,
                    rule=self.name,
                    message=(
                        f"{site.display} raised at {site.path}:"
                        f"{site.line} can escape CLI entry point "
                        f"{root_name!r} uncaught "
                        f"[via {' -> '.join(trace)}]"
                    ),
                    severity=self.severity,
                    trace=trace,
                )
