"""Content-hash result cache for lint runs (``--cache DIR``).

Two layers, both keyed so stale results are structurally impossible:

* **per-file**: file-rule findings for one module, keyed by the SHA-256
  of its source bytes plus the rule-set version.  Editing the file
  changes the key; the stale entry is simply never read again.
* **whole-run**: the final finding list for one invocation, keyed by
  every target file's digest plus the active rule names, the severity
  floor, and the rule-set version.  Project rules (including the
  interprocedural fixpoint) are whole-program by nature, so they only
  cache at this granularity -- any file change misses and re-runs them.

The rule-set version is the SHA-256 over the sources of every module in
:mod:`repro.analysis` itself, so changing a rule, the engine, or the
call-graph resolution invalidates everything without manual version
bumps.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["LintCache", "ruleset_version"]

_VERSION_CACHE: dict[Path, str] = {}


def ruleset_version() -> str:
    """Digest of the analysis package's own sources.

    Any change to a rule, the engine, the call-graph builder or the
    effect tables produces a new version and invalidates every cache
    entry written under the old one.
    """
    package_dir = Path(__file__).resolve().parent
    cached = _VERSION_CACHE.get(package_dir)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(source.read_bytes())
    version = digest.hexdigest()
    _VERSION_CACHE[package_dir] = version
    return version


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class LintCache:
    """Filesystem-backed cache below one directory."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.directory.mkdir(parents=True, exist_ok=True)
        self.version = ruleset_version()
        self.hits = 0
        self.misses = 0

    # -- keys ----------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def file_key(self, path: Path, rule_names: tuple[str, ...]) -> str:
        digest = hashlib.sha256()
        digest.update(self.version.encode("utf-8"))
        # The path participates too: findings embed it, so two identical
        # files at different locations must not share an entry.
        digest.update(str(path).encode("utf-8"))
        digest.update(_file_digest(path).encode("utf-8"))
        digest.update("\x00".join(rule_names).encode("utf-8"))
        return "file-" + digest.hexdigest()

    def run_key(
        self,
        paths: list[Path],
        rule_names: tuple[str, ...],
        min_severity: int,
    ) -> str:
        digest = hashlib.sha256()
        digest.update(self.version.encode("utf-8"))
        digest.update(str(min_severity).encode("utf-8"))
        digest.update("\x00".join(rule_names).encode("utf-8"))
        for path in sorted(paths):
            digest.update(str(path).encode("utf-8"))
            digest.update(_file_digest(path).encode("utf-8"))
        return "run-" + digest.hexdigest()

    # -- storage -------------------------------------------------------
    def load(self, key: str) -> list[Finding] | None:
        entry = self._entry_path(key)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, list):
            self.misses += 1
            return None
        try:
            findings = [Finding.from_dict(record) for record in payload]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(self, key: str, findings: list[Finding]) -> None:
        entry = self._entry_path(key)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(
            json.dumps([f.as_dict() for f in findings]),
            encoding="utf-8",
        )
        tmp.replace(entry)
