"""Module-aware call-graph construction over a linted package tree.

The graph's nodes are every function and method defined in the lint
target; edges are the statically resolvable call sites between them.
Resolution layers, from most to least precise:

* **imports** -- ``from repro.schema.merge import merge_schemas`` makes a
  bare ``merge_schemas(...)`` call resolve across modules (the import
  table of :mod:`repro.analysis.astutil` canonicalizes aliases);
* **class-scoped lookup** -- ``self.method()`` resolves through the
  enclosing class (including package base classes and any package
  subclass overriding the method, so virtual dispatch joins every
  implementation that could run); ``obj.method()`` resolves when
  ``obj``'s class is statically known from a parameter annotation, a
  dataclass field annotation, a local constructor call, or the return
  annotation of a package function.  Plain class attributes bound to
  functions (``impl = _kernel``) resolve like methods;
* **higher-order binding** -- a parameter that is only ever passed
  known package functions (``self._run_pool(_discover_plan_chunk, ...)``)
  resolves calls through that parameter to the union of everything ever
  passed;
* **by-name fallback** -- an attribute call whose receiver type is
  unknown joins every package method of that name (conservative
  over-approximation); a receiver-less match set of zero means the call
  is external and is classified against the effect tables instead;
* **unknown call** -- anything still unresolved (calling the result of
  a call, a subscript, or a parameter nothing was ever bound to)
  becomes an edge to the conservative *unknown* node, which the
  interprocedural rules treat as "cannot prove".

``getattr(obj, "literal")`` folds to ``obj.literal`` before resolution,
so the disk-backend capability probe in ``core/parallel.py`` stays
statically visible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.astutil import build_import_table, resolve_dotted
from repro.analysis.registry import ModuleContext, ProjectContext

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LAMBDA",
    "UNKNOWN",
    "build_call_graph",
]

#: The conservative sink every unresolvable dynamic call points at.
UNKNOWN = "<unknown>"

#: Sentinel target for a parameter bound to a lambda argument: the
#: lambda body is scanned inline at the *passing* call site (its calls
#: are attributed to the caller), so invoking the parameter contributes
#: no further effects.
LAMBDA = "<lambda>"

_FunctionDef = ast.FunctionDef | ast.AsyncFunctionDef

#: Names every Python process can call without importing anything.
_BUILTIN_NAMES = frozenset(dir(__builtins__)) | frozenset(
    dir(__import__("builtins"))
)


@dataclass
class FunctionInfo:
    """One function or method definition (a call-graph node)."""

    id: str  # "<relpath>:<qualname>"
    qualname: str
    module: ModuleContext
    node: _FunctionDef
    class_id: str | None = None
    params: tuple[str, ...] = ()
    #: Names bound locally (params, assignments, loop/with/except targets).
    local_names: frozenset[str] = frozenset()
    #: Locals of lexically enclosing functions (closure lookups).
    enclosing_locals: frozenset[str] = frozenset()

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One class definition, indexed for class-scoped method lookup."""

    id: str  # "<relpath>:<qualname>"
    name: str
    module: ModuleContext
    node: ast.ClassDef
    #: Base expressions, unresolved (resolved lazily against the index).
    base_exprs: tuple[ast.expr, ...] = ()
    #: method name -> function id (defs and function-valued class attrs).
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> annotation expression (dataclass fields,
    #: class-body AnnAssign, and ``self.x: T`` inside methods).
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: caller -> targets with argument bindings."""

    caller: str
    targets: tuple[str, ...]  # function ids, or (UNKNOWN,)
    #: Fully qualified dotted origins of external callees at this site.
    externals: tuple[str, ...]
    node: ast.Call
    line: int
    #: callee param index -> caller-scope base name of the argument.
    bindings: tuple[tuple[int, str], ...]
    #: Handler-type name sets of the enclosing ``try`` blocks, inner first.
    guards: tuple[frozenset[str], ...]


class CallGraph:
    """The resolved call graph plus the symbol indices it was built from."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: relpath -> {top-level name -> function/class id}
        self.module_symbols: dict[str, dict[str, str]] = {}
        #: relpath -> import table (local alias -> dotted origin)
        self.imports: dict[str, dict[str, str]] = {}
        #: relpath -> module-level mutable-binding names
        self.module_globals: dict[str, frozenset[str]] = {}
        #: relpath -> {module-global name -> annotation expr} (from
        #: module-level AnnAssign, so ``state = _PARENT_STATE`` types).
        self.module_annotations: dict[str, dict[str, ast.expr]] = {}
        #: relpath -> {module-global name -> dict-literal expr} for
        #: dispatch-table resolution (``_GENERATORS[kind](...)``).
        self.module_dict_literals: dict[str, dict[str, ast.Dict]] = {}
        self.call_sites: dict[str, list[CallSite]] = {}
        #: (function id, param index) -> function ids ever passed there.
        self.param_bindings: dict[tuple[str, int], set[str]] = {}
        #: caller id -> callee ids (UNKNOWN included), for reachability.
        self.edges: dict[str, set[str]] = {}
        self._package = _package_name(project)
        self._subclasses: dict[str, set[str]] | None = None

    # -- symbol resolution --------------------------------------------
    def resolve_symbol(self, origin: str) -> str | None:
        """Project function/class id for a dotted origin, or ``None``.

        ``repro.schema.merge.merge_schemas`` resolves through the module
        table; a bare in-module name is resolved by the caller against
        its own module's symbols before getting here.
        """
        parts = origin.split(".")
        if parts[0] != self._package:
            return None
        for split in range(len(parts) - 1, 0, -1):
            stem = "/".join(parts[1:split])
            for relpath in (
                f"{stem}.py" if stem else "__init__.py",
                f"{stem}/__init__.py" if stem else "__init__.py",
            ):
                symbols = self.module_symbols.get(relpath)
                if symbols is None:
                    continue
                remainder = parts[split:]
                if len(remainder) == 1 and remainder[0] in symbols:
                    return symbols[remainder[0]]
                if len(remainder) == 2:
                    # Class attribute / method referenced module-first.
                    owner = symbols.get(remainder[0])
                    if owner in self.classes:
                        method = self.classes[owner].methods.get(
                            remainder[1]
                        )
                        if method is not None:
                            return method
        return None

    def subclasses_of(self, class_id: str) -> set[str]:
        """Transitive package subclasses, for virtual-dispatch joins."""
        if self._subclasses is None:
            table: dict[str, set[str]] = {}
            for info in self.classes.values():
                for base in self._resolved_bases(info):
                    table.setdefault(base, set()).add(info.id)
            closed: dict[str, set[str]] = {}

            def close(root: str, seen: set[str]) -> set[str]:
                out: set[str] = set()
                for child in table.get(root, ()):  # direct subclasses
                    if child in seen:
                        continue
                    seen.add(child)
                    out.add(child)
                    out |= close(child, seen)
                return out

            for name in self.classes:
                closed[name] = close(name, {name})
            self._subclasses = closed
        return self._subclasses.get(class_id, set())

    def _resolved_bases(self, info: ClassInfo) -> list[str]:
        out: list[str] = []
        imports = self.imports[info.module.relpath]
        symbols = self.module_symbols[info.module.relpath]
        for expr in info.base_exprs:
            origin = resolve_dotted(expr, imports)
            if origin is None:
                continue
            local = symbols.get(origin)
            if local in self.classes:
                out.append(local)  # type: ignore[arg-type]
                continue
            resolved = self.resolve_symbol(origin)
            if resolved in self.classes:
                out.append(resolved)  # type: ignore[arg-type]
        return out

    def base_chain(self, class_id: str) -> list[str]:
        """The class plus its package ancestors, nearest first."""
        chain: list[str] = []
        queue = [class_id]
        while queue:
            current = queue.pop(0)
            if current in chain or current not in self.classes:
                continue
            chain.append(current)
            queue.extend(self._resolved_bases(self.classes[current]))
        return chain

    def lookup_method(self, class_id: str, name: str) -> set[str]:
        """Class-scoped lookup: MRO walk plus package-subclass overrides."""
        out: set[str] = set()
        for owner in self.base_chain(class_id):
            method = self.classes[owner].methods.get(name)
            if method is not None:
                out.add(method)
                break
        for sub in self.subclasses_of(class_id):
            method = self.classes[sub].methods.get(name)
            if method is not None:
                out.add(method)
        return out

    def methods_named(self, name: str) -> set[str]:
        """Every package method with this name (by-name fallback)."""
        out: set[str] = set()
        for info in self.classes.values():
            method = info.methods.get(name)
            if method is not None:
                out.add(method)
        return out

    def exception_bases(self, name: str) -> str | None:
        """Immediate base of a project exception class id, if resolvable."""
        info = self.classes.get(name)
        if info is None:
            return None
        bases = self._resolved_bases(info)
        if bases:
            return bases[0]
        imports = self.imports[info.module.relpath]
        for expr in info.base_exprs:
            origin = resolve_dotted(expr, imports)
            if origin is not None and "." not in origin:
                return origin  # builtin exception name
        return "Exception"


def _package_name(project: ProjectContext) -> str:
    for module in project.modules:
        rel_parts = len(module.relpath.split("/"))
        parts = module.path.resolve().parts
        if len(parts) > rel_parts:
            return parts[-rel_parts - 1]
    return "repro"


# ----------------------------------------------------------------------
# Indexing pass
# ----------------------------------------------------------------------
def build_call_graph(project: ProjectContext) -> CallGraph:
    """Index symbols, then resolve every call site in the project."""
    graph = CallGraph(project)
    for module in project.modules:
        _index_module(graph, module)
    for function in graph.functions.values():
        graph.call_sites[function.id] = []
        graph.edges.setdefault(function.id, set())
    for function in list(graph.functions.values()):
        _Resolver(graph, function).resolve()
    _bind_param_calls(graph)
    return graph


def _index_module(graph: CallGraph, module: ModuleContext) -> None:
    relpath = module.relpath
    graph.imports[relpath] = build_import_table(module.tree)
    symbols: dict[str, str] = {}
    graph.module_symbols[relpath] = symbols
    mutable: set[str] = set()
    annotations: dict[str, ast.expr] = {}
    dict_literals: dict[str, ast.Dict] = {}
    for stmt in module.tree.body:
        for target in _assign_targets(stmt):
            if isinstance(target, ast.Name):
                mutable.add(target.id)
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            annotations[stmt.target.id] = stmt.annotation
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Dict
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    dict_literals[target.id] = stmt.value
    graph.module_globals[relpath] = frozenset(mutable)
    graph.module_annotations[relpath] = annotations
    graph.module_dict_literals[relpath] = dict_literals

    def index_function(
        node: _FunctionDef,
        qualprefix: str,
        class_id: str | None,
        enclosing: frozenset[str],
    ) -> str:
        qualname = f"{qualprefix}{node.name}"
        fid = f"{relpath}:{qualname}"
        params = tuple(
            arg.arg
            for arg in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
        )
        locals_ = _local_names(node)
        info = FunctionInfo(
            id=fid,
            qualname=qualname,
            module=module,
            node=node,
            class_id=class_id,
            params=params,
            local_names=frozenset(locals_),
            enclosing_locals=enclosing,
        )
        graph.functions[fid] = info
        inner_enclosing = enclosing | info.local_names | set(params)
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _direct_parent_function(node, child):
                    index_function(
                        child,
                        f"{qualname}.<locals>.",
                        None,
                        frozenset(inner_enclosing),
                    )
        return fid

    def index_class(node: ast.ClassDef, qualprefix: str) -> str:
        qualname = f"{qualprefix}{node.name}"
        cid = f"{relpath}:{qualname}"
        info = ClassInfo(
            id=cid,
            name=node.name,
            module=module,
            node=node,
            base_exprs=tuple(node.bases),
        )
        graph.classes[cid] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fid = index_function(
                    child, f"{qualname}.", cid, frozenset()
                )
                info.methods[child.name] = fid
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                info.attr_annotations[child.target.id] = child.annotation
            elif isinstance(child, ast.Assign):
                # Class attribute bound to a function: resolves like a
                # method (``impl = _kernel``).
                value = child.value
                if isinstance(value, ast.Name):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            info.methods.setdefault(
                                target.id, f"{relpath}:{value.id}"
                            )
        # ``self.x: T = ...`` in methods annotates the attribute too.
        for child in ast.walk(node):
            if (
                isinstance(child, ast.AnnAssign)
                and isinstance(child.target, ast.Attribute)
                and isinstance(child.target.value, ast.Name)
                and child.target.value.id == "self"
            ):
                info.attr_annotations.setdefault(
                    child.target.attr, child.annotation
                )
        return cid

    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols[stmt.name] = index_function(
                stmt, "", None, frozenset()
            )
        elif isinstance(stmt, ast.ClassDef):
            symbols[stmt.name] = index_class(stmt, "")


def _direct_parent_function(parent: _FunctionDef, child: _FunctionDef) -> bool:
    """Whether ``child`` is nested directly in ``parent`` (no def between)."""
    for node in ast.walk(parent):
        if node is parent or not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        if node is child:
            continue
        for grand in ast.walk(node):
            if grand is child:
                return False
    return True


def _assign_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        yield stmt.target


def _local_names(node: _FunctionDef) -> set[str]:
    """Names bound inside a function body (excluding nested defs)."""
    out: set[str] = set()

    def visit(item: ast.AST) -> None:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.add(item.name)
            return  # nested scope
        if isinstance(item, ast.Lambda):
            return
        if isinstance(item, ast.Name) and isinstance(item.ctx, ast.Store):
            out.add(item.id)
        elif isinstance(item, (ast.Import, ast.ImportFrom)):
            for alias in item.names:
                out.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(item, ast.ExceptHandler) and item.name:
            out.add(item.name)
        elif isinstance(item, (ast.Global, ast.Nonlocal)):
            out.difference_update(item.names)
            return
        for child in ast.iter_child_nodes(item):
            visit(child)

    for stmt in node.body:
        visit(stmt)
    return out


# ----------------------------------------------------------------------
# Per-function call-site resolution
# ----------------------------------------------------------------------
class _Resolver:
    """Resolves every call inside one function body."""

    def __init__(self, graph: CallGraph, function: FunctionInfo) -> None:
        self.graph = graph
        self.function = function
        self.module = function.module
        self.imports = graph.imports[self.module.relpath]
        self.symbols = graph.module_symbols[self.module.relpath]
        #: local name -> package class ids (flow-insensitive).
        self.local_types: dict[str, set[str]] = {}
        #: local name -> annotation expr (container value extraction).
        self.local_annotations: dict[str, ast.expr] = {}
        #: local name -> callable function ids (aliases, getattr folds).
        self.local_callables: dict[str, set[str]] = {}
        #: local name -> attribute names it aliases when the receiver is
        #: not a package object (``get_labels = endpoint_labels.get``):
        #: calling the alias classifies like calling the attribute.
        self.local_external_attrs: dict[str, set[str]] = {}
        self._seed_type_env()

    # -- type environment ---------------------------------------------
    def _seed_type_env(self) -> None:
        node = self.function.node
        args = (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        )
        for arg in args:
            if arg.annotation is not None:
                self.local_annotations[arg.arg] = arg.annotation
                classes = self.annotation_classes(arg.annotation)
                if classes:
                    self.local_types[arg.arg] = classes
        if self.function.class_id is not None and args:
            first = args[0].arg
            if first in ("self", "cls"):
                self.local_types[first] = {self.function.class_id}
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.local_annotations[stmt.target.id] = stmt.annotation
                classes = self.annotation_classes(stmt.annotation)
                if classes:
                    self.local_types[stmt.target.id] = classes
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._bind_local(target.id, stmt.value)
                elif isinstance(target, ast.Tuple) and isinstance(
                    stmt.value, ast.Tuple
                ) and len(target.elts) == len(stmt.value.elts):
                    # ``source, config = state.source, state.config``
                    for element, value in zip(
                        target.elts, stmt.value.elts
                    ):
                        if isinstance(element, ast.Name):
                            self._bind_local(element.id, value)

    def _bind_local(self, name: str, raw_value: ast.expr) -> None:
        value = _fold_getattr(raw_value)
        callables = self._callable_targets(value)
        if callables:
            self.local_callables.setdefault(name, set()).update(callables)
        else:
            dispatched = self._dispatch_table_callables(value)
            if dispatched:
                self.local_callables.setdefault(name, set()).update(
                    dispatched
                )
            elif isinstance(value, ast.Attribute):
                # Attribute of a non-package receiver: remember the
                # attribute name so a later call classifies like the
                # direct attribute call would.
                if not self.infer_types(value.value):
                    self.local_external_attrs.setdefault(
                        name, set()
                    ).add(value.attr)
        classes = self.infer_types(value, _depth=0)
        if classes:
            self.local_types.setdefault(name, set()).update(classes)

    def _dispatch_table_callables(self, value: ast.expr) -> set[str]:
        """Resolve ``TABLE[key]`` / ``TABLE.get(key)`` / ``{...}.get(key)``
        lookups against a dict literal of known functions."""
        table: ast.expr | None = None
        if isinstance(value, ast.Subscript):
            table = value.value
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        ):
            table = value.func.value
        if table is None:
            return set()
        if isinstance(table, ast.Dict):
            return self._dict_values_functions(table)
        if isinstance(table, ast.Name):
            return self._dict_literal_functions(table.id)
        return set()

    def _dict_literal_functions(self, table: str) -> set[str]:
        literal = self.graph.module_dict_literals[
            self.module.relpath
        ].get(table)
        if literal is None:
            return set()
        return self._dict_values_functions(literal)

    def _dict_values_functions(self, literal: ast.Dict) -> set[str]:
        out: set[str] = set()
        for entry in literal.values:
            resolved = self._callable_targets(_fold_getattr(entry))
            if not resolved:
                return set()  # a value we cannot place: stay dynamic
            out |= resolved
        return out

    def annotation_classes(self, expr: ast.expr) -> set[str]:
        """Package classes an annotation expression can denote."""
        expr = _unquote_annotation(expr)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            return self.annotation_classes(expr.left) | \
                self.annotation_classes(expr.right)
        if isinstance(expr, ast.Subscript):
            base = resolve_dotted(expr.value, self.imports)
            if base in ("typing.Optional", "Optional"):
                return self.annotation_classes(expr.slice)
            if base in ("typing.Union", "Union"):
                inner = expr.slice
                if isinstance(inner, ast.Tuple):
                    out: set[str] = set()
                    for element in inner.elts:
                        out |= self.annotation_classes(element)
                    return out
                return self.annotation_classes(inner)
            return set()  # containers / generics: receiver is not a class
        if isinstance(expr, ast.Constant) and expr.value is None:
            return set()
        origin = resolve_dotted(expr, self.imports)
        if origin is None:
            return set()
        return self._classes_for_origin(origin)

    def _classes_for_origin(self, origin: str) -> set[str]:
        local = self.symbols.get(origin)
        if local in self.graph.classes:
            return {local}  # type: ignore[misc]
        resolved = self.graph.resolve_symbol(origin)
        if resolved in self.graph.classes:
            return {resolved}  # type: ignore[misc]
        return set()

    def _annotation_value_classes(self, expr: ast.expr) -> set[str]:
        """Element/value classes of a container annotation (dict/list/...)."""
        expr = _unquote_annotation(expr)
        if isinstance(expr, ast.Subscript):
            inner = expr.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return self.annotation_classes(inner.elts[-1])
            return self.annotation_classes(inner)
        return set()

    def infer_types(self, expr: ast.expr, _depth: int = 0) -> set[str]:
        """Package classes ``expr`` may evaluate to (best effort)."""
        if _depth > 6:
            return set()
        expr = _fold_getattr(expr)
        if isinstance(expr, ast.Name):
            if expr.id in self.local_types:
                return set(self.local_types[expr.id])
            if expr.id not in self.function.local_names:
                annotation = self.graph.module_annotations[
                    self.module.relpath
                ].get(expr.id)
                if annotation is not None:
                    return self.annotation_classes(annotation)
            return set()
        if isinstance(expr, ast.Attribute):
            base_types = self.infer_types(expr.value, _depth + 1)
            out: set[str] = set()
            for class_id in base_types:
                for owner in self.graph.base_chain(class_id):
                    annotation = self.graph.classes[
                        owner
                    ].attr_annotations.get(expr.attr)
                    if annotation is not None:
                        out |= self._annotation_in_module(
                            annotation, self.graph.classes[owner].module
                        )
                        break
            if out:
                return out
            origin = resolve_dotted(expr, self.imports)
            if origin is not None:
                return self._classes_for_origin(origin)
            return set()
        if isinstance(expr, ast.Call):
            targets, _externals, _dynamic, _recv = self.call_targets(expr)
            out = set()
            for target in targets:
                if target in self.graph.classes:
                    out.add(target)
                    continue
                info = self.graph.functions.get(target)
                if info is not None and info.node.returns is not None:
                    out |= self._annotation_in_module(
                        info.node.returns, info.module
                    )
            return out
        if isinstance(expr, ast.Subscript):
            if isinstance(expr.value, ast.Name):
                annotation = self.local_annotations.get(expr.value.id)
                if annotation is not None:
                    return self._annotation_value_classes(annotation)
            return set()
        return set()

    def _annotation_in_module(
        self, annotation: ast.expr, module: ModuleContext
    ) -> set[str]:
        """Evaluate an annotation in the context of its defining module."""
        saved_imports, saved_symbols = self.imports, self.symbols
        self.imports = self.graph.imports[module.relpath]
        self.symbols = self.graph.module_symbols[module.relpath]
        try:
            return self.annotation_classes(annotation)
        finally:
            self.imports, self.symbols = saved_imports, saved_symbols

    def _callable_targets(self, expr: ast.expr) -> set[str]:
        """Function ids a non-call expression denotes (aliasing)."""
        if isinstance(expr, ast.Name):
            if expr.id in self.local_callables:
                return set(self.local_callables[expr.id])
            local = self.symbols.get(expr.id)
            if local in self.graph.functions:
                return {local}  # type: ignore[misc]
            origin = self.imports.get(expr.id)
            if origin is not None:
                resolved = self.graph.resolve_symbol(origin)
                if resolved in self.graph.functions:
                    return {resolved}  # type: ignore[misc]
            return set()
        if isinstance(expr, ast.Attribute):
            receiver_types = self.infer_types(expr.value)
            out: set[str] = set()
            for class_id in receiver_types:
                out |= self.graph.lookup_method(class_id, expr.attr)
            if out:
                return out
            origin = resolve_dotted(expr, self.imports)
            if origin is not None:
                resolved = self.graph.resolve_symbol(origin)
                if resolved in self.graph.functions:
                    return {resolved}  # type: ignore[misc]
            return set()
        return set()

    # -- call resolution ----------------------------------------------
    def call_targets(
        self, call: ast.Call
    ) -> tuple[set[str], set[str], bool, ast.expr | None]:
        """(project targets, external origins, is_dynamic, receiver)."""
        func = _fold_getattr(call.func)
        if isinstance(func, ast.Lambda):
            return set(), set(), False, None
        if isinstance(func, ast.Name):
            name = func.id
            callables = self.local_callables.get(name)
            if callables:
                return set(callables), set(), False, None
            aliased = self.local_external_attrs.get(name)
            if aliased:
                return (
                    set(),
                    {f"<attr>.{attr}" for attr in aliased},
                    False,
                    None,
                )
            if name == "cls" and self.function.class_id is not None:
                # ``cls(...)`` in a classmethod constructs the class (or
                # a package subclass: join their constructors).
                targets: set[str] = set()
                for class_id in (
                    {self.function.class_id}
                    | self.graph.subclasses_of(self.function.class_id)
                ):
                    ctor, _ext, _dyn, _recv = self._constructor_targets(
                        class_id
                    )
                    targets |= ctor
                return targets, set(), False, None
            index = self.function.param_index(name)
            if index is not None:
                bound = self.graph.param_bindings.get(
                    (self.function.id, index)
                )
                if bound:
                    return set(bound), set(), False, None
                # Deferred: a later binding pass may fill this in; the
                # placeholder edge keeps the site conservative.
                return set(), set(), True, None
            nested = self._nested_function(name)
            if nested is not None:
                return {nested}, set(), False, None
            local = self.symbols.get(name)
            if local is not None:
                if local in self.graph.functions:
                    return {local}, set(), False, None
                if local in self.graph.classes:
                    return self._constructor_targets(local)
            origin = self.imports.get(name)
            if origin is not None:
                resolved = self.graph.resolve_symbol(origin)
                if resolved in self.graph.functions:
                    return {resolved}, set(), False, None  # type: ignore[misc]
                if resolved in self.graph.classes:
                    return self._constructor_targets(resolved)  # type: ignore[arg-type]
                return set(), {origin}, False, None
            if name in self.function.local_names:
                # A local rebinding we could not trace to any callable:
                # degrade to the conservative unknown node.
                return set(), set(), True, None
            if name in _BUILTIN_NAMES:
                return set(), {f"builtins.{name}"}, False, None
            return set(), set(), True, None
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                # ``super().method()``: resolve in the package base
                # chain above the enclosing class; falling off the top
                # means an external base (object.__init__ &c.) -- pure.
                class_id = self.function.class_id
                if class_id is not None:
                    for owner in self.graph.base_chain(class_id)[1:]:
                        method = self.graph.classes[owner].methods.get(
                            func.attr
                        )
                        if method is not None:
                            return {method}, set(), False, None
                return set(), set(), False, None
            origin = resolve_dotted(func, self.imports)
            if origin is not None:
                head = origin.split(".")[0]
                headless = head in self.function.local_names or \
                    head in self.function.params
                if not headless:
                    resolved = self.graph.resolve_symbol(origin)
                    if resolved in self.graph.functions:
                        return {resolved}, set(), False, None  # type: ignore[misc]
                    if resolved in self.graph.classes:
                        return self._constructor_targets(resolved)  # type: ignore[arg-type]
                    local = self.symbols.get(head)
                    if local in self.graph.classes and "." in origin:
                        # ClassName.method(...) referenced directly.
                        methods = self.graph.lookup_method(
                            local, origin.split(".", 1)[1]  # type: ignore[arg-type]
                        )
                        if methods:
                            return methods, set(), False, func.value
                    if head in self.imports and head not in self.symbols:
                        return set(), {origin}, False, None
            receiver_types = self.infer_types(func.value)
            targets: set[str] = set()
            for class_id in receiver_types:
                targets |= self.graph.lookup_method(class_id, func.attr)
            if targets:
                return targets, set(), False, func.value
            if receiver_types:
                # Known package class without that method: inherited
                # from an external base (dataclass machinery etc.).
                return set(), set(), False, func.value
            if not (
                func.attr.startswith("__") and func.attr.endswith("__")
            ):
                # Unknown receiver: join every package method with this
                # name (dunders excluded -- joining every __init__ in
                # the package would drown the graph in false edges).
                fallback = self.graph.methods_named(func.attr)
                if fallback:
                    return fallback, set(), False, func.value
            return set(), {f"<attr>.{func.attr}"}, False, func.value
        if isinstance(func, ast.Subscript) and isinstance(
            func.value, ast.Name
        ):
            dispatched = self._dict_literal_functions(func.value.id)
            if dispatched:
                return dispatched, set(), False, None
        # Calling the result of a call/subscript: dynamic dispatch.
        return set(), set(), True, None

    def _nested_function(self, name: str) -> str | None:
        candidate = (
            f"{self.module.relpath}:"
            f"{self.function.qualname}.<locals>.{name}"
        )
        if candidate in self.graph.functions:
            return candidate
        return None

    def _constructor_targets(
        self, class_id: str
    ) -> tuple[set[str], set[str], bool, ast.expr | None]:
        init = self.graph.lookup_method(class_id, "__init__")
        new = self.graph.lookup_method(class_id, "__post_init__")
        targets = init | new
        if targets:
            return targets, set(), False, None
        return set(), set(), False, None

    # -- the walk ------------------------------------------------------
    def resolve(self) -> None:
        self._visit_body(self.function.node.body, ())

    def _visit_body(
        self, body: Sequence[ast.stmt], guards: tuple[frozenset[str], ...]
    ) -> None:
        for stmt in body:
            self._visit_stmt(stmt, guards)

    def _visit_stmt(
        self, stmt: ast.stmt, guards: tuple[frozenset[str], ...]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate node; implicit edge added by interproc
        if isinstance(stmt, ast.Try):
            handler_types = frozenset(
                name
                for handler in stmt.handlers
                if not is_transparent_handler(handler)
                for name in self._handler_type_names(handler)
            )
            self._visit_body(stmt.body, (handler_types, *guards))
            for handler in stmt.handlers:
                self._visit_body(handler.body, guards)
            self._visit_body(stmt.orelse, guards)
            self._visit_body(stmt.finalbody, guards)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self._visit_expr(handler.type, guards)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child, guards)
            elif isinstance(child, ast.stmt):
                self._visit_stmt(child, guards)
            elif isinstance(
                child,
                (
                    ast.comprehension, ast.keyword, ast.withitem,
                    ast.ExceptHandler, ast.arguments,
                ),
            ):
                for grand in ast.walk(child):
                    if isinstance(grand, ast.Call):
                        self._record_call(grand, guards)

    def _visit_expr(
        self, expr: ast.expr, guards: tuple[frozenset[str], ...]
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, guards)

    def _handler_type_names(self, handler: ast.ExceptHandler) -> set[str]:
        if handler.type is None:
            return {"BaseException"}
        exprs = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        out: set[str] = set()
        for expr in exprs:
            origin = resolve_dotted(expr, self.imports)
            if origin is None:
                continue
            resolved = self.graph.resolve_symbol(origin)
            if resolved is None:
                resolved = self.symbols.get(origin)
            if resolved in self.graph.classes:
                out.add(resolved)  # type: ignore[arg-type]
            else:
                out.add(origin.split(".")[-1])
        return out

    def _record_call(
        self, call: ast.Call, guards: tuple[frozenset[str], ...]
    ) -> None:
        targets, externals, dynamic, receiver = self.call_targets(call)
        bindings = self._bindings(call, receiver)
        self._register_passed_callables(call, targets)
        target_ids = tuple(sorted(targets)) if targets else (
            (UNKNOWN,) if dynamic else ()
        )
        site = CallSite(
            caller=self.function.id,
            targets=target_ids,
            externals=tuple(sorted(externals)),
            node=call,
            line=call.lineno,
            bindings=bindings,
            guards=guards,
        )
        self.graph.call_sites[self.function.id].append(site)
        for target in target_ids:
            self.graph.edges[self.function.id].add(target)

    def _bindings(
        self, call: ast.Call, receiver: ast.expr | None
    ) -> tuple[tuple[int, str], ...]:
        out: list[tuple[int, str]] = []
        offset = 0
        if receiver is not None:
            base = _base_name(receiver)
            if base is not None:
                out.append((0, base))
            offset = 1
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            base = _base_name(arg)
            if base is not None:
                out.append((position + offset, base))
        return tuple(out)

    def _register_passed_callables(
        self, call: ast.Call, targets: set[str]
    ) -> None:
        """Record package functions passed as arguments (higher-order)."""
        for target in targets:
            info = self.graph.functions.get(target)
            if info is None:
                continue
            offset = 1 if info.class_id is not None and info.params[:1] in (
                ("self",), ("cls",)
            ) else 0
            for position, arg in enumerate(call.args):
                passed = self._passed_callable(arg)
                if not passed:
                    continue
                self.graph.param_bindings.setdefault(
                    (target, position + offset), set()
                ).update(passed)
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                passed = self._passed_callable(keyword.value)
                if not passed:
                    continue
                index = info.param_index(keyword.arg)
                if index is not None:
                    self.graph.param_bindings.setdefault(
                        (target, index), set()
                    ).update(passed)

    def _passed_callable(self, arg: ast.expr) -> set[str]:
        if isinstance(arg, ast.Lambda):
            return {LAMBDA}
        return self._callable_targets(_fold_getattr(arg))


def _bind_param_calls(graph: CallGraph) -> None:
    """Second pass: re-resolve calls through parameters now that every
    higher-order binding has been observed."""
    for function in graph.functions.values():
        updated: list[CallSite] = []
        changed = False
        for site in graph.call_sites[function.id]:
            func = _fold_getattr(site.node.func)
            if (
                site.targets == (UNKNOWN,)
                and isinstance(func, ast.Name)
            ):
                index = function.param_index(func.id)
                if index is not None:
                    bound = graph.param_bindings.get((function.id, index))
                    if bound:
                        site = CallSite(
                            caller=site.caller,
                            targets=tuple(sorted(bound)),
                            externals=site.externals,
                            node=site.node,
                            line=site.line,
                            bindings=site.bindings,
                            guards=site.guards,
                        )
                        changed = True
            updated.append(site)
        if changed:
            graph.call_sites[function.id] = updated
            edges = graph.edges[function.id] = set()
            for site in updated:
                edges.update(site.targets)


# ----------------------------------------------------------------------
# Shared expression helpers
# ----------------------------------------------------------------------
def _fold_getattr(expr: ast.expr) -> ast.expr:
    """Fold ``getattr(x, "name"[, default])`` into ``x.name``."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "getattr"
        and len(expr.args) >= 2
        and isinstance(expr.args[1], ast.Constant)
        and isinstance(expr.args[1].value, str)
    ):
        return ast.copy_location(
            ast.Attribute(
                value=expr.args[0],
                attr=expr.args[1].value,
                ctx=ast.Load(),
            ),
            expr,
        )
    return expr


def is_transparent_handler(handler: ast.ExceptHandler) -> bool:
    """Whether an ``except`` clause re-raises what it caught.

    ``except BaseException: cleanup(); raise`` (and ``raise e`` of the
    capture name) does not swallow anything: for raise propagation it
    must not count as a guard, or the cleanup pattern would launder
    every exception into the handler's declared type.
    """
    for node in ast.walk(handler):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:
            return True
        if (
            handler.name is not None
            and isinstance(node.exc, ast.Name)
            and node.exc.id == handler.name
        ):
            return True
    return False


def _unquote_annotation(expr: ast.expr) -> ast.expr:
    """Parse a string annotation (``"_ShardJournal | None"``) to an expr."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            parsed = ast.parse(expr.value, mode="eval")
        except SyntaxError:
            return expr
        return parsed.body
    return expr


def _base_name(expr: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript, ast.Starred)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None
