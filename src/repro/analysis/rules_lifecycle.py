"""Resource-lifecycle rule for the out-of-core storage layer.

The disk backend (:mod:`repro.graph.slab`, :mod:`repro.graph.diskstore`)
and the shard transport (:mod:`repro.core.transport`) hand out OS-level
handles -- ``mmap`` mappings, POSIX shared-memory segments, slab
readers/writers.  A handle opened outside a managed lifecycle survives
as long as the process does: the mapping pins the file pages, the
segment name leaks past the run, and on hosts with small ``/dev/shm``
an unclosed segment starves later runs.  One rule keeps every opening
site accountable:

* ``slab-lifecycle`` -- every construction of a tracked handle type
  (:data:`TRACKED_HANDLES`) must be (a) the context expression of a
  ``with`` statement, (b) lexically inside a class that defines
  ``close()`` (a registry/owner object whose ``close`` sweeps its
  handles), (c) bound to a name on which ``.close()`` is called
  somewhere in the same function, or (d) returned directly to the
  caller (an explicit ownership transfer, as in factory functions).
  Anything else is a leak waiting for process exit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import (
    build_import_table,
    build_parent_map,
    dotted_name,
    resolve_dotted,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import FileRule, ModuleContext, register

#: Fully qualified constructors whose return value is an OS resource.
TRACKED_DOTTED = frozenset({
    "mmap.mmap",
    "multiprocessing.shared_memory.SharedMemory",
})

#: Handle classes of this repo, matched by their final name segment so
#: both ``SlabReader(...)`` and ``slab.SlabReader(...)`` are caught.
TRACKED_HANDLES = frozenset({
    "SharedMemory",
    "Slab",
    "SlabReader",
    "SlabWriter",
})


def _tracked_constructor(
    call: ast.Call, imports: dict[str, str]
) -> str | None:
    """The tracked handle name this call constructs, or ``None``."""
    resolved = resolve_dotted(call.func, imports)
    if resolved is None:
        return None
    if resolved in TRACKED_DOTTED:
        return resolved
    last = resolved.split(".")[-1]
    if last in TRACKED_HANDLES:
        return last
    return None


def _closed_names(scope: ast.AST) -> set[str]:
    """Dotted receivers of every ``<name>.close()`` call in ``scope``."""
    closed: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "close"
        ):
            receiver = dotted_name(node.func.value)
            if receiver is not None:
                closed.add(receiver)
    return closed


def _assigned_name(parent: ast.AST, call: ast.Call) -> str | None:
    """The dotted name the call's result is bound to, if any."""
    if isinstance(parent, ast.Assign) and parent.value is call:
        if len(parent.targets) == 1:
            return dotted_name(parent.targets[0])
    if isinstance(parent, ast.AnnAssign) and parent.value is call:
        return dotted_name(parent.target)
    return None


@register
class SlabLifecycleRule(FileRule):
    name = "slab-lifecycle"
    description = (
        "mmap/shared-memory/slab handles must be opened as a context "
        "manager, inside a close()-owning class, bound to a name that "
        "is closed in the same function, or returned to the caller"
    )
    rationale = (
        "an untracked mmap or SharedMemory segment lives until process "
        "exit: mapped slab pages stay pinned, segment names leak into "
        "/dev/shm and starve later runs, and crash-recovery sweeps "
        "cannot reclaim what no registry tracked; every opening site "
        "must name its owner"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports = build_import_table(module.tree)
        parents = build_parent_map(module.tree)
        managed_classes = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
            and any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "close"
                for stmt in node.body
            )
        ]
        in_managed_class = {
            id(node)
            for cls in managed_classes
            for node in ast.walk(cls)
        }
        with_items = {
            id(item.context_expr)
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            handle = _tracked_constructor(node, imports)
            if handle is None:
                continue
            if id(node) in with_items or id(node) in in_managed_class:
                continue
            parent = parents.get(node)
            if parent is None or isinstance(parent, ast.Return):
                continue  # ownership transfers to the caller
            bound = _assigned_name(parent, node)
            if bound is not None:
                scope = self._enclosing_function(node, parents)
                if bound in _closed_names(scope):
                    continue
            yield self.finding(
                module, node,
                f"{handle} handle opened outside a managed lifecycle; "
                f"use a with-statement, own it from a class that "
                f"defines close(), close the bound name in this "
                f"function, or return it to the caller",
            )

    @staticmethod
    def _enclosing_function(
        node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> ast.AST:
        """Nearest enclosing function, or the module for top-level code."""
        current: ast.AST | None = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        root = node
        while root in parents:
            root = parents[root]
        return root
