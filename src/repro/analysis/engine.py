"""The ``pghive-lint`` driver: walk targets, run rules, apply suppressions.

The engine parses every ``*.py`` under the target paths once, hands each
module to the applicable :class:`~repro.analysis.registry.FileRule`\\ s,
hands the whole target to every
:class:`~repro.analysis.registry.ProjectRule`, filters findings through
the module's suppression directives, and finally audits the directives
themselves (unused or unexplained suppressions are findings too).

Everything is deterministic: files are visited in sorted order and the
final report is sorted by path, line, and rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.cache import LintCache
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.registry import (
    FileRule,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.analysis.suppress import SuppressionSet, collect_suppressions

__all__ = ["LintRun", "lint_paths"]

SYNTAX_ERROR = "syntax-error"


class LintRun:
    """One lint invocation over a set of targets."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        min_severity: Severity = Severity.WARNING,
        cache: LintCache | None = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.min_severity = min_severity
        self.cache = cache

    def run(self, paths: Iterable[str | Path]) -> list[Finding]:
        modules, parse_failures = _load_modules(paths)
        rule_names = tuple(sorted(rule.name for rule in self.rules))
        run_key: str | None = None
        if self.cache is not None and not parse_failures:
            run_key = self.cache.run_key(
                [module.path for module in modules],
                rule_names,
                int(self.min_severity),
            )
            cached = self.cache.load(run_key)
            if cached is not None:
                return cached
        project = ProjectContext(
            root=_common_root(modules), modules=modules
        )
        suppressions = {
            module.relpath: collect_suppressions(module.path, module.source)
            for module in modules
        }
        findings: list[Finding] = list(parse_failures)
        for module in modules:
            findings.extend(self._file_findings(module))
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check(project))
        findings = self._apply_suppressions(findings, modules, suppressions)
        active = {rule.name for rule in self.rules}
        audit_scope = None if active == {r.name for r in all_rules()} \
            else active
        for suppression_set in suppressions.values():
            findings.extend(suppression_set.audit(audit_scope))
        findings = [
            f for f in findings if f.severity >= self.min_severity
        ]
        result = sort_findings(findings)
        if self.cache is not None and run_key is not None:
            self.cache.store(run_key, result)
        return result

    def _file_findings(self, module: ModuleContext) -> list[Finding]:
        """File-rule findings for one module, through the per-file cache.

        Cached pre-suppression and pre-severity-filter: both are
        re-derived from the same (content-hashed) source, so a hit can
        never serve stale suppression state.
        """
        file_rules = [
            rule for rule in self.rules
            if isinstance(rule, FileRule) and rule.applies_to(module)
        ]
        if not file_rules:
            return []
        key: str | None = None
        if self.cache is not None:
            key = self.cache.file_key(
                module.path,
                tuple(sorted(rule.name for rule in file_rules)),
            )
            cached = self.cache.load(key)
            if cached is not None:
                return cached
        findings: list[Finding] = []
        for rule in file_rules:
            findings.extend(rule.check(module))
        if self.cache is not None and key is not None:
            self.cache.store(key, findings)
        return findings

    def _apply_suppressions(
        self,
        findings: list[Finding],
        modules: list[ModuleContext],
        suppressions: dict[str, SuppressionSet],
    ) -> list[Finding]:
        by_path = {str(module.path): module.relpath for module in modules}
        kept: list[Finding] = []
        for finding in findings:
            relpath = by_path.get(finding.path)
            if relpath is not None and suppressions[relpath].is_suppressed(
                finding.rule, finding.line
            ):
                continue
            kept.append(finding)
        return kept


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    min_severity: Severity = Severity.WARNING,
    cache_dir: str | Path | None = None,
) -> list[Finding]:
    """Lint files/directories and return the sorted findings."""
    cache = LintCache(Path(cache_dir)) if cache_dir is not None else None
    return LintRun(
        rules=rules, min_severity=min_severity, cache=cache
    ).run(paths)


# ----------------------------------------------------------------------
# Target resolution
# ----------------------------------------------------------------------
def _load_modules(
    paths: Iterable[str | Path],
) -> tuple[list[ModuleContext], list[Finding]]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            root = _descend_into_package(path)
            files.extend(sorted(root.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")

    modules: list[ModuleContext] = []
    failures: list[Finding] = []
    seen: set[Path] = set()
    for file in files:
        resolved = file.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            failures.append(Finding(
                path=str(file),
                line=exc.lineno or 1,
                rule=SYNTAX_ERROR,
                message=f"cannot parse: {exc.msg}",
                severity=Severity.ERROR,
            ))
            continue
        modules.append(ModuleContext(
            path=file,
            relpath=_package_relpath(file),
            tree=tree,
            source=source,
        ))
    modules.sort(key=lambda m: m.relpath)
    return modules, failures


def _descend_into_package(root: Path) -> Path:
    """Resolve ``src`` or repo roots down to the ``repro`` package.

    Linting ``src`` or the repo checkout behaves identically to linting
    ``src/repro``: directory-scoped rules key on package-relative paths
    like ``core/config.py``.
    """
    for candidate in (root / "repro", root / "src" / "repro"):
        if (candidate / "__init__.py").is_file():
            return candidate
    return root


def _package_relpath(file: Path) -> str:
    """Path of ``file`` relative to its outermost package directory."""
    resolved = file.resolve()
    top = resolved.parent
    while (top.parent / "__init__.py").is_file():
        top = top.parent
    if (top / "__init__.py").is_file():
        return resolved.relative_to(top).as_posix()
    return resolved.relative_to(resolved.parent).as_posix()


def _common_root(modules: list[ModuleContext]) -> Path:
    if not modules:
        return Path.cwd()
    parents = [module.path.resolve().parent for module in modules]
    common = parents[0]
    for parent in parents[1:]:
        while not parent.is_relative_to(common):
            common = common.parent
    return common
