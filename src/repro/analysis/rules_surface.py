"""Surface-consistency rules.

These project-level rules keep the three public surfaces of the repo --
the :class:`~repro.core.config.PGHiveConfig` dataclass, the ``pghive``
CLI, and ``docs/API.md`` -- from drifting apart:

* ``config-cli-surface`` -- every ``PGHiveConfig`` field must be
  reachable from the CLI (same-named ``--flag``, a registered alias, or
  an explicit allowlist entry explaining why it is library-only), and
  every CLI subcommand registered with ``add_parser`` must be mentioned
  in ``docs/API.md``;
* ``env-var-docs`` -- every ``PGHIVE_*`` environment variable referenced
  in code must be documented in ``docs/API.md``;
* ``init-exports`` -- every name in a package ``__init__``'s ``__all__``
  must actually be bound in that module and be mentioned in
  ``docs/API.md``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.astutil import string_constants
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectContext, ProjectRule, register

#: Config fields exposed under a differently spelled CLI flag.
CLI_FLAG_ALIASES = {
    "memoize_patterns": "--memoize",
    "infer_value_profiles": "--profiles",
    "exact_cardinality_bounds": "--bounds",
    "server_host": "--host",
    "server_port": "--port",
    "server_workers": "--workers",
    "server_queue_depth": "--queue-depth",
}

#: Config fields deliberately *not* exposed as CLI flags, with the
#: reason.  Every entry here is an audited decision, not an oversight.
CLI_FLAG_ALLOWLIST = {
    "word2vec": "nested hyperparameter dataclass; library-level tuning",
    "label_weight": "algorithm hyperparameter (section 4.1); paper value",
    "jaccard_threshold": "theta of Algorithm 2; paper value, library-level",
    "endpoint_jaccard_threshold": "Definition 3.3 merge threshold; "
                                  "library-level",
    "bucket_length": "manual ELSH override; the adaptive strategy is the "
                     "supported surface",
    "num_tables": "manual ELSH override; adaptive by default",
    "alpha": "manual label-diversity override; adaptive by default",
    "adaptive_sample_size": "mu-estimation internals (section 4.2)",
    "adaptive_sample_fraction": "mu-estimation internals (section 4.2)",
    "minhash_rows_per_band": "MinHash banding internals",
    "post_processing": "disabling constraint inference is a library-level "
                       "escape hatch only",
    "infer_datatypes_by_sampling": "sampled-datatype mode is driven by the "
                                   "evaluation harness, not operators",
    "datatype_sample_fraction": "parameter of the sampled-datatype mode",
    "datatype_sample_minimum": "parameter of the sampled-datatype mode",
    "shard_retry_backoff": "scheduling-only knob; never affects output",
}

_ENV_VAR = re.compile(r"PGHIVE_[A-Z][A-Z0-9_]*")


def _api_doc(project: ProjectContext) -> str | None:
    return project.doc_text("docs/API.md")


@register
class ConfigCliSurfaceRule(ProjectRule):
    name = "config-cli-surface"
    description = (
        "every PGHiveConfig field needs a matching CLI flag, a "
        "registered alias, or an allowlist entry; every CLI subcommand "
        "must be documented in docs/API.md"
    )
    rationale = (
        "config knobs that silently never reach the CLI create two "
        "classes of users; the allowlist makes library-only knobs an "
        "explicit, reviewed decision; an undocumented subcommand is "
        "operator surface nobody can discover"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        config = project.module("core/config.py")
        cli = project.module("cli.py")
        if config is None or cli is None:
            return  # partial lint targets skip the cross-file check
        flags = {
            text
            for _line, text in string_constants(cli.tree)
            if text.startswith("--")
        }
        for node in ast.walk(config.tree):
            if not (isinstance(node, ast.ClassDef)
                    and node.name == "PGHiveConfig"):
                continue
            for stmt in node.body:
                if not (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    continue
                field = stmt.target.id
                flag = "--" + field.replace("_", "-")
                alias = CLI_FLAG_ALIASES.get(field)
                if flag in flags or (alias is not None and alias in flags):
                    continue
                if field in CLI_FLAG_ALLOWLIST:
                    continue
                yield self.finding(
                    project,
                    f"PGHiveConfig.{field} has no CLI flag ({flag}), no "
                    f"alias in CLI_FLAG_ALIASES, and no "
                    f"CLI_FLAG_ALLOWLIST entry; wire it into cli.py or "
                    f"allowlist it with a reason",
                    path=config.path,
                    line=stmt.lineno,
                )
        doc = _api_doc(project)
        if doc is None:
            return
        for line, name in self._subcommands(cli.tree):
            if not re.search(rf"\b{re.escape(name)}\b", doc):
                yield self.finding(
                    project,
                    f"CLI subcommand {name!r} is not documented in "
                    f"docs/API.md; add it to the command-line section "
                    f"(or remove the subcommand)",
                    path=cli.path,
                    line=line,
                )

    @staticmethod
    def _subcommands(tree: ast.Module) -> list[tuple[int, str]]:
        """``(line, name)`` of every ``*.add_parser("name", ...)`` call."""
        commands: list[tuple[int, str]] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                commands.append((node.lineno, node.args[0].value))
        return commands


@register
class EnvVarDocsRule(ProjectRule):
    name = "env-var-docs"
    description = (
        "every PGHIVE_* environment variable referenced in code must be "
        "documented in docs/API.md"
    )
    rationale = (
        "undocumented env vars are invisible config surface: a run's "
        "behaviour stops being reproducible from its documented inputs"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        references: dict[str, tuple[str, int]] = {}
        for module in project.modules:
            for line, text in string_constants(module.tree):
                for var in _ENV_VAR.findall(text):
                    references.setdefault(var, (str(module.path), line))
        if not references:
            return
        doc = _api_doc(project)
        for var in sorted(references):
            path, line = references[var]
            if doc is None:
                yield Finding(
                    path=path, line=line, rule=self.name,
                    message=(
                        f"environment variable {var} is referenced but "
                        f"docs/API.md was not found to document it"
                    ),
                    severity=self.severity,
                )
            elif var not in doc:
                yield Finding(
                    path=path, line=line, rule=self.name,
                    message=(
                        f"environment variable {var} is not documented "
                        f"in docs/API.md; add it to the environment "
                        f"variables section"
                    ),
                    severity=self.severity,
                )


@register
class InitExportsRule(ProjectRule):
    name = "init-exports"
    description = (
        "every __all__ re-export must exist in its module and be "
        "mentioned in docs/API.md"
    )
    rationale = (
        "a stale __all__ entry breaks star-imports and the documented "
        "API contract; an undocumented one is public surface nobody "
        "can discover"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        doc = _api_doc(project)
        for module in project.modules:
            if not module.relpath.endswith("__init__.py"):
                continue
            exported = self._exported_names(module.tree)
            if exported is None:
                continue
            bound = self._bound_names(module.tree)
            for name, line in exported:
                if name not in bound:
                    yield Finding(
                        path=str(module.path), line=line, rule=self.name,
                        message=(
                            f"__all__ lists {name!r} but the module "
                            f"neither defines nor imports it"
                        ),
                        severity=self.severity,
                    )
                elif doc is not None and not \
                        re.search(rf"\b{re.escape(name)}\b", doc):
                    yield Finding(
                        path=str(module.path), line=line, rule=self.name,
                        message=(
                            f"public re-export {name!r} is not mentioned "
                            f"in docs/API.md; document it (or stop "
                            f"exporting it)"
                        ),
                        severity=self.severity,
                    )

    @staticmethod
    def _exported_names(
        tree: ast.Module,
    ) -> list[tuple[str, int]] | None:
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in targets
            ):
                continue
            if not isinstance(value, (ast.List, ast.Tuple)):
                return None
            names: list[tuple[str, int]] = []
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, str
                ):
                    names.append((elt.value, elt.lineno))
            return names
        return None

    @staticmethod
    def _bound_names(tree: ast.Module) -> set[str]:
        bound: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                    elif isinstance(target, ast.Tuple):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                bound.add(elt.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bound.add(node.target.id)
        return bound
