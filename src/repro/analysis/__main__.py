"""CLI for ``pghive-lint`` (``python -m repro.analysis``).

Exit codes: 0 -- no findings; 1 -- findings; 2 -- usage error or an
internal engine error (the two failure modes scripts must distinguish
from "the tree is dirty").
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback

from repro.analysis.engine import lint_paths
from repro.analysis.findings import (
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.registry import FileRule, all_rules, get_rule


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pghive-lint",
        description=(
            "AST static analysis enforcing PG-HIVE's determinism, "
            "fork-safety and config-surface invariants"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--min-severity", choices=["warning", "error"], default="warning",
        help="report findings at or above this severity "
             "(default: warning, i.e. everything)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help=(
            "directory for the content-hash result cache; entries are "
            "keyed by file SHA-256 and the rule-set version, so edits "
            "and rule changes invalidate automatically"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines: list[str] = []
    for rule in all_rules():
        scope = "project-wide"
        if isinstance(rule, FileRule):
            scope = ", ".join(rule.dirs) if rule.dirs else "all modules"
            if rule.exempt:
                scope += f" (except {', '.join(rule.exempt)})"
        lines.append(
            f"{rule.name} [{rule.severity.name.lower()}] ({scope})\n"
            f"    {rule.description}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _run(argv)
    except BrokenPipeError:  # e.g. `pghive-lint --list-rules | head`
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not hit the closed pipe again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except SystemExit:
        raise
    except Exception:  # noqa: BLE001 - the CLI boundary
        # An engine bug is not a lint finding: report it loudly and use
        # a distinct exit code so CI never mistakes a crashed run for a
        # clean (0) or merely dirty (1) tree.
        traceback.print_exc()
        print(
            "pghive-lint: internal error (this is a bug in the linter, "
            "not a finding)",
            file=sys.stderr,
        )
        return 2


def _run(argv: list[str] | None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    rules = None
    if args.rule:
        try:
            rules = [get_rule(name) for name in args.rule]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    try:
        findings = lint_paths(
            args.paths,
            rules=rules,
            min_severity=Severity.parse(args.min_severity),
            cache_dir=args.cache,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        active = rules if rules is not None else all_rules()
        print(render_sarif(
            findings,
            {rule.name: rule.description for rule in active},
        ))
    elif findings:
        print(render_text(findings))
    if findings:
        count = len(findings)
        print(
            f"pghive-lint: {count} finding{'s' if count != 1 else ''}",
            file=sys.stderr,
        )
        return 1
    if args.format == "text":
        print("pghive-lint: no findings", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
