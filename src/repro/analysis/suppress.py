"""Suppression comments for ``pghive-lint``.

Syntax (in a ``#`` comment, anywhere on the line)::

    # pghive-lint: disable=rule-name -- why this is safe here
    # pghive-lint: disable=rule-a,rule-b -- shared justification
    # pghive-lint: disable-file=rule-name -- whole-module justification

A ``disable`` directive silences findings of the named rules on its own
line and, when the comment stands alone, on the next code line.  A
``disable-file`` directive silences the rules for the whole module.

Suppressions are themselves linted: a directive that silences nothing
is reported as ``unused-suppression``, and one without a ``--
justification`` trailer is reported as ``unexplained-suppression`` --
the CI gate requires zero of both, so every suppression in the tree is
live and explained.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, Severity

__all__ = [
    "Suppression",
    "SuppressionSet",
    "UNEXPLAINED_SUPPRESSION",
    "UNUSED_SUPPRESSION",
    "collect_suppressions",
]

UNUSED_SUPPRESSION = "unused-suppression"
UNEXPLAINED_SUPPRESSION = "unexplained-suppression"

_DIRECTIVE = re.compile(
    r"#\s*pghive-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+?)"
    r"(?:\s+--\s*(?P<reason>.*))?\s*$"
)


@dataclass
class Suppression:
    """One parsed directive."""

    path: Path
    line: int
    rules: tuple[str, ...]
    file_wide: bool
    reason: str
    #: Lines the directive covers (empty for file-wide).
    covered_lines: tuple[int, ...] = ()
    used: bool = field(default=False, compare=False)

    def matches(self, rule: str, line: int) -> bool:
        if rule not in self.rules:
            return False
        return self.file_wide or line in self.covered_lines


@dataclass
class SuppressionSet:
    """All directives of one module, with usage tracking."""

    suppressions: list[Suppression] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        hit = False
        for suppression in self.suppressions:
            if suppression.matches(rule, line):
                suppression.used = True
                hit = True
        return hit

    def audit(self, active_rules: set[str] | None = None) -> list[Finding]:
        """Findings about the suppressions themselves.

        When ``active_rules`` is given (a ``--rule`` filtered run), only
        directives mentioning an active rule are audited -- a full run
        audits everything.
        """
        findings: list[Finding] = []
        for sup in self.suppressions:
            if active_rules is not None and not (
                set(sup.rules) & active_rules
            ):
                continue
            if not sup.reason:
                findings.append(Finding(
                    path=str(sup.path),
                    line=sup.line,
                    rule=UNEXPLAINED_SUPPRESSION,
                    message=(
                        "suppression has no justification; append "
                        "' -- <reason>' explaining why the rule is safe "
                        "to silence here"
                    ),
                    severity=Severity.ERROR,
                ))
            if not sup.used:
                findings.append(Finding(
                    path=str(sup.path),
                    line=sup.line,
                    rule=UNUSED_SUPPRESSION,
                    message=(
                        f"suppression of {', '.join(sup.rules)} matches no "
                        f"finding; delete the stale directive"
                    ),
                    severity=Severity.ERROR,
                ))
        return findings


def collect_suppressions(path: Path, source: str) -> SuppressionSet:
    """Parse every directive comment in ``source``."""
    comments: list[tuple[int, str, bool]] = []  # (line, text, alone)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - engine
        return SuppressionSet()                 # rejects unparsable files
    code_lines: set[int] = set()
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            alone = tok.line[: tok.start[1]].strip() == ""
            comments.append((tok.start[0], tok.string, alone))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])

    out = SuppressionSet()
    for line, text, alone in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",")
            if part.strip()
        )
        if not rules:
            continue
        file_wide = match.group("kind") == "disable-file"
        covered: tuple[int, ...] = ()
        if not file_wide:
            if alone:
                covered = (line, _next_code_line(line, code_lines))
            else:
                covered = (line,)
        out.suppressions.append(Suppression(
            path=path,
            line=line,
            rules=rules,
            file_wide=file_wide,
            reason=(match.group("reason") or "").strip(),
            covered_lines=covered,
        ))
    return out


def _next_code_line(after: int, code_lines: set[int]) -> int:
    following = [line for line in code_lines if line > after]
    return min(following) if following else after
