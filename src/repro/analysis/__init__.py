"""``pghive-lint``: AST static analysis enforcing the repo's invariants.

The repo's core guarantees -- parallel sharded discovery is
byte-identical to sequential output, fault-recovered runs reproduce
clean runs exactly, and every knob is reachable from the documented
surface -- are example-tested but easy to break silently: one unseeded
RNG, one set iteration feeding serialized output, one unpicklable field
on a shard payload.  This package encodes those invariants as static
rules that run in CI (``python -m repro.analysis`` or the
``pghive-lint`` console script) next to ``mypy --strict``.

Rule families (see ``docs/API.md`` for the full catalogue):

* determinism -- ``wall-clock``, ``unseeded-rng``,
  ``unsorted-iteration``, ``id-keyed-dict``, ``env-read``;
* fork/pickle safety -- ``payload-pickle``, ``worker-closure``;
* resource lifecycle -- ``slab-lifecycle``;
* surface consistency -- ``config-cli-surface``, ``env-var-docs``,
  ``init-exports``;
* hygiene -- ``bare-except``, ``mutable-default``, ``assert-ban``,
  ``missing-annotations``;
* whole-program (interprocedural effect analysis over the call graph)
  -- ``worker-reachability``, ``merge-purity``,
  ``global-mutation-race``, ``exception-surface``.

Findings are suppressed per line with a justified directive::

    risky_line()  # pghive-lint: disable=rule-name -- why it is safe

Unused or unjustified suppressions are themselves findings, so the
suppression inventory can never rot.
"""

from __future__ import annotations

# Importing the rule modules registers every rule exactly once.
from repro.analysis import (  # noqa: F401  (registration side effects)
    rules_determinism,
    rules_forksafety,
    rules_hygiene,
    rules_interproc,
    rules_lifecycle,
    rules_surface,
)
from repro.analysis.cache import LintCache
from repro.analysis.engine import LintRun, lint_paths
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    FileRule,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)

__all__ = [
    "FileRule",
    "Finding",
    "LintCache",
    "LintRun",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    """Console-script entry point (``pghive-lint``)."""
    from repro.analysis.__main__ import main as _main

    return _main(argv)
