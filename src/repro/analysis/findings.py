"""Finding and severity model for ``pghive-lint``.

A :class:`Finding` is one rule violation at one source location.  The
canonical text rendering is ``path:line: RULE message`` (column added
when known), matching compiler conventions so editors and CI annotate
the right line.  ``--format=json`` emits the same records as a JSON
array for machine consumers.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` findings break an invariant the repo guarantees (byte-
    identical parallel output, seeded replay, shard pickling) and fail
    the build.  ``WARNING`` findings are hygiene hazards that default to
    failing too (the CI gate runs with warnings as errors) but can be
    filtered with ``--min-severity=error``.
    """

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    column: int = field(default=0, compare=False)

    def render(self) -> str:
        location = f"{self.path}:{self.line}"
        if self.column:
            location = f"{location}:{self.column}"
        return f"{location}: {self.rule} [{self.severity.name.lower()}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "message": self.message,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: path, then line, then rule name."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def render_text(findings: list[Finding]) -> str:
    return "\n".join(f.render() for f in sort_findings(findings))


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        [f.as_dict() for f in sort_findings(findings)], indent=2
    )
