"""Finding and severity model for ``pghive-lint``.

A :class:`Finding` is one rule violation at one source location.  The
canonical text rendering is ``path:line: RULE message`` (column added
when known), matching compiler conventions so editors and CI annotate
the right line.  ``--format=json`` emits the same records as a JSON
array for machine consumers.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Mapping


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` findings break an invariant the repo guarantees (byte-
    identical parallel output, seeded replay, shard pickling) and fail
    the build.  ``WARNING`` findings are hygiene hazards that default to
    failing too (the CI gate runs with warnings as errors) but can be
    filtered with ``--min-severity=error``.
    """

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    column: int = field(default=0, compare=False)
    #: Witness call chain (root -> ... -> effect site) for findings
    #: produced by the interprocedural rules; empty for file rules.
    trace: tuple[str, ...] = field(default=(), compare=False)

    def render(self) -> str:
        location = f"{self.path}:{self.line}"
        if self.column:
            location = f"{location}:{self.column}"
        return f"{location}: {self.rule} [{self.severity.name.lower()}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "message": self.message,
        }
        if self.trace:
            record["trace"] = list(self.trace)
        return record

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the result cache)."""
        return cls(
            path=str(record["path"]),
            line=int(record["line"]),  # type: ignore[arg-type]
            column=int(record.get("column", 0)),  # type: ignore[arg-type]
            rule=str(record["rule"]),
            message=str(record["message"]),
            severity=Severity.parse(str(record["severity"])),
            trace=tuple(
                str(hop) for hop in record.get("trace", ())  # type: ignore[union-attr]
            ),
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: path, then line, then rule name."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def render_text(findings: list[Finding]) -> str:
    return "\n".join(f.render() for f in sort_findings(findings))


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        [f.as_dict() for f in sort_findings(findings)], indent=2
    )


def render_sarif(
    findings: list[Finding],
    rule_descriptions: Mapping[str, str] | None = None,
) -> str:
    """Render findings as a SARIF 2.1.0 log (one run, one driver).

    CI uploads this as an artifact so findings annotate pull requests;
    ``rule_descriptions`` (rule name -> one-line description) populates
    the driver's rule metadata when available.
    """
    descriptions = dict(rule_descriptions or {})
    ordered = sort_findings(findings)
    rule_names = sorted({f.rule for f in ordered} | set(descriptions))
    rule_index = {name: i for i, name in enumerate(rule_names)}
    rules = [
        {
            "id": name,
            "shortDescription": {
                "text": descriptions.get(name, name)
            },
        }
        for name in rule_names
    ]
    results: list[dict[str, object]] = []
    for finding in ordered:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": (
                "error"
                if finding.severity is Severity.ERROR
                else "warning"
            ),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(finding.line, 1),
                            **(
                                {"startColumn": finding.column}
                                if finding.column
                                else {}
                            ),
                        },
                    }
                }
            ],
        }
        if finding.trace:
            result["properties"] = {"trace": list(finding.trace)}
        results.append(result)
    log = {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pghive-lint",
                        "informationUri": (
                            "https://github.com/pg-hive/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
