"""Disjoint-set (union-find) with path compression and union by size."""

from __future__ import annotations


class UnionFind:
    """Classic disjoint-set forest over the integers ``0..n-1``."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(size))
        self._size = [1] * size
        self._components = size

    def find(self, item: int) -> int:
        """Representative of ``item``'s component (with path compression)."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` share a component."""
        return self.find(a) == self.find(b)

    @property
    def num_components(self) -> int:
        """Current number of disjoint components."""
        return self._components

    def components(self) -> dict[int, list[int]]:
        """Map of representative -> sorted member list."""
        groups: dict[int, list[int]] = {}
        for item in range(len(self._parent)):
            groups.setdefault(self.find(item), []).append(item)
        return groups

    def __len__(self) -> int:
        return len(self._parent)
