"""Approximate nearest-neighbor indexes on top of the LSH families.

Clustering is PG-HIVE's primary use of LSH, but the classic use --
"give me the most similar items without pairwise scans" -- is needed too
(e.g. finding the closest existing type for a new pattern, powering label
alignment at scale).  Two indexes:

* :class:`EuclideanIndex` -- buckets vectors per table; a query gathers
  candidates colliding in any table (OR-composition for recall) and
  re-ranks them exactly by Euclidean distance;
* :class:`MinHashIndex` -- bands signatures; candidates share a band
  bucket and are re-ranked by exact Jaccard similarity.

Both return exact distances/similarities over the candidate set, so
results are correct up to LSH recall (a near neighbor can be missed, a
false neighbor cannot be returned).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.lsh.elsh import EuclideanLSH
from repro.lsh.minhash import MinHashLSH
from repro.util.similarity import jaccard


class EuclideanIndex:
    """ANN index over real vectors using p-stable LSH buckets."""

    def __init__(
        self,
        dimension: int,
        bucket_length: float,
        num_tables: int = 16,
        seed: int = 0,
    ) -> None:
        self._lsh = EuclideanLSH(dimension, bucket_length, num_tables, seed)
        self._tables: list[dict[int, list[Hashable]]] = [
            {} for _ in range(num_tables)
        ]
        self._vectors: dict[Hashable, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._vectors)

    def add(self, key: Hashable, vector: np.ndarray) -> None:
        """Insert (or replace) one item."""
        vector = np.asarray(vector, dtype=np.float64)
        if key in self._vectors:
            self.remove(key)
        self._vectors[key] = vector
        signature = self._lsh.signature(vector)
        for table, bucket in zip(self._tables, signature.tolist()):
            table.setdefault(int(bucket), []).append(key)

    def add_batch(
        self, keys: Sequence[Hashable], vectors: np.ndarray
    ) -> None:
        """Insert many items at once."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if len(keys) != vectors.shape[0]:
            raise ValueError("keys and vectors must align")
        signatures = self._lsh.signatures(vectors)
        for row, key in enumerate(keys):
            if key in self._vectors:
                self.remove(key)
            self._vectors[key] = vectors[row]
            for table, bucket in zip(self._tables, signatures[row].tolist()):
                table.setdefault(int(bucket), []).append(key)

    def remove(self, key: Hashable) -> None:
        """Delete one item (no-op if absent)."""
        vector = self._vectors.pop(key, None)
        if vector is None:
            return
        signature = self._lsh.signature(vector)
        for table, bucket in zip(self._tables, signature.tolist()):
            members = table.get(int(bucket))
            if members is not None and key in members:
                members.remove(key)

    def candidates(self, vector: np.ndarray) -> set[Hashable]:
        """Keys colliding with the query in at least one table."""
        signature = self._lsh.signature(np.asarray(vector, dtype=np.float64))
        found: set[Hashable] = set()
        for table, bucket in zip(self._tables, signature.tolist()):
            found.update(table.get(int(bucket), ()))
        return found

    def query(
        self, vector: np.ndarray, k: int = 5
    ) -> list[tuple[Hashable, float]]:
        """The (up to) k nearest candidates as (key, distance), closest
        first.  Exact distances over the LSH candidate set."""
        vector = np.asarray(vector, dtype=np.float64)
        scored = [
            (key, float(np.linalg.norm(self._vectors[key] - vector)))
            for key in self.candidates(vector)
        ]
        scored.sort(key=lambda pair: pair[1])
        return scored[:k]


class MinHashIndex:
    """ANN index over sets using banded MinHash signatures."""

    def __init__(
        self,
        num_hashes: int = 64,
        rows_per_band: int = 4,
        seed: int = 0,
    ) -> None:
        if rows_per_band < 1 or rows_per_band > num_hashes:
            raise ValueError("rows_per_band must be in [1, num_hashes]")
        self._lsh = MinHashLSH(num_hashes, seed)
        self._rows_per_band = rows_per_band
        self._num_bands = max(1, num_hashes // rows_per_band)
        self._bands: list[dict[tuple, list[Hashable]]] = [
            {} for _ in range(self._num_bands)
        ]
        self._sets: dict[Hashable, frozenset] = {}

    def __len__(self) -> int:
        return len(self._sets)

    def add(self, key: Hashable, feature_set: Iterable[int]) -> None:
        """Insert (or replace) one set."""
        features = frozenset(int(f) for f in feature_set)
        if key in self._sets:
            self.remove(key)
        self._sets[key] = features
        for band_index, band_key in enumerate(self._band_keys(features)):
            self._bands[band_index].setdefault(band_key, []).append(key)

    def remove(self, key: Hashable) -> None:
        """Delete one set (no-op if absent)."""
        features = self._sets.pop(key, None)
        if features is None:
            return
        for band_index, band_key in enumerate(self._band_keys(features)):
            members = self._bands[band_index].get(band_key)
            if members is not None and key in members:
                members.remove(key)

    def candidates(self, feature_set: Iterable[int]) -> set[Hashable]:
        """Keys sharing at least one band bucket with the query."""
        features = frozenset(int(f) for f in feature_set)
        found: set[Hashable] = set()
        for band_index, band_key in enumerate(self._band_keys(features)):
            found.update(self._bands[band_index].get(band_key, ()))
        return found

    def query(
        self, feature_set: Iterable[int], k: int = 5
    ) -> list[tuple[Hashable, float]]:
        """The (up to) k most similar candidates as (key, jaccard),
        most similar first."""
        features = frozenset(int(f) for f in feature_set)
        scored = [
            (key, jaccard(features, self._sets[key]))
            for key in self.candidates(features)
        ]
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k]

    def _band_keys(self, features: frozenset[int]) -> list[tuple[int, ...]]:
        signature = self._lsh.signature(features)
        keys = []
        width = self._rows_per_band
        for band in range(self._num_bands):
            start = band * width
            stop = (
                start + width
                if band < self._num_bands - 1
                else signature.size
            )
            keys.append(tuple(int(v) for v in signature[start:stop]))
        return keys
