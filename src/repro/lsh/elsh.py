"""Euclidean (p-stable) locality-sensitive hashing.

Implements the Datar et al. hash family used by Spark MLlib's
``BucketedRandomProjectionLSH``, which the original PG-HIVE builds on.  Each
of the ``T`` hash tables draws a Gaussian projection vector ``a_i`` and a
uniform offset ``o_i ~ U[0, b)``; a vector ``v`` hashes to

    h_i(v) = floor((a_i . v + o_i) / b)

where ``b`` is the *bucket length*.  The probability that two vectors at
Euclidean distance ``d`` collide in one table is a decreasing function of
``d/b``, so larger buckets collide more (higher recall, lower precision).
"""

from __future__ import annotations

from functools import cache
from typing import Any, Callable

import numpy as np


@cache
def _norm_cdf() -> Callable[..., Any]:
    """Cached scipy import: ``norm.cdf`` resolved once per process.

    ``collision_probability`` used to re-run ``from scipy.stats import norm``
    on every call; the import machinery made repeated probability sweeps
    (tests, heatmap benchmarks) measurably slower.
    """
    from scipy.stats import norm

    return norm.cdf


class EuclideanLSH:
    """p-stable LSH over real vectors.

    Args:
        dimension: Input vector dimensionality.
        bucket_length: The bucket width ``b`` (> 0).
        num_tables: Number of independent hash tables ``T`` (>= 1).
        seed: RNG seed for projections and offsets.
    """

    def __init__(
        self,
        dimension: int,
        bucket_length: float,
        num_tables: int,
        seed: int = 0,
    ) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if bucket_length <= 0:
            raise ValueError("bucket_length must be positive")
        if num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        self.dimension = dimension
        self.bucket_length = float(bucket_length)
        self.num_tables = int(num_tables)
        rng = np.random.default_rng(seed)
        self._projections = rng.standard_normal((dimension, self.num_tables))
        self._offsets = rng.uniform(0.0, self.bucket_length, size=self.num_tables)

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Hash a (n, dimension) matrix to an (n, T) integer signature matrix."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dimension:
            raise ValueError(
                f"expected dimension {self.dimension}, got {vectors.shape[1]}"
            )
        projected = vectors @ self._projections + self._offsets
        return np.floor(projected / self.bucket_length).astype(np.int64)

    def signature(self, vector: np.ndarray) -> np.ndarray:
        """Hash a single vector to its length-T signature."""
        return self.signatures(vector.reshape(1, -1))[0]

    def collision_probability(self, distance: float) -> float:
        """Single-table collision probability p_b(d) for distance ``d``.

        The closed form for the Gaussian p-stable family (Datar et al. 2004):
        with ``c = d / b``,

            p(d) = 1 - 2*Phi(-1/c) - (2c/sqrt(2 pi)) (1 - exp(-1/(2 c^2)))

        and ``p(0) = 1``.  Used by tests and by documentation of the
        parameter heuristics; not on the hot path.
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        if distance == 0.0:
            return 1.0
        ratio = distance / self.bucket_length
        term1 = 1.0 - 2.0 * _norm_cdf()(-1.0 / ratio)
        term2 = (
            2.0 * ratio / np.sqrt(2.0 * np.pi)
            * (1.0 - np.exp(-1.0 / (2.0 * ratio**2)))
        )
        return float(max(0.0, term1 - term2))

    def or_collision_probability(self, distance: float) -> float:
        """Probability of colliding in at least one of the T tables."""
        p = self.collision_probability(distance)
        return 1.0 - (1.0 - p) ** self.num_tables

    def and_collision_probability(self, distance: float) -> float:
        """Probability of colliding in all T tables (full-signature match)."""
        return self.collision_probability(distance) ** self.num_tables
