"""Locality-sensitive hashing substrate.

Two hash families from the paper:

* :class:`EuclideanLSH` -- p-stable random projections ("bucketed random
  projections", the ELSH of section 4.2) with bucket length ``b`` and
  ``T`` hash tables, and
* :class:`MinHashLSH` -- min-wise independent permutations approximating
  Jaccard similarity over sets, with ``T`` hash functions and banding.

Cluster formation utilities turn signatures into disjoint groups either by
grouping on the full signature (AND-composition; more tables = more
selective, matching the paper's discussion) or by unioning per-table bucket
collisions (OR-composition; more tables = higher recall).
"""

from repro.lsh.unionfind import UnionFind
from repro.lsh.elsh import EuclideanLSH
from repro.lsh.minhash import MinHashLSH
from repro.lsh.buckets import (
    cluster_by_band_union,
    cluster_by_full_signature,
    cluster_by_table_union,
    groups_from_assignment,
)

__all__ = [
    "EuclideanLSH",
    "MinHashLSH",
    "UnionFind",
    "cluster_by_band_union",
    "cluster_by_full_signature",
    "cluster_by_table_union",
    "groups_from_assignment",
]
