"""MinHash LSH over sets, approximating Jaccard similarity.

Each element is a set of integer feature ids.  A signature consists of ``T``
min-wise hashes computed with a universal hash family

    h_j(x) = (a_j * x + b_j) mod P

over the Mersenne prime ``P = 2^31 - 1``; the signature entry is the
minimum of ``h_j`` over the set.  Two sets agree on one signature entry with
probability equal to their Jaccard similarity, which is the property the
paper invokes in section 4.2.  All products of values below ``P`` fit in
``uint64``, so the whole computation vectorizes safely in numpy.

For clustering, signatures are cut into bands of ``rows_per_band``
consecutive entries; sets sharing any full band land in the same candidate
bucket (classic LSH banding: AND within a band, OR over bands).

:meth:`MinHashLSH.signatures` is a batch kernel: it flattens all sets into
one CSR-style ragged array, bit-mixes and hashes every feature in a single
vectorized pass, and takes all ``n x T`` minima with
``np.minimum.reduceat``.  :meth:`MinHashLSH.signatures_reference` keeps the
set-at-a-time loop as the executable specification; both return bit-equal
matrices (min-wise hashing is order- and duplicate-independent).
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Sequence

import numpy as np

_PRIME = (1 << 31) - 1  # Mersenne prime 2^31-1; products fit in uint64.
_EMPTY_SENTINEL = _PRIME  # outside the hash range [0, P)

_UINT64_MASK = 0xFFFFFFFFFFFFFFFF
_MIX_MULT_1 = 0xBF58476D1CE4E5B9
_MIX_MULT_2 = 0x94D049BB133111EB


class MinHashLSH:
    """Min-wise hashing with ``T`` hash functions.

    Args:
        num_hashes: Signature length ``T``.
        seed: RNG seed for the hash family coefficients.
    """

    def __init__(self, num_hashes: int, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_hashes = int(num_hashes)
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _PRIME, size=self.num_hashes, dtype=np.uint64)
        self._b = rng.integers(0, _PRIME, size=self.num_hashes, dtype=np.uint64)

    def signature(self, feature_set: Iterable[int]) -> np.ndarray:
        """Length-T MinHash signature of one feature set.

        Feature ids are bit-mixed (splitmix64 finalizer) before the
        universal hash -- a linear hash over *contiguous* ids is not
        min-wise independent and would bias the Jaccard estimate.  The
        empty set hashes to a dedicated sentinel signature so empty sets
        collide with each other and with nothing else.
        """
        features = np.fromiter(
            (_mix64(int(f)) % _PRIME for f in feature_set),
            dtype=np.uint64,
            count=-1,
        )
        if features.size == 0:
            return np.full(self.num_hashes, _EMPTY_SENTINEL, dtype=np.int64)
        hashed = (self._a[:, None] * features[None, :] + self._b[:, None]) % np.uint64(_PRIME)
        return hashed.min(axis=1).astype(np.int64)

    def signatures(self, feature_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Stacked (n, T) signature matrix for many sets (batch kernel).

        All sets are flattened into one ragged array; the splitmix64 mix
        and the universal hash run vectorized over every feature, and the
        per-set minima come from ``np.minimum.reduceat`` over the segment
        offsets.  Empty sets are excluded from the reduction (``reduceat``
        mishandles zero-length segments) and filled with the sentinel row
        afterwards.  An empty input yields a well-formed (0, T) matrix.
        """
        materialized = [
            s if isinstance(s, (set, frozenset, list, tuple)) else list(s)
            for s in feature_sets
        ]
        n = len(materialized)
        if n == 0:
            return np.empty((0, self.num_hashes), dtype=np.int64)
        lengths = np.fromiter(
            (len(s) for s in materialized), dtype=np.int64, count=n
        )
        total = int(lengths.sum())
        out = np.full((n, self.num_hashes), _EMPTY_SENTINEL, dtype=np.int64)
        if total == 0:
            return out
        flat = np.fromiter(
            chain.from_iterable(materialized), dtype=np.uint64, count=total
        )
        mixed = _mix64_batch(flat) % np.uint64(_PRIME)
        nonempty = lengths > 0
        starts = np.zeros(int(nonempty.sum()), dtype=np.int64)
        np.cumsum(lengths[nonempty][:-1], out=starts[1:])
        # (T, F) hash table; products of values < P fit in uint64.
        hashed = (
            self._a[:, None] * mixed[None, :] + self._b[:, None]
        ) % np.uint64(_PRIME)
        minima = np.minimum.reduceat(hashed, starts, axis=1)
        out[nonempty] = minima.T.astype(np.int64)
        return out

    def signatures_reference(
        self, feature_sets: Sequence[Iterable[int]]
    ) -> np.ndarray:
        """Set-at-a-time reference implementation of :meth:`signatures`."""
        if not feature_sets:
            return np.empty((0, self.num_hashes), dtype=np.int64)
        return np.vstack([self.signature(s) for s in feature_sets])

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing signature entries (estimates Jaccard)."""
        if sig_a.shape != sig_b.shape:
            raise ValueError("signatures must have equal length")
        return float(np.mean(sig_a == sig_b))


def _mix64(value: int) -> int:
    """splitmix64 finalizer: decorrelates structured (e.g. contiguous) ids."""
    value = value & _UINT64_MASK
    value = (value ^ (value >> 30)) * _MIX_MULT_1 & _UINT64_MASK
    value = (value ^ (value >> 27)) * _MIX_MULT_2 & _UINT64_MASK
    return (value ^ (value >> 31)) & _UINT64_MASK


def _mix64_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix64` over a uint64 array (wraps mod 2^64)."""
    values = values.astype(np.uint64, copy=True)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(_MIX_MULT_1)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(_MIX_MULT_2)
    return values ^ (values >> np.uint64(31))
