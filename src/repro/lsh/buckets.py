"""Turning LSH signatures into disjoint clusters.

Three composition strategies:

* :func:`cluster_by_full_signature` -- elements cluster together iff their
  whole (n, T) signature row matches (AND over tables).  Adding tables makes
  clustering strictly more selective, which is the behaviour the paper's
  parameter discussion describes for ELSH.
* :func:`cluster_by_table_union` -- elements sharing a bucket in *any* table
  are unioned (OR over tables).  Adding tables increases recall.
* :func:`cluster_by_band_union` -- classic banding for MinHash: the
  signature is split into bands of ``rows_per_band`` entries and elements
  sharing any full band are unioned.

All functions return a cluster-id array aligned with the input rows, with
ids renumbered densely from zero in first-appearance order.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.unionfind import UnionFind


def cluster_by_full_signature(signatures: np.ndarray) -> np.ndarray:
    """Cluster ids from exact full-signature equality (AND-composition).

    Implemented with ``np.unique`` over rows (vectorized sort) and
    renumbered densely in first-appearance order.
    """
    signatures = np.atleast_2d(signatures)
    n = signatures.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    _, first_index, inverse = np.unique(
        signatures, axis=0, return_index=True, return_inverse=True
    )
    # unique rows come back sorted; remap so cluster ids follow the order
    # in which each distinct signature first appears in the input.
    appearance_order = np.argsort(first_index, kind="stable")
    remap = np.empty_like(appearance_order)
    remap[appearance_order] = np.arange(appearance_order.size)
    return remap[inverse].astype(np.int64)


def cluster_by_table_union(signatures: np.ndarray) -> np.ndarray:
    """Cluster ids by unioning per-table bucket collisions (OR-composition)."""
    signatures = np.atleast_2d(signatures)
    n, num_tables = signatures.shape
    uf = UnionFind(n)
    for table in range(num_tables):
        first_in_bucket: dict[int, int] = {}
        column = signatures[:, table]
        for row_index in range(n):
            bucket = int(column[row_index])
            anchor = first_in_bucket.setdefault(bucket, row_index)
            if anchor != row_index:
                uf.union(anchor, row_index)
    return _renumber(uf, n)


def cluster_by_band_union(
    signatures: np.ndarray, rows_per_band: int
) -> np.ndarray:
    """Cluster ids by LSH banding (AND within band, OR across bands).

    Batch kernel: each band's buckets come from ``np.unique`` over the band
    slice (every row is anchored to the first row sharing its band value),
    and the OR across bands is a single connected-components pass over the
    resulting anchor edges.  Output-equivalent to
    :func:`cluster_by_band_union_reference` -- the partition is the same
    union closure and ids are renumbered in first-appearance order either
    way.
    """
    if rows_per_band < 1:
        raise ValueError("rows_per_band must be >= 1")
    signatures = np.atleast_2d(signatures)
    n, width = signatures.shape
    if n == 0:
        return np.empty(0, dtype=np.int64)
    num_bands = max(1, width // rows_per_band)
    anchors = np.empty((num_bands, n), dtype=np.int64)
    for band in range(num_bands):
        start = band * rows_per_band
        stop = start + rows_per_band if band < num_bands - 1 else width
        _, first_index, inverse = np.unique(
            signatures[:, start:stop],
            axis=0,
            return_index=True,
            return_inverse=True,
        )
        anchors[band] = first_index[inverse]
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    rows = np.tile(np.arange(n, dtype=np.int64), num_bands)
    cols = anchors.ravel()
    mask = rows != cols
    graph = coo_matrix(
        (np.ones(int(mask.sum()), dtype=np.int8), (rows[mask], cols[mask])),
        shape=(n, n),
    )
    _, components = connected_components(graph, directed=False)
    return _dense_first_appearance(components)


def cluster_by_band_union_reference(
    signatures: np.ndarray, rows_per_band: int
) -> np.ndarray:
    """Row-at-a-time reference for :func:`cluster_by_band_union`."""
    if rows_per_band < 1:
        raise ValueError("rows_per_band must be >= 1")
    signatures = np.atleast_2d(signatures)
    n, width = signatures.shape
    num_bands = max(1, width // rows_per_band)
    uf = UnionFind(n)
    for band in range(num_bands):
        start = band * rows_per_band
        stop = start + rows_per_band if band < num_bands - 1 else width
        first_in_bucket: dict[tuple[int, ...], int] = {}
        for row_index in range(n):
            key = tuple(int(v) for v in signatures[row_index, start:stop])
            anchor = first_in_bucket.setdefault(key, row_index)
            if anchor != row_index:
                uf.union(anchor, row_index)
    return _renumber(uf, n)


def groups_from_assignment(assignment: np.ndarray) -> list[list[int]]:
    """Invert a cluster-id array into member lists, ordered by cluster id."""
    groups: dict[int, list[int]] = {}
    for index, cluster in enumerate(assignment.tolist()):
        groups.setdefault(int(cluster), []).append(index)
    return [groups[cid] for cid in sorted(groups)]


def _dense_first_appearance(values: np.ndarray) -> np.ndarray:
    """Dense ids for a label array, numbered in first-appearance order."""
    _, first_index, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    appearance_order = np.argsort(first_index, kind="stable")
    remap = np.empty_like(appearance_order)
    remap[appearance_order] = np.arange(appearance_order.size)
    return remap[inverse].astype(np.int64)


def _renumber(uf: UnionFind, n: int) -> np.ndarray:
    """Dense cluster ids in first-appearance order from a union-find."""
    remap: dict[int, int] = {}
    assignment = np.empty(n, dtype=np.int64)
    for index in range(n):
        root = uf.find(index)
        assignment[index] = remap.setdefault(root, len(remap))
    return assignment
