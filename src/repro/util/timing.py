"""Wall-clock timing helpers for the pipeline and benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example:
        >>> with Timer() as timer:
        ...     _ = sum(range(1000))
        >>> timer.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class StageTimer:
    """Accumulates wall-clock seconds per named pipeline stage.

    Re-entering a stage adds to its total, so a stage that runs once for
    nodes and once for edges reports the combined time.

    Example:
        >>> stages = StageTimer()
        >>> with stages.stage("embed"):
        ...     _ = sum(range(1000))
        >>> stages.seconds["embed"] >= 0.0
        True
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager adding the block's elapsed time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
