"""Wall-clock timing helpers for the pipeline and benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example:
        >>> with Timer() as timer:
        ...     _ = sum(range(1000))
        >>> timer.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class StageTimer:
    """Accumulates wall-clock seconds per named pipeline stage.

    Re-entering a stage adds to its total, so a stage that runs once for
    nodes and once for edges reports the combined time.

    Example:
        >>> stages = StageTimer()
        >>> with stages.stage("embed"):
        ...     _ = sum(range(1000))
        >>> stages.seconds["embed"] >= 0.0
        True
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager adding the block's elapsed time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add_seconds(self, seconds: Mapping[str, float]) -> None:
        """Fold another timer's per-stage totals into this one.

        Used to aggregate stage timings measured in worker processes into
        a single driver-side timer: each worker reports its own
        ``seconds`` dict and the parent accumulates them here.
        """
        for name, elapsed in seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def merge(self, other: "StageTimer") -> "StageTimer":
        """Accumulate ``other``'s stages into this timer (returns self)."""
        self.add_seconds(other.seconds)
        return self

    @classmethod
    def aggregate(cls, timings: Iterable[Mapping[str, float]]) -> "StageTimer":
        """One timer holding the stage-wise sum of many timing dicts."""
        total = cls()
        for seconds in timings:
            total.add_seconds(seconds)
        return total
