"""Durable filesystem primitives shared by the persistence layers.

The atomic-rename protocol (temp file + ``os.replace``) used by the
schema checkpoints (:mod:`repro.schema.persist`) and the slab manifest
(:mod:`repro.graph.slab`) guarantees a reader never observes a torn
file -- but ``os.replace`` alone does not guarantee the *rename itself*
survives a power loss.  POSIX requires an explicit ``fsync`` of the
parent directory to make the new directory entry durable; without it a
checkpoint or manifest can silently revert (or vanish, for a first
write) after a crash, despite the file content having been fsynced.

:func:`fsync_directory` is that missing step, factored out so every
rename-based commit point in the repo uses the identical sequence:
write temp, fsync temp, ``os.replace``, fsync parent directory.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["fsync_directory"]


def fsync_directory(directory: str | Path) -> None:
    """Flush a directory's entry table to stable storage.

    Called after ``os.replace`` to make the rename durable.  Errors are
    propagated: a failed directory fsync means the commit protocol's
    durability guarantee does not hold, which callers treat exactly like
    a failed data write.  On filesystems that do not support fsync on
    directory handles (some network mounts), ``EINVAL`` is tolerated --
    the rename is then as durable as that filesystem can make it.
    """
    fd = os.open(os.fspath(directory), os.O_RDONLY | os.O_DIRECTORY)
    try:
        try:
            os.fsync(fd)
        except OSError as exc:
            if exc.errno != 22:  # EINVAL: fsync unsupported on dir handles
                raise
    finally:
        os.close(fd)
