"""Set similarity measures used throughout the merging steps."""

from __future__ import annotations

from typing import AbstractSet, Hashable


def jaccard(a: AbstractSet[Hashable], b: AbstractSet[Hashable]) -> float:
    """Jaccard similarity |A n B| / |A u B|; two empty sets count as 1.0.

    The empty/empty convention matters for unlabeled clusters with no
    properties: they should be considered identical, not dissimilar.
    """
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def overlap_coefficient(
    a: AbstractSet[Hashable], b: AbstractSet[Hashable]
) -> float:
    """Szymkiewicz-Simpson overlap |A n B| / min(|A|, |B|)."""
    if not a or not b:
        return 1.0 if not a and not b else 0.0
    return len(a & b) / min(len(a), len(b))
