"""Shared small utilities: set similarity, timing, table rendering."""

from repro.util.similarity import jaccard, overlap_coefficient
from repro.util.timing import Timer
from repro.util.tables import render_table

__all__ = ["Timer", "jaccard", "overlap_coefficient", "render_table"]
