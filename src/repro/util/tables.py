"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Row cells (each row must have ``len(headers)`` entries).
        title: Optional title printed above the table.
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match header width")
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines: list[str] = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
