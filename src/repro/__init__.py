"""PG-HIVE: hybrid incremental schema discovery for property graphs.

A from-scratch reproduction of "PG-HIVE: Hybrid Incremental Schema
Discovery for Property Graphs" (EDBT 2026).  The public API:

* :class:`repro.PGHive` / :class:`repro.PGHiveConfig` -- the discovery
  pipeline and its configuration;
* :mod:`repro.graph` -- the property graph data model, store and I/O;
* :mod:`repro.schema` -- the schema model, serializers and validator;
* :mod:`repro.datasets` -- synthetic versions of the paper's eight
  datasets plus noise injection;
* :mod:`repro.baselines` -- the GMMSchema and SchemI comparison systems;
* :mod:`repro.evaluation` -- F1*, Nemenyi ranks, and the experiment
  harness that regenerates every table and figure.
"""

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.result import DiscoveryResult
from repro.graph.builder import GraphBuilder
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.store import GraphStore
from repro.schema.model import SchemaGraph
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.schema.serialize_xsd import serialize_xsd

__version__ = "1.0.0"

__all__ = [
    "DiscoveryResult",
    "Edge",
    "GraphBuilder",
    "GraphStore",
    "LSHMethod",
    "Node",
    "PGHive",
    "PGHiveConfig",
    "PropertyGraph",
    "SchemaGraph",
    "__version__",
    "serialize_pg_schema",
    "serialize_xsd",
]
