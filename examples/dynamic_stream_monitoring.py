"""Operating PG-HIVE as a long-running schema monitor.

Simulates a production deployment over a *dynamic* graph (the paper's
motivating scenario): a stream of batches in which two node types and two
edge types only start appearing mid-stream (schema drift).  The monitor

* processes each batch incrementally with the memoization fast path,
* tracks schema evolution and reports when the schema changed,
* persists the running schema after every batch (crash-safe resume),
* detects stabilization and runs the constraint post-processing then.

Run with:  python examples/dynamic_stream_monitoring.py
"""

import tempfile
from pathlib import Path

from repro import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.datasets.registry import dataset_spec
from repro.datasets.stream import GraphStream, StreamBatchPlan
from repro.graph.store import GraphStore
from repro.schema.evolution import SchemaEvolutionTracker
from repro.schema.persist import load_schema, save_schema
from repro.schema.report import render_schema_report
from repro.util.tables import render_table


def main():
    drift = {
        "Vehicle": 4, "PhoneCall": 4,        # node types appearing late
        "CALLER": 4, "CALLED": 4,            # their edge types
    }
    stream = GraphStream(
        dataset_spec("POLE"),
        num_batches=8,
        plan=StreamBatchPlan(nodes_per_batch=150, edges_per_batch=220),
        drift=drift,
        seed=11,
    )
    checkpoint = Path(tempfile.gettempdir()) / "pghive_running_schema.json"

    engine = IncrementalDiscovery(PGHiveConfig(memoize_patterns=True))
    tracker = SchemaEvolutionTracker(stability_window=2)

    rows = []
    for batch in stream:
        report = engine.process_batch(
            batch.nodes, batch.edges, batch.endpoint_labels
        )
        step = tracker.observe(engine.schema)
        save_schema(engine.schema, checkpoint)  # crash-safe checkpoint
        new_types = (
            len(step.diff.added_node_types) + len(step.diff.added_edge_types)
        )
        rows.append([
            str(batch.index),
            f"{report.seconds * 1000:.0f} ms",
            f"{report.memo_node_hits + report.memo_edge_hits}"
            f"/{report.num_nodes + report.num_edges}",
            str(step.num_node_types),
            str(step.num_edge_types),
            (f"+{new_types} new types" if new_types else
             ("stable" if tracker.is_stable else "-")),
        ])
    print(render_table(
        ["batch", "time", "memo hits", "node types", "edge types", "event"],
        rows,
        "Streaming schema monitor (drift arrives at batch 4)",
    ))

    # Simulated restart: resume from the checkpoint file.
    resumed = IncrementalDiscovery(schema=load_schema(checkpoint))
    print(
        f"\nResumed from {checkpoint}: "
        f"{len(resumed.schema.node_types)} node types, "
        f"{len(resumed.schema.edge_types)} edge types intact."
    )

    # The schema stabilized: run the constraint passes against the full
    # accumulated graph and print the operator report.
    store = GraphStore(stream.graph)
    infer_property_constraints(resumed.schema)
    infer_datatypes(resumed.schema, store)
    compute_cardinalities(resumed.schema, store)
    print()
    print(render_schema_report(resumed.schema, max_types=12))
    checkpoint.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
