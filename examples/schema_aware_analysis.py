"""Using the discovered schema: planning, hierarchy, and diagnostics.

Once PG-HIVE has discovered a schema, it becomes infrastructure for the
tasks the paper's introduction motivates:

1. **query optimization** -- the schema-aware planner picks evaluation
   strategies by estimated selectivity (anchor on 2 organisations instead
   of scanning 7,000 edges);
2. **exploration** -- the inferred subtype hierarchy and per-type pattern
   breakdown show how the data is actually structured;
3. **quality diagnostics** -- under noise, the confusion report names
   exactly which types the clustering mixed.

Run with:  python examples/schema_aware_analysis.py
"""

from repro import GraphStore, PGHive
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.confusion import confusion_pairs, render_confusions
from repro.graph.planner import execute_plan, plan_pattern
from repro.schema.hierarchy import infer_hierarchy, render_hierarchy
from repro.schema.patterns_report import (
    pattern_breakdown,
    render_pattern_breakdown,
)


def main():
    dataset = get_dataset("LDBC", scale=1.0, seed=9)
    store = GraphStore(dataset.graph)
    result = PGHive().discover(store)
    schema = result.schema
    print(f"Discovered {result.num_node_types} node types and "
          f"{result.num_edge_types} edge types from "
          f"{dataset.graph.num_nodes:,} nodes / "
          f"{dataset.graph.num_edges:,} edges.\n")

    # 1. Schema-aware query planning -----------------------------------
    print("1) Query planning: who moderates forums?  (Forum "
          "-HAS_MODERATOR-> Person)\n")
    plan = plan_pattern(
        schema, source_label="Forum", edge_label="HAS_MODERATOR",
        target_label="Person",
    )
    triples = execute_plan(plan, dataset.graph)
    print(f"   chosen strategy : {plan.strategy}")
    print(f"   estimates       : {plan.estimate.matching_edge_instances} "
          f"matching edges, {plan.estimate.source_instances} sources, "
          f"{plan.estimate.target_instances} targets")
    print(f"   result          : {len(triples)} moderator assignments\n")

    # 2. Hierarchy + pattern structure ----------------------------------
    print("2) Inferred type hierarchy (LDBC's Message refinements):\n")
    relations = infer_hierarchy(schema)
    print(render_hierarchy(schema, relations))
    print()
    breakdowns = pattern_breakdown(schema, store)
    interesting = {
        name: breakdowns[name]
        for name in ("Message&Post", "Person")
        if name in breakdowns
    }
    print(render_pattern_breakdown(interesting))

    # 3. Confusion diagnostics under stress ------------------------------
    print("\n3) Diagnostics: discovery at 40% noise / 0% labels -- "
          "what gets mixed?\n")
    stressed = inject_noise(dataset, 0.4, 0.0, seed=10)
    stressed_result = PGHive().discover(GraphStore(stressed.graph))
    pairs = confusion_pairs(
        stressed_result.node_assignment, stressed.truth.node_types
    )
    print(render_confusions(pairs, limit=5))
    print("\n(Post and Comment share content/creationDate/length -- "
          "without labels they are genuinely ambiguous, which is exactly "
          "what the confusion report surfaces.)")


if __name__ == "__main__":
    main()
