"""Beyond the paper: the implemented future-work features in one tour.

1. **Exact cardinality bounds** -- participation analysis gives interval
   cardinalities (paper section 4.4 leaves lower bounds as future work).
2. **Value profiles** -- enumerations and numeric/temporal ranges (also
   section 4.4 future work).
3. **Semantic label alignment** -- merging Organization/Organisation-style
   aliases across integrated sources (paper's conclusion future work,
   implemented with structural + contextual + lexical evidence instead of
   an LLM).
4. **Extra exports** -- Neo4j constraint DDL and GraphQL SDL.

Run with:  python examples/advanced_schema_features.py
"""

import random

from repro import GraphBuilder, GraphStore, PGHive, PGHiveConfig
from repro.embeddings.embedder import LabelEmbedder
from repro.schema.align import apply_alignment, propose_alignments
from repro.schema.serialize_cypher import serialize_cypher
from repro.schema.serialize_graphql import serialize_graphql
from repro.schema.serialize_pgschema import serialize_pg_schema


def build_integrated_graph():
    """Two HR exports merged: one UK-English, one US-English."""
    rng = random.Random(3)
    b = GraphBuilder("hr-merged")
    employees = []
    for i in range(120):
        employees.append(b.node(["Employee"], {
            "name": f"emp{i}",
            "grade": rng.choice(["junior", "senior", "principal"]),
            "age": rng.randint(21, 64),
            "hired": f"20{rng.randint(10, 25)}-0{rng.randint(1, 9)}-15",
        }))
    # Source A calls them Organisation, source B Organization.
    hosts = []
    for i in range(10):
        label = "Organisation" if i % 2 else "Organization"
        hosts.append(b.node([label], {
            "name": f"unit{i}",
            "headcount": rng.randint(5, 500),
        }))
    for i, employee in enumerate(employees):
        b.edge(employee, hosts[i % len(hosts)], ["WORKS_AT"],
               {"fte": round(rng.uniform(0.2, 1.0), 2)})
    return b.build()


def main():
    graph = build_integrated_graph()
    config = PGHiveConfig(
        infer_value_profiles=True,
        exact_cardinality_bounds=True,
    )
    result = PGHive(config).discover(GraphStore(graph))

    print("1) Discovered schema with value profiles and exact bounds:\n")
    print(serialize_pg_schema(result.schema, "STRICT"))

    print("\n2) Semantic label alignment across the two sources:\n")
    embedder = LabelEmbedder().fit(graph)
    candidates = propose_alignments(result.schema, embedder)
    for candidate in candidates:
        print(f"   {candidate.first} ~ {candidate.second}  "
              f"(structural={candidate.structural:.2f} "
              f"contextual={candidate.contextual:.2f} "
              f"lexical={candidate.lexical:.2f} "
              f"combined={candidate.combined:.2f})")
    renames = apply_alignment(result.schema, candidates)
    for absorbed, survivor in renames.items():
        print(f"   merged {absorbed} into {survivor}")

    print("\n3) Neo4j constraint DDL:\n")
    print(serialize_cypher(result.schema))

    print("4) GraphQL SDL:\n")
    print(serialize_graphql(result.schema))


if __name__ == "__main__":
    main()
