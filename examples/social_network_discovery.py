"""Schema discovery on an LDBC-style social network.

Generates the bundled LDBC dataset (persons, forums, posts, comments,
tags, places -- including the multi-label Message types and same-label
LIKES/HAS_CREATOR edge types over different endpoints), discovers its
schema with both PG-HIVE variants, and scores the result against ground
truth with the paper's majority-based F1*.

Run with:  python examples/social_network_discovery.py
"""

from repro import GraphStore, PGHive, PGHiveConfig
from repro.core.config import LSHMethod
from repro.datasets import get_dataset
from repro.evaluation.f1star import majority_f1
from repro.schema import serialize_pg_schema
from repro.util.tables import render_table


def main():
    dataset = get_dataset("LDBC", scale=1.0, seed=42)
    print(f"LDBC-like graph: {dataset.graph.num_nodes:,} nodes, "
          f"{dataset.graph.num_edges:,} edges, "
          f"{len(dataset.spec.node_types)} true node types, "
          f"{len(dataset.spec.edge_types)} true edge types\n")

    rows = []
    results = {}
    for method in (LSHMethod.ELSH, LSHMethod.MINHASH):
        pipeline = PGHive(PGHiveConfig(method=method))
        result = pipeline.discover(GraphStore(dataset.graph))
        results[method] = result
        node_scores = majority_f1(
            result.node_assignment, dataset.truth.node_types
        )
        edge_scores = majority_f1(
            result.edge_assignment, dataset.truth.edge_types
        )
        rows.append([
            f"PG-HIVE-{method.value.upper()}",
            f"{node_scores.headline:.3f}",
            f"{edge_scores.headline:.3f}",
            str(result.num_node_types),
            str(result.num_edge_types),
            f"{result.total_seconds:.2f}s",
        ])
    print(render_table(
        ["method", "node F1*", "edge F1*", "#node types", "#edge types",
         "time"],
        rows,
    ))

    result = results[LSHMethod.ELSH]
    print("\nDiscovered edge types (note the two LIKES types over Post "
          "and Comment, and the cardinalities):\n")
    for edge_type in result.schema.edge_types.values():
        sources = "|".join(sorted(edge_type.source_types)) or "?"
        targets = "|".join(sorted(edge_type.target_types)) or "?"
        print(f"  ({sources}) -[{edge_type.name}]-> ({targets})   "
              f"{edge_type.cardinality.value}")

    print("\n--- PG-Schema (STRICT), first 25 lines " + "-" * 20)
    print("\n".join(
        serialize_pg_schema(result.schema, "STRICT").splitlines()[:25]
    ))


if __name__ == "__main__":
    main()
