"""Closing the loop: validate new data against a discovered schema.

Discovers the POLE schema, then validates (a) a conforming batch of new
records and (b) a corrupted batch -- missing mandatory properties, wrong
datatypes, an unknown label -- in both STRICT and LOOSE modes (paper
section 4.5: the STRICT schema "supports validation processes").

Run with:  python examples/schema_validation.py
"""

from repro import GraphBuilder, GraphStore, PGHive
from repro.datasets import get_dataset
from repro.schema.validate import ValidationMode, validate_graph


def conforming_batch():
    """New records shaped exactly like POLE data."""
    b = GraphBuilder("new-data")
    person = b.node(["Person"], {
        "name": "Ada", "surname": "Lovelace", "nhs_no": "A123-4", "age": 36,
    })
    officer = b.node(["Officer"], {
        "badge_no": "B771-0", "rank": "sergeant", "name": "Grace",
    })
    crime = b.node(["Crime"], {
        "crime_id": 991, "crime_type": "burglary", "date": "2026-03-01",
    })
    b.edge(person, crime, ["PARTY_TO"])
    b.edge(crime, officer, ["INVESTIGATED_BY"])
    return b.build()


def corrupted_batch():
    """Records violating the discovered constraints."""
    b = GraphBuilder("bad-data")
    # Missing the mandatory 'name'; age has the wrong datatype.
    b.node(["Person"], {"surname": "Nameless", "nhs_no": "X", "age": "old"})
    # A label the schema has never seen.
    b.node(["Spaceship"], {"name": "Heart of Gold"})
    return b.build()


def main():
    dataset = get_dataset("POLE", scale=0.5, seed=5)
    result = PGHive().discover(GraphStore(dataset.graph))
    print(
        f"Discovered POLE schema: {result.num_node_types} node types, "
        f"{result.num_edge_types} edge types\n"
    )

    good = conforming_batch()
    report = validate_graph(good, result.schema, ValidationMode.STRICT)
    print(f"Conforming batch, STRICT: valid={report.is_valid} "
          f"({report.checked} elements checked)")

    bad = corrupted_batch()
    strict = validate_graph(bad, result.schema, ValidationMode.STRICT)
    print(f"\nCorrupted batch, STRICT: valid={strict.is_valid}, "
          f"{len(strict.violations)} violations:")
    for violation in strict.violations:
        print(f"  [{violation.rule}] {violation.element_kind} "
              f"{violation.element_id}: {violation.detail}")

    loose = validate_graph(bad, result.schema, ValidationMode.LOOSE)
    print(f"\nCorrupted batch, LOOSE: valid={loose.is_valid}, "
          f"{len(loose.violations)} violations (LOOSE only requires some "
          f"type to cover each element)")
    for violation in loose.violations:
        print(f"  [{violation.rule}] {violation.element_kind} "
              f"{violation.element_id}: {violation.detail}")


if __name__ == "__main__":
    main()
