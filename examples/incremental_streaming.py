"""Incremental schema discovery over a stream of graph batches.

Streams the CORD19-like dataset in 10 batches through the incremental
engine (paper section 4.6), printing how the schema grows monotonically
batch by batch and how the per-batch processing time stays flat -- no full
recomputation as data accumulates.

Run with:  python examples/incremental_streaming.py
"""

from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.schema import serialize_pg_schema
from repro.schema.diff import diff_schemas
from repro.util.tables import render_table


def main():
    dataset = get_dataset("CORD19", scale=1.0, seed=7)
    store = GraphStore(dataset.graph)
    engine = IncrementalDiscovery(name="cord19-stream")

    import copy

    rows = []
    previous = copy.deepcopy(engine.schema)
    for batch in store.batches(num_batches=10, seed=1):
        report = engine.process_batch(
            batch.nodes, batch.edges, batch.endpoint_labels
        )
        diff = diff_schemas(previous, engine.schema)
        assert diff.is_monotone_extension, "schema must only grow"
        new_types = len(diff.added_node_types) + len(diff.added_edge_types)
        rows.append([
            str(report.index),
            str(report.num_nodes),
            str(report.num_edges),
            f"{report.seconds * 1000:.0f} ms",
            str(len(engine.schema.node_types)),
            str(len(engine.schema.edge_types)),
            f"+{new_types}" if new_types else "-",
        ])
        previous = copy.deepcopy(engine.schema)

    print(render_table(
        ["batch", "nodes", "edges", "time", "node types so far",
         "edge types so far", "new types"],
        rows,
        "Incremental discovery over 10 batches (schema grows "
        "monotonically, per-batch time stays flat)",
    ))

    # Final post-processing pass (Algorithm 1 runs it on the last batch).
    infer_property_constraints(engine.schema)
    infer_datatypes(engine.schema, store)
    compute_cardinalities(engine.schema, store)

    print("\nFinal schema (first 20 lines):")
    print("\n".join(
        serialize_pg_schema(engine.schema, "STRICT").splitlines()[:20]
    ))


if __name__ == "__main__":
    main()
