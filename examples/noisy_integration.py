"""Schema discovery on noisy, partially-labeled integrated data.

The ICIJ offshore-leaks scenario from the paper's motivation: data merged
from heterogeneous sources, with 30 % of properties missing and half the
elements carrying no labels at all.  The label-dependent baselines
(GMMSchema, SchemI) cannot run here; PG-HIVE still recovers the types.

Run with:  python examples/noisy_integration.py
"""

from repro import GraphStore, PGHive
from repro.baselines import GMMSchema, SchemI, UnsupportedDataError
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.util.tables import render_table


def main():
    clean = get_dataset("ICIJ", scale=1.0, seed=11)
    noisy = inject_noise(
        clean, property_noise=0.3, label_availability=0.5, seed=12
    )
    unlabeled_nodes = sum(1 for n in noisy.graph.nodes() if not n.labels)
    print(
        f"ICIJ-like graph: {noisy.graph.num_nodes:,} nodes "
        f"({unlabeled_nodes:,} unlabeled), "
        f"{noisy.graph.num_edges:,} edges, 30% of properties removed\n"
    )

    store = GraphStore(noisy.graph)
    rows = []

    for name, system in (
        ("GMMSchema", GMMSchema()),
        ("SchemI", SchemI()),
    ):
        try:
            system.discover(store)
            status = "ran (unexpected!)"
        except UnsupportedDataError as error:
            status = f"cannot run: {error}"
        rows.append([name, status, "-", "-"])

    result = PGHive().discover(store)
    node_scores = majority_f1(result.node_assignment, noisy.truth.node_types)
    edge_scores = majority_f1(result.edge_assignment, noisy.truth.edge_types)
    rows.append([
        "PG-HIVE",
        f"discovered {result.num_node_types} node / "
        f"{result.num_edge_types} edge types",
        f"{node_scores.headline:.3f}",
        f"{edge_scores.headline:.3f}",
    ])
    print(render_table(["system", "outcome", "node F1*", "edge F1*"], rows))

    # How were the unlabeled Officers recovered?  Via structural merging:
    officer_type = result.schema.node_types.get("Officer")
    if officer_type is not None:
        unlabeled_members = sum(
            1
            for node_id in officer_type.members
            if not noisy.graph.node(node_id).labels
        )
        print(
            f"\nThe Officer type absorbed {unlabeled_members} unlabeled "
            f"nodes out of {officer_type.instance_count} instances "
            f"(Jaccard merging of structurally identical clusters, "
            f"paper section 4.3)."
        )


if __name__ == "__main__":
    main()
