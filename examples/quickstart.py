"""Quickstart: discover the schema of a small property graph.

Builds the paper's Figure 1 example graph -- people, an organization,
posts, a place, with an unlabeled node thrown in -- runs PG-HIVE, and
prints the discovered schema in PG-Schema and XSD form.

Run with:  python examples/quickstart.py
"""

from repro import GraphBuilder, GraphStore, PGHive
from repro.schema import serialize_pg_schema, serialize_xsd


def build_graph():
    """The running example of the paper (Figure 1)."""
    b = GraphBuilder("figure1")
    bob = b.node(["Person"], {"name": "Bob", "gender": "m",
                              "bday": "1999-12-19"})
    john = b.node(["Person"], {"name": "John", "gender": "m",
                               "bday": "1988-02-01"})
    # Alice lost her label somewhere in an integration pipeline ...
    alice = b.node([], {"name": "Alice", "gender": "f",
                        "bday": "1995-06-05"})
    org = b.node(["Organization"], {"name": "ICS",
                                    "url": "https://ics.example"})
    post_a = b.node(["Post"], {"imgFile": "cat.png"})
    post_b = b.node(["Post"], {"content": "hello world"})
    place = b.node(["Place"], {"name": "Heraklion"})
    b.edge(alice, john, ["KNOWS"], {"since": 2015})
    b.edge(bob, john, ["KNOWS"])
    b.edge(alice, post_a, ["LIKES"])
    b.edge(john, post_b, ["LIKES"])
    b.edge(bob, org, ["WORKS_AT"], {"from": 2020})
    b.edge(alice, place, ["LOCATED_IN"])
    return b.build()


def main():
    graph = build_graph()
    result = PGHive().discover(GraphStore(graph))

    print(f"Discovered {result.num_node_types} node types and "
          f"{result.num_edge_types} edge types "
          f"in {result.total_seconds * 1000:.0f} ms\n")

    # ... and PG-HIVE recovered Alice's type from her structure:
    alice_type = result.node_assignment[2]
    print(f"The unlabeled node (Alice) was assigned to: {alice_type}\n")

    print("--- PG-Schema (STRICT) " + "-" * 40)
    print(serialize_pg_schema(result.schema, "STRICT"))
    print()
    print("--- PG-Schema (LOOSE) " + "-" * 41)
    print(serialize_pg_schema(result.schema, "LOOSE"))
    print()
    print("--- XSD " + "-" * 55)
    print(serialize_xsd(result.schema))


if __name__ == "__main__":
    main()
